//! [`ReleaseStore`]: the append-only archive of everything the engine has
//! released.
//!
//! The store keeps one growing synthetic panel per scope: the merged
//! population-level release, plus one panel per cohort (shard). Panels grow
//! strictly by appending columns — released prefixes are never rewritten,
//! mirroring the persistent-record guarantee of the synthesizers themselves.
//! That immutability is what makes the serving cache sound and the snapshot
//! format trivial.
//!
//! Ingestion accepts the two release shapes the engine produces:
//! [`BitColumn`] rounds (cumulative family) via
//! [`ingest_columns`](ReleaseStore::ingest_columns), and fixed-window
//! [`Release`] rounds via
//! [`ingest_releases`](ReleaseStore::ingest_releases) (`Buffered` stores
//! nothing, `Initial` stores its k seed columns, `Update` stores one).
//!
//! Note on semantics: the store serves the *released synthetic data*, so a
//! fixed-window panel contains the n\* padded records the synthesizer
//! published; estimates computed from it are the plain synthetic-data
//! estimator (the debiased estimator needs the synthesizer's private
//! bookkeeping and is not a function of the release alone).
//!
//! Every round arrives tagged with the engine's [`PolicyTag`]: under
//! `PerShard` the merged panel is the shard-order concatenation of the
//! cohort panels (and ingestion enforces that cohort record counts sum to
//! the merged count); under `Shared` the merged panel is an *independent*
//! population-level synthesis whose record count need not match the
//! cohort sum, so that cross-check is relaxed (per-panel consistency and
//! round lockstep still hold). The tag is recorded on first ingest, must
//! stay constant for the store's lifetime, and travels with snapshots.
//!
//! ## Dynamic panels
//!
//! A rotating panel's cohorts cover different **round ranges**: wave `c`
//! enters at round `e_c` and retires after its horizon. The store indexes
//! such releases by *cohort × round range* —
//! [`ingest_active_columns`](ReleaseStore::ingest_active_columns) records
//! each active cohort's column at its own local round offset, and the
//! per-round merged release (whose record count varies with the active
//! set) is kept as a ragged column list. Cross-round queries at
//! [`StoreScope::Merged`] are answered as the **size-weighted combination
//! of the covering cohorts' answers** (a window query only counts cohorts
//! that observed the whole window): the ragged merged panel is not
//! longitudinally meaningful — record `i` of round `t` and round `t+1`
//! may be different individuals. The two ingestion families are mutually
//! exclusive: a store is *static* (lockstep) or *dynamic* (scheduled) for
//! its whole lifetime, fixed by the first ingested round.
//!
//! Note on **shared-noise rotating** stores: merged-scope answers still
//! pool the covering cohorts' panels. The stored merged rounds are the
//! windowed population synthesizer's released columns, but reconstructing
//! *within-window* weights from them would need the synthesizer's private
//! reset bookkeeping (which record slots rotated out when) — the same
//! limitation as the fixed-window debiased estimator above. The
//! engine-side `population_synthesizer()` estimates remain the
//! single-draw accuracy product; the store records the columns plus their
//! [cohort coverage](ReleaseStore::merged_coverage) so consumers can
//! interpret them.

use longsynth::Release;
use longsynth_data::{BitColumn, LongitudinalDataset};
use longsynth_engine::PolicyTag;
use longsynth_queries::cumulative::cumulative_fraction;
use longsynth_queries::{active_weighted_mean, WindowQuery};
use std::fmt;
use std::ops::Range;

use crate::query::{QueryKind, ServeQuery};

/// Which stored panel a query targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreScope {
    /// The merged population-level release.
    Merged,
    /// One cohort's (shard's) release, by shard index.
    Cohort(usize),
}

impl fmt::Display for StoreScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreScope::Merged => write!(f, "merged"),
            StoreScope::Cohort(c) => write!(f, "cohort {c}"),
        }
    }
}

/// Errors from the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The queried scope has no released rounds at all yet.
    NothingReleased(StoreScope),
    /// The queried round has not been released yet in that scope.
    RoundNotReleased {
        /// The scope queried.
        scope: StoreScope,
        /// The 0-based round asked for.
        round: usize,
        /// Rounds currently available (`0..available`).
        available: usize,
    },
    /// The cohort index is out of range.
    UnknownCohort {
        /// The cohort asked for.
        cohort: usize,
        /// Number of cohorts the store holds.
        cohorts: usize,
    },
    /// A window query of width `k` was asked at a round `t` with `t+1 < k`.
    WindowUnderflow {
        /// The 0-based round asked for.
        round: usize,
        /// The query's window width.
        width: usize,
    },
    /// A dynamic store was asked about a round outside a cohort's covered
    /// range (before its entry, or after its retirement).
    RoundNotCovered {
        /// The scope queried.
        scope: StoreScope,
        /// The 0-based round asked for.
        round: usize,
        /// The rounds the scope actually covers.
        covered: Range<usize>,
    },
    /// A merged-scope window query over a dynamic store found no cohort
    /// observing the full window (every covering cohort entered mid-window
    /// or retired inside it).
    WindowNotCovered {
        /// The 0-based round asked for.
        round: usize,
        /// The query's window width.
        width: usize,
    },
    /// A dynamic store was asked for a rectangular panel it cannot
    /// provide (the ragged merged release of a rotating panel).
    ScopeNotRectangular(StoreScope),
    /// An ingested round disagreed with the store's shape.
    IngestMismatch(String),
    /// A snapshot could not be parsed or failed validation.
    Snapshot(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NothingReleased(scope) => {
                write!(f, "no rounds released yet in scope {scope}")
            }
            ServeError::RoundNotReleased {
                scope,
                round,
                available,
            } => write!(
                f,
                "round {round} not yet released in scope {scope} ({available} rounds available)"
            ),
            ServeError::UnknownCohort { cohort, cohorts } => {
                write!(f, "cohort {cohort} does not exist (store has {cohorts})")
            }
            ServeError::WindowUnderflow { round, width } => write!(
                f,
                "width-{width} window query underflows at round {round} (needs t+1 >= k)"
            ),
            ServeError::RoundNotCovered {
                scope,
                round,
                covered,
            } => write!(
                f,
                "round {round} is outside {scope}'s covered range {}..{}",
                covered.start, covered.end
            ),
            ServeError::WindowNotCovered { round, width } => write!(
                f,
                "no cohort observed the full width-{width} window ending at round {round}"
            ),
            ServeError::ScopeNotRectangular(scope) => write!(
                f,
                "scope {scope} of a dynamic store is ragged (active set changes per \
                 round) and has no rectangular panel; query it through `answer`"
            ),
            ServeError::IngestMismatch(msg) => write!(f, "ingest mismatch: {msg}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A synthetic panel that grows by appending released columns. The record
/// count is pinned by the first column and every later append must match.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct GrowingPanel {
    panel: Option<LongitudinalDataset>,
}

impl GrowingPanel {
    pub(crate) fn push(&mut self, column: &BitColumn) -> Result<(), ServeError> {
        match &mut self.panel {
            None => {
                let mut panel = LongitudinalDataset::empty(column.len());
                panel
                    .push_column(column.clone())
                    .expect("first column always matches");
                self.panel = Some(panel);
                Ok(())
            }
            Some(panel) => panel.push_column(column.clone()).map_err(|e| {
                ServeError::IngestMismatch(format!("released column has wrong record count: {e}"))
            }),
        }
    }

    pub(crate) fn rounds(&self) -> usize {
        self.panel.as_ref().map_or(0, LongitudinalDataset::rounds)
    }

    pub(crate) fn records(&self) -> Option<usize> {
        self.panel.as_ref().map(LongitudinalDataset::individuals)
    }

    pub(crate) fn panel(&self) -> Option<&LongitudinalDataset> {
        self.panel.as_ref()
    }

    pub(crate) fn from_dataset(panel: Option<LongitudinalDataset>) -> Self {
        Self { panel }
    }
}

/// The append-only store of merged and per-cohort releases.
///
/// See the module docs for semantics. Equality compares full contents,
/// which the snapshot/restore tests use to pin bit-identity.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReleaseStore {
    merged: GrowingPanel,
    cohorts: Vec<GrowingPanel>,
    /// The aggregation policy that produced every ingested round (fixed by
    /// the first ingest; `None` while the store is empty).
    policy: Option<PolicyTag>,
    /// Dynamic-panel state: `Some` once the first scheduled round arrives.
    /// `entries[c]` is cohort `c`'s entry round (`None` until it enters);
    /// the cohort's panel then covers global rounds
    /// `entry .. entry + panel.rounds()`.
    entries: Option<Vec<Option<usize>>>,
    /// The per-round merged releases of a dynamic store — ragged, because
    /// the active population changes with the schedule.
    merged_rounds: Vec<BitColumn>,
    /// Cohort-coverage metadata of a dynamic store's merged rounds:
    /// `merged_coverage[t]` is the ascending set of cohorts whose
    /// individuals round `t`'s merged release covers — the interpretation
    /// key for **shared-noise rotating** stores, whose merged rounds are
    /// independent windowed population syntheses. The value equals the
    /// set of cohorts whose window contains `t` (restore validates
    /// exactly that, and pre-v4 snapshots derive it), so recording it
    /// makes each snapshot self-describing and tamper-evident rather
    /// than adding new information.
    merged_coverage: Vec<Vec<usize>>,
}

impl ReleaseStore {
    /// An empty store; the first ingested round fixes the cohort count and
    /// the policy tag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest one cumulative-family round under the default
    /// [`PolicyTag::PerShard`] semantics (merged = cohort concatenation).
    /// See [`ingest_columns_with`](Self::ingest_columns_with).
    pub fn ingest_columns(
        &mut self,
        per_cohort: &[BitColumn],
        merged: &BitColumn,
    ) -> Result<(), ServeError> {
        self.ingest_columns_with(PolicyTag::PerShard, per_cohort, merged)
    }

    /// Ingest one cumulative-family round: per-cohort released columns (in
    /// shard order) plus the merged population-level column, tagged with
    /// the aggregation policy that produced them.
    ///
    /// Ingestion is atomic: every column of the round is validated against
    /// the store's shape *before* anything is appended, so a rejected round
    /// leaves the store exactly as it was (merged and cohort panels can
    /// never drift out of lockstep).
    pub fn ingest_columns_with(
        &mut self,
        policy: PolicyTag,
        per_cohort: &[BitColumn],
        merged: &BitColumn,
    ) -> Result<(), ServeError> {
        let parts: Vec<&BitColumn> = per_cohort.iter().collect();
        self.ingest_validated_rounds(policy, per_cohort.len(), &[(&parts, merged)])
    }

    /// Ingest one fixed-window round under the default
    /// [`PolicyTag::PerShard`] semantics. See
    /// [`ingest_releases_with`](Self::ingest_releases_with).
    pub fn ingest_releases(
        &mut self,
        per_cohort: &[Release],
        merged: &Release,
    ) -> Result<(), ServeError> {
        self.ingest_releases_with(PolicyTag::PerShard, per_cohort, merged)
    }

    /// Ingest one fixed-window round: per-cohort [`Release`]s (in shard
    /// order) plus the merged release, tagged with the aggregation policy
    /// that produced them. All shards run in lockstep, so the variants
    /// agree; `Buffered` rounds store nothing. Atomic, like
    /// [`ingest_columns_with`](Self::ingest_columns_with) — a multi-column
    /// `Initial` release lands entirely or not at all.
    pub fn ingest_releases_with(
        &mut self,
        policy: PolicyTag,
        per_cohort: &[Release],
        merged: &Release,
    ) -> Result<(), ServeError> {
        match merged {
            Release::Buffered => {
                if per_cohort
                    .iter()
                    .any(|release| !matches!(release, Release::Buffered))
                {
                    return Err(ServeError::IngestMismatch(
                        "cohort/merged release variants disagree".to_string(),
                    ));
                }
                self.ingest_validated_rounds(policy, per_cohort.len(), &[])
            }
            Release::Initial(columns) => {
                let mut rounds = Vec::with_capacity(columns.len());
                for (round_offset, column) in columns.iter().enumerate() {
                    let parts: Vec<&BitColumn> = per_cohort
                        .iter()
                        .map(|release| match release {
                            Release::Initial(cols) => cols.get(round_offset).ok_or_else(|| {
                                ServeError::IngestMismatch(
                                    "cohort initial release narrower than merged".to_string(),
                                )
                            }),
                            _ => Err(ServeError::IngestMismatch(
                                "cohort/merged release variants disagree".to_string(),
                            )),
                        })
                        .collect::<Result<_, _>>()?;
                    rounds.push((parts, column));
                }
                let rounds: Vec<(&[&BitColumn], &BitColumn)> = rounds
                    .iter()
                    .map(|(parts, column)| (parts.as_slice(), *column))
                    .collect();
                self.ingest_validated_rounds(policy, per_cohort.len(), &rounds)
            }
            Release::Update(column) => {
                let parts: Vec<&BitColumn> = per_cohort
                    .iter()
                    .map(|release| match release {
                        Release::Update(col) => Ok(col),
                        _ => Err(ServeError::IngestMismatch(
                            "cohort/merged release variants disagree".to_string(),
                        )),
                    })
                    .collect::<Result<_, _>>()?;
                self.ingest_validated_rounds(policy, per_cohort.len(), &[(&parts, column)])
            }
        }
    }

    /// The single mutation path: check the policy tag and cohort count,
    /// validate every column of every round against the store's shape, and
    /// only then append — so any error leaves the store untouched.
    fn ingest_validated_rounds(
        &mut self,
        policy: PolicyTag,
        incoming_cohorts: usize,
        rounds: &[(&[&BitColumn], &BitColumn)],
    ) -> Result<(), ServeError> {
        if self.is_dynamic() {
            return Err(ServeError::IngestMismatch(
                "store holds dynamic (scheduled) rounds; lockstep rounds cannot mix in".to_string(),
            ));
        }
        if let Some(existing) = self.policy {
            if existing != policy {
                return Err(ServeError::IngestMismatch(format!(
                    "round tagged {policy}, store holds {existing} releases"
                )));
            }
        }
        let fresh = self.cohorts.is_empty() && self.merged.rounds() == 0;
        if !fresh && self.cohorts.len() != incoming_cohorts {
            return Err(ServeError::IngestMismatch(format!(
                "round carries {incoming_cohorts} cohort releases, store tracks {}",
                self.cohorts.len()
            )));
        }
        // Validation pass — no mutation yet. Expected record counts come
        // from the store if it has them, else from the first round of this
        // very batch (a multi-column Initial release must self-agree).
        let mut expected_merged = self.merged.records();
        let mut expected_cohorts: Vec<Option<usize>> = if fresh {
            vec![None; incoming_cohorts]
        } else {
            self.cohorts.iter().map(GrowingPanel::records).collect()
        };
        for (parts, merged) in rounds {
            // Under per-shard noise the merged column is the cohort
            // concatenation, so record counts must sum; a shared-noise
            // merged column is an independent population synthesis whose
            // n* is free to differ.
            if policy == PolicyTag::PerShard {
                let total: usize = parts.iter().map(|c| c.len()).sum();
                if total != merged.len() {
                    return Err(ServeError::IngestMismatch(format!(
                        "cohort columns cover {total} records, merged column {}",
                        merged.len()
                    )));
                }
            }
            match expected_merged {
                Some(records) if records != merged.len() => {
                    return Err(ServeError::IngestMismatch(format!(
                        "merged column has {} records, store holds {records}",
                        merged.len()
                    )));
                }
                _ => expected_merged = Some(merged.len()),
            }
            for (cohort, (expected, column)) in
                expected_cohorts.iter_mut().zip(parts.iter()).enumerate()
            {
                match *expected {
                    Some(records) if records != column.len() => {
                        return Err(ServeError::IngestMismatch(format!(
                            "cohort {cohort} column has {} records, panel holds {records}",
                            column.len()
                        )));
                    }
                    _ => *expected = Some(column.len()),
                }
            }
        }
        // Commit pass — every push is now guaranteed to succeed.
        if fresh {
            self.cohorts = vec![GrowingPanel::default(); incoming_cohorts];
        }
        self.policy = Some(policy);
        for (parts, merged) in rounds {
            self.merged
                .push(merged)
                .expect("validated against store shape");
            for (panel, column) in self.cohorts.iter_mut().zip(parts.iter()) {
                panel.push(column).expect("validated against store shape");
            }
        }
        Ok(())
    }

    /// Ingest one **dynamic-panel** round: the releases of the round's
    /// active cohorts, indexed by cohort, plus the merged active-set
    /// release.
    ///
    /// `round` is the global round (must be exactly the store's next),
    /// `cohorts` the panel's total cohort count (fixed by the first
    /// round), `active` the ascending indices of the cohorts that stepped,
    /// and `per_cohort[i]` the release of cohort `active[i]`. A cohort's
    /// first appearance pins its entry round; after that its columns must
    /// arrive contiguously (a retired cohort cannot resume). Atomic like
    /// lockstep ingestion: everything is validated before anything lands.
    pub fn ingest_active_columns(
        &mut self,
        policy: PolicyTag,
        round: usize,
        cohorts: usize,
        active: &[usize],
        per_cohort: &[BitColumn],
        merged: &BitColumn,
    ) -> Result<(), ServeError> {
        let fresh = self.policy.is_none() && self.cohorts.is_empty();
        if !fresh && !self.is_dynamic() {
            return Err(ServeError::IngestMismatch(
                "store holds static lockstep rounds; scheduled rounds cannot mix in".to_string(),
            ));
        }
        if let Some(existing) = self.policy {
            if existing != policy {
                return Err(ServeError::IngestMismatch(format!(
                    "round tagged {policy}, store holds {existing} releases"
                )));
            }
        }
        if cohorts == 0 {
            return Err(ServeError::IngestMismatch(
                "dynamic round declares zero cohorts".to_string(),
            ));
        }
        if !fresh && self.cohorts.len() != cohorts {
            return Err(ServeError::IngestMismatch(format!(
                "round declares {cohorts} cohorts, store tracks {}",
                self.cohorts.len()
            )));
        }
        if round != self.merged_rounds.len() {
            return Err(ServeError::IngestMismatch(format!(
                "round {round} out of order: store expects round {}",
                self.merged_rounds.len()
            )));
        }
        if active.is_empty() || active.len() != per_cohort.len() {
            return Err(ServeError::IngestMismatch(format!(
                "{} active cohorts but {} release columns",
                active.len(),
                per_cohort.len()
            )));
        }
        if active.windows(2).any(|pair| pair[0] >= pair[1]) || *active.last().unwrap() >= cohorts {
            return Err(ServeError::IngestMismatch(
                "active cohort indices must be ascending and within the panel".to_string(),
            ));
        }
        // Validation pass against the (possibly empty) dynamic state.
        let entries = self.entries.clone().unwrap_or_else(|| vec![None; cohorts]);
        for (&c, column) in active.iter().zip(per_cohort) {
            match entries[c] {
                None => {
                    // Entering now; nothing to check until commit.
                }
                Some(entry) => {
                    let local = self.cohorts[c].rounds();
                    if entry + local != round {
                        return Err(ServeError::IngestMismatch(format!(
                            "cohort {c} covers rounds {entry}..{} but round {round} arrived \
                             (cohort rounds must be contiguous; retired cohorts cannot resume)",
                            entry + local
                        )));
                    }
                    if let Some(records) = self.cohorts[c].records() {
                        if records != column.len() {
                            return Err(ServeError::IngestMismatch(format!(
                                "cohort {c} column has {} records, panel holds {records}",
                                column.len()
                            )));
                        }
                    }
                }
            }
        }
        if policy == PolicyTag::PerShard {
            let total: usize = per_cohort.iter().map(BitColumn::len).sum();
            if total != merged.len() {
                return Err(ServeError::IngestMismatch(format!(
                    "active cohort columns cover {total} records, merged column {}",
                    merged.len()
                )));
            }
        }
        // Commit pass.
        if fresh {
            self.cohorts = vec![GrowingPanel::default(); cohorts];
        }
        let mut entries = entries;
        for (&c, column) in active.iter().zip(per_cohort) {
            if entries[c].is_none() {
                entries[c] = Some(round);
            }
            self.cohorts[c]
                .push(column)
                .expect("validated against store shape");
        }
        self.entries = Some(entries);
        self.merged_rounds.push(merged.clone());
        self.merged_coverage.push(active.to_vec());
        self.policy = Some(policy);
        Ok(())
    }

    /// True once the store holds dynamic (scheduled) rounds — cohort
    /// panels then cover per-cohort round ranges and the merged release is
    /// ragged.
    pub fn is_dynamic(&self) -> bool {
        self.entries.is_some()
    }

    /// The global rounds cohort `c` covers so far (`None` while the store
    /// is static, or the cohort has not entered yet).
    pub fn cohort_window(&self, cohort: usize) -> Option<Range<usize>> {
        let entry = (*self.entries.as_ref()?.get(cohort)?)?;
        Some(entry..entry + self.cohorts[cohort].rounds())
    }

    /// The cohorts whose individuals round `t`'s merged release covers
    /// (dynamic stores only — a static store's merged release always
    /// covers every cohort). Under a shared-noise rotating panel this is
    /// the metadata consumers need to interpret a windowed population
    /// release: which cohorts' members the synthetic active set stands
    /// for.
    pub fn merged_coverage(&self, t: usize) -> Result<&[usize], ServeError> {
        self.merged_coverage
            .get(t)
            .map(Vec::as_slice)
            .ok_or(ServeError::RoundNotReleased {
                scope: StoreScope::Merged,
                round: t,
                available: self.merged_coverage.len(),
            })
    }

    /// A dynamic store's merged release of round `t` — the active set's
    /// release, whose record count varies with the schedule.
    pub fn merged_round(&self, t: usize) -> Result<&BitColumn, ServeError> {
        self.merged_rounds
            .get(t)
            .ok_or(ServeError::RoundNotReleased {
                scope: StoreScope::Merged,
                round: t,
                available: self.merged_rounds.len(),
            })
    }

    /// The aggregation policy tag of every ingested round (`None` while
    /// the store is empty). Consumers use it to decide whether the merged
    /// panel is the cohort concatenation ([`PolicyTag::PerShard`]) or an
    /// independent population synthesis ([`PolicyTag::Shared`]).
    pub fn policy(&self) -> Option<PolicyTag> {
        self.policy
    }

    /// Released global rounds: the merged panel's rounds for a static
    /// store (cohort panels always agree — lockstep ingestion), the count
    /// of ragged merged rounds for a dynamic one.
    pub fn rounds(&self) -> usize {
        if self.is_dynamic() {
            self.merged_rounds.len()
        } else {
            self.merged.rounds()
        }
    }

    /// Number of cohorts tracked (0 until the first round arrives).
    pub fn cohorts(&self) -> usize {
        self.cohorts.len()
    }

    /// Records in the merged release (`None` until the first round, and
    /// for dynamic stores, whose merged record count varies per round —
    /// see [`merged_round`](Self::merged_round)).
    pub fn records(&self) -> Option<usize> {
        if self.is_dynamic() {
            None
        } else {
            self.merged.records()
        }
    }

    /// Borrow the stored panel for `scope`, if any rounds exist there.
    ///
    /// A dynamic store's cohort panels cover the cohort's **local**
    /// rounds (global round = [`cohort_window`](Self::cohort_window)'s
    /// start + local index); its merged scope is ragged and has no
    /// rectangular panel ([`ServeError::ScopeNotRectangular`]).
    pub fn panel(&self, scope: StoreScope) -> Result<&LongitudinalDataset, ServeError> {
        let growing = match scope {
            StoreScope::Merged if self.is_dynamic() => {
                return Err(ServeError::ScopeNotRectangular(scope));
            }
            StoreScope::Merged => &self.merged,
            StoreScope::Cohort(c) => self.cohorts.get(c).ok_or(ServeError::UnknownCohort {
                cohort: c,
                cohorts: self.cohorts.len(),
            })?,
        };
        growing.panel().ok_or(ServeError::NothingReleased(scope))
    }

    /// Answer one query directly from stored releases — no synthesis, no
    /// caching (the [`QueryService`](crate::QueryService) layers the cache
    /// on top of this).
    ///
    /// Dynamic stores answer cohort scopes at the cohort's local round
    /// (rounds outside its window are
    /// [`ServeError::RoundNotCovered`]) and the merged scope as the
    /// size-weighted combination of the covering cohorts — for window and
    /// pattern queries, only cohorts that observed the *entire* window
    /// count.
    pub fn answer(&self, query: &ServeQuery) -> Result<f64, ServeError> {
        if self.is_dynamic() {
            return self.answer_dynamic(query);
        }
        let panel = self.panel(query.scope)?;
        let check_round = |t: usize| {
            if t >= panel.rounds() {
                Err(ServeError::RoundNotReleased {
                    scope: query.scope,
                    round: t,
                    available: panel.rounds(),
                })
            } else {
                Ok(())
            }
        };
        match &query.kind {
            QueryKind::Window { t, query: window } => {
                check_round(*t)?;
                if *t + 1 < window.width() {
                    return Err(ServeError::WindowUnderflow {
                        round: *t,
                        width: window.width(),
                    });
                }
                Ok(window.evaluate_true(panel, *t))
            }
            QueryKind::Pattern { t, pattern } => {
                check_round(*t)?;
                if *t + 1 < pattern.width() {
                    return Err(ServeError::WindowUnderflow {
                        round: *t,
                        width: pattern.width(),
                    });
                }
                Ok(WindowQuery::pattern(*pattern).evaluate_true(panel, *t))
            }
            QueryKind::CumulativeFraction { t, b } => {
                check_round(*t)?;
                Ok(cumulative_fraction(panel, *t, *b))
            }
        }
    }

    /// The dynamic branch of [`answer`](Self::answer).
    fn answer_dynamic(&self, query: &ServeQuery) -> Result<f64, ServeError> {
        // A cohort query at global round t reads the cohort's local panel.
        if let StoreScope::Cohort(c) = query.scope {
            if c >= self.cohorts.len() {
                return Err(ServeError::UnknownCohort {
                    cohort: c,
                    cohorts: self.cohorts.len(),
                });
            }
            let window = self
                .cohort_window(c)
                .ok_or(ServeError::NothingReleased(query.scope))?;
            let panel = self.cohorts[c]
                .panel()
                .ok_or(ServeError::NothingReleased(query.scope))?;
            let t = query.kind.round();
            if !window.contains(&t) {
                return Err(ServeError::RoundNotCovered {
                    scope: query.scope,
                    round: t,
                    covered: window,
                });
            }
            let local = t - window.start;
            return match &query.kind {
                QueryKind::Window { query: window, .. } => {
                    // The cohort must have observed the whole window.
                    if local + 1 < window.width() {
                        return Err(ServeError::WindowUnderflow {
                            round: t,
                            width: window.width(),
                        });
                    }
                    Ok(window.evaluate_true(panel, local))
                }
                QueryKind::Pattern { pattern, .. } => {
                    if local + 1 < pattern.width() {
                        return Err(ServeError::WindowUnderflow {
                            round: t,
                            width: pattern.width(),
                        });
                    }
                    Ok(WindowQuery::pattern(*pattern).evaluate_true(panel, local))
                }
                QueryKind::CumulativeFraction { b, .. } => {
                    Ok(cumulative_fraction(panel, local, *b))
                }
            };
        }
        // Merged scope: size-weighted combination over covering cohorts.
        let t = query.kind.round();
        if t >= self.rounds() {
            return Err(ServeError::RoundNotReleased {
                scope: query.scope,
                round: t,
                available: self.rounds(),
            });
        }
        let width = match &query.kind {
            QueryKind::Window { query, .. } => query.width(),
            QueryKind::Pattern { pattern, .. } => pattern.width(),
            QueryKind::CumulativeFraction { .. } => 1,
        };
        if t + 1 < width {
            return Err(ServeError::WindowUnderflow { round: t, width });
        }
        let parts = (0..self.cohorts.len()).filter_map(|c| {
            let window = self.cohort_window(c)?;
            // The cohort must cover the query's whole span [t-width+1, t].
            if !window.contains(&t) || t + 1 - width < window.start {
                return None;
            }
            let panel = self.cohorts[c].panel()?;
            let local = t - window.start;
            let answer = match &query.kind {
                QueryKind::Window { query, .. } => query.evaluate_true(panel, local),
                QueryKind::Pattern { pattern, .. } => {
                    WindowQuery::pattern(*pattern).evaluate_true(panel, local)
                }
                QueryKind::CumulativeFraction { b, .. } => cumulative_fraction(panel, local, *b),
            };
            Some((answer, panel.individuals()))
        });
        active_weighted_mean(parts).ok_or(ServeError::WindowNotCovered { round: t, width })
    }

    pub(crate) fn from_parts(
        merged: GrowingPanel,
        cohorts: Vec<GrowingPanel>,
        policy: Option<PolicyTag>,
    ) -> Self {
        Self {
            merged,
            cohorts,
            policy,
            entries: None,
            merged_rounds: Vec::new(),
            merged_coverage: Vec::new(),
        }
    }

    pub(crate) fn parts(&self) -> (&GrowingPanel, &[GrowingPanel]) {
        (&self.merged, &self.cohorts)
    }

    /// Rebuild a dynamic store from snapshot parts, re-validating the
    /// cohort × round-range invariants. `coverage` is the per-round
    /// cohort-coverage metadata (snapshot v4); `None` (pre-v4 snapshots)
    /// derives it from the cohort windows — exactly what live ingestion
    /// records, since a round's active set is the set of cohorts whose
    /// window contains it.
    pub(crate) fn from_dynamic_parts(
        cohorts: Vec<GrowingPanel>,
        entries: Vec<Option<usize>>,
        merged_rounds: Vec<BitColumn>,
        coverage: Option<Vec<Vec<usize>>>,
        policy: Option<PolicyTag>,
    ) -> Result<Self, ServeError> {
        if cohorts.len() != entries.len() {
            return Err(ServeError::Snapshot(format!(
                "{} cohorts but {} entry rounds",
                cohorts.len(),
                entries.len()
            )));
        }
        let rounds = merged_rounds.len();
        for (c, (panel, entry)) in cohorts.iter().zip(&entries).enumerate() {
            match (panel.rounds(), entry) {
                (0, None) => {}
                (_, None) => {
                    return Err(ServeError::Snapshot(format!(
                        "cohort {c} has columns but no entry round"
                    )));
                }
                (local, Some(entry)) => {
                    if local == 0 {
                        return Err(ServeError::Snapshot(format!(
                            "cohort {c} has an entry round but no columns"
                        )));
                    }
                    if entry + local > rounds {
                        return Err(ServeError::Snapshot(format!(
                            "cohort {c} covers rounds {entry}..{} but the store has {rounds}",
                            entry + local
                        )));
                    }
                }
            }
        }
        if policy == Some(PolicyTag::PerShard) {
            // Per-shard merged rounds are active-set concatenations:
            // record counts must sum per round.
            for (t, merged) in merged_rounds.iter().enumerate() {
                let covered: usize = cohorts
                    .iter()
                    .zip(&entries)
                    .filter_map(|(panel, entry)| {
                        let entry = (*entry)?;
                        (entry <= t && t < entry + panel.rounds()).then(|| panel.records())?
                    })
                    .sum();
                if covered != merged.len() {
                    return Err(ServeError::Snapshot(format!(
                        "round {t}: active cohorts cover {covered} records, merged column {}",
                        merged.len()
                    )));
                }
            }
        }
        if rounds > 0 && policy.is_none() {
            return Err(ServeError::Snapshot(
                "dynamic store with rounds carries no policy tag".to_string(),
            ));
        }
        // Coverage: the round's active set is exactly the cohorts whose
        // window contains it; recorded metadata must agree, pre-v4
        // snapshots derive it.
        let derived: Vec<Vec<usize>> = (0..rounds)
            .map(|t| {
                cohorts
                    .iter()
                    .zip(&entries)
                    .enumerate()
                    .filter_map(|(c, (panel, entry))| {
                        let entry = (*entry)?;
                        (entry <= t && t < entry + panel.rounds()).then_some(c)
                    })
                    .collect()
            })
            .collect();
        let merged_coverage = match coverage {
            None => derived,
            Some(recorded) => {
                if recorded != derived {
                    return Err(ServeError::Snapshot(
                        "merged-round coverage metadata disagrees with the cohort windows"
                            .to_string(),
                    ));
                }
                recorded
            }
        };
        Ok(Self {
            merged: GrowingPanel::default(),
            cohorts,
            policy,
            entries: Some(entries),
            merged_rounds,
            merged_coverage,
        })
    }

    #[allow(clippy::type_complexity)]
    pub(crate) fn dynamic_parts(
        &self,
    ) -> (
        &[GrowingPanel],
        Option<&[Option<usize>]>,
        &[BitColumn],
        &[Vec<usize>],
    ) {
        (
            &self.cohorts,
            self.entries.as_deref(),
            &self.merged_rounds,
            &self.merged_coverage,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_queries::Pattern;

    fn col(bits: &[bool]) -> BitColumn {
        BitColumn::from_bools(bits)
    }

    fn two_cohort_round(a: &[bool], b: &[bool]) -> (Vec<BitColumn>, BitColumn) {
        let merged: Vec<bool> = a.iter().chain(b).copied().collect();
        (vec![col(a), col(b)], col(&merged))
    }

    #[test]
    fn ingest_columns_grows_all_scopes_in_lockstep() {
        let mut store = ReleaseStore::new();
        let (parts, merged) = two_cohort_round(&[true, false], &[false, true, true]);
        store.ingest_columns(&parts, &merged).unwrap();
        let (parts, merged) = two_cohort_round(&[false, false], &[true, true, false]);
        store.ingest_columns(&parts, &merged).unwrap();

        assert_eq!(store.rounds(), 2);
        assert_eq!(store.cohorts(), 2);
        assert_eq!(store.records(), Some(5));
        assert_eq!(store.panel(StoreScope::Merged).unwrap().rounds(), 2);
        assert_eq!(store.panel(StoreScope::Cohort(1)).unwrap().individuals(), 3);
    }

    #[test]
    fn ingest_rejects_shape_changes() {
        let mut store = ReleaseStore::new();
        let (parts, merged) = two_cohort_round(&[true], &[false]);
        store.ingest_columns(&parts, &merged).unwrap();
        // Wrong cohort count.
        assert!(matches!(
            store.ingest_columns(&[col(&[true])], &col(&[true])),
            Err(ServeError::IngestMismatch(_))
        ));
        // Wrong record count.
        let (parts, _) = two_cohort_round(&[true], &[false]);
        assert!(matches!(
            store.ingest_columns(&parts, &col(&[true, false, true])),
            Err(ServeError::IngestMismatch(_))
        ));
    }

    #[test]
    fn rejected_rounds_leave_the_store_untouched() {
        let mut store = ReleaseStore::new();
        let (parts, merged) = two_cohort_round(&[true, false], &[false, true]);
        store.ingest_columns(&parts, &merged).unwrap();
        let before = store.clone();

        // Merged column consistent with the store, but cohort 1's column
        // has the wrong record count: the round must be rejected *whole*
        // (previously the merged panel kept the push, silently breaking
        // lockstep and making every later snapshot unrestorable).
        let bad_parts = vec![col(&[true, false]), col(&[true, false, false])];
        let bad_merged = col(&[true, false, true, false]);
        assert!(matches!(
            store.ingest_columns(&bad_parts, &bad_merged),
            Err(ServeError::IngestMismatch(_))
        ));
        assert_eq!(store, before, "failed ingest must not mutate the store");
        // The store still works and still snapshots/restores.
        let (parts, merged) = two_cohort_round(&[false, false], &[true, true]);
        store.ingest_columns(&parts, &merged).unwrap();
        assert_eq!(store.rounds(), 2);
        let restored = ReleaseStore::from_snapshot_json(&store.to_snapshot_json()).unwrap();
        assert_eq!(restored, store);

        // Same atomicity for a multi-column Initial release: one bad
        // column in round 2-of-2 rejects both columns.
        let mut store = ReleaseStore::new();
        let good = Release::Initial(vec![col(&[true]), col(&[false])]);
        let ragged = Release::Initial(vec![col(&[true]), col(&[false, true])]);
        let merged = Release::Initial(vec![col(&[true, true]), col(&[false, false])]);
        let before = store.clone();
        assert!(store.ingest_releases(&[good, ragged], &merged).is_err());
        assert_eq!(store, before);
    }

    #[test]
    fn window_releases_expand_variants() {
        let mut store = ReleaseStore::new();
        // Buffered round: nothing stored.
        store
            .ingest_releases(&[Release::Buffered, Release::Buffered], &Release::Buffered)
            .unwrap();
        assert_eq!(store.rounds(), 0);
        // Initial round: both seed columns land.
        let merged = Release::Initial(vec![col(&[true, false, true]), col(&[false, false, true])]);
        let parts = vec![
            Release::Initial(vec![col(&[true, false]), col(&[false, false])]),
            Release::Initial(vec![col(&[true]), col(&[true])]),
        ];
        store.ingest_releases(&parts, &merged).unwrap();
        assert_eq!(store.rounds(), 2);
        // Update round.
        let merged = Release::Update(col(&[true, true, false]));
        let parts = vec![
            Release::Update(col(&[true, true])),
            Release::Update(col(&[false])),
        ];
        store.ingest_releases(&parts, &merged).unwrap();
        assert_eq!(store.rounds(), 3);
        assert_eq!(store.panel(StoreScope::Cohort(0)).unwrap().rounds(), 3);
        // Mismatched variants error.
        assert!(store
            .ingest_releases(
                &[Release::Buffered, Release::Buffered],
                &Release::Update(col(&[true, true, false]))
            )
            .is_err());
    }

    #[test]
    fn shared_rounds_relax_the_concatenation_check() {
        // A shared-noise merged release is an independent population
        // synthesis: its record count need not equal the cohort sum.
        let mut store = ReleaseStore::new();
        let parts = vec![col(&[true, false]), col(&[false])];
        let merged = col(&[true, false, true, true, false]); // 5 != 2 + 1
        store
            .ingest_columns_with(PolicyTag::Shared, &parts, &merged)
            .unwrap();
        assert_eq!(store.policy(), Some(PolicyTag::Shared));
        assert_eq!(store.records(), Some(5));
        assert_eq!(store.panel(StoreScope::Cohort(0)).unwrap().individuals(), 2);
        // The same round is rejected under per-shard semantics...
        let mut strict = ReleaseStore::new();
        assert!(matches!(
            strict.ingest_columns_with(PolicyTag::PerShard, &parts, &merged),
            Err(ServeError::IngestMismatch(_))
        ));
        // ...and a store never changes policy mid-stream.
        let err = store
            .ingest_columns_with(PolicyTag::PerShard, &parts, &merged)
            .unwrap_err();
        assert!(err.to_string().contains("per-shard"), "{err}");
        // Per-panel record consistency still holds under shared.
        assert!(store
            .ingest_columns_with(PolicyTag::Shared, &parts, &col(&[true, true]))
            .is_err());
    }

    #[test]
    fn untagged_ingest_defaults_to_per_shard() {
        let mut store = ReleaseStore::new();
        let (parts, merged) = two_cohort_round(&[true], &[false]);
        store.ingest_columns(&parts, &merged).unwrap();
        assert_eq!(store.policy(), Some(PolicyTag::PerShard));
    }

    #[test]
    fn answers_cover_all_query_kinds_and_scopes() {
        let mut store = ReleaseStore::new();
        for round in 0..4 {
            let (parts, merged) =
                two_cohort_round(&[round % 2 == 0, true], &[false, round >= 1, true]);
            store.ingest_columns(&parts, &merged).unwrap();
        }
        let ask = |scope, kind| store.answer(&ServeQuery { scope, kind }).unwrap();
        // Cumulative: every record of cohort 0 has weight >= 1 by t=1.
        assert_eq!(
            ask(
                StoreScope::Cohort(0),
                QueryKind::CumulativeFraction { t: 1, b: 1 }
            ),
            1.0
        );
        // Window query on the merged panel.
        let battery = WindowQuery::at_least_m_ones(2, 1);
        let v = ask(
            StoreScope::Merged,
            QueryKind::Window {
                t: 3,
                query: battery,
            },
        );
        assert!((0.0..=1.0).contains(&v));
        // Pattern indicator.
        let v = ask(
            StoreScope::Merged,
            QueryKind::Pattern {
                t: 2,
                pattern: Pattern::parse("11"),
            },
        );
        assert!((0.0..=1.0).contains(&v));
    }

    /// A small rotating panel: cohort 0 covers rounds 0–1, cohort 1
    /// covers 0–2, cohort 2 joins at round 1, cohort 3 at round 2.
    fn rotating_store() -> ReleaseStore {
        let mut store = ReleaseStore::new();
        let c0 = [col(&[true, false]), col(&[true, true])];
        let c1 = [
            col(&[false, true, true]),
            col(&[false, false, true]),
            col(&[true, true, true]),
        ];
        let c2 = [col(&[true]), col(&[false])];
        let c3 = [col(&[false, true])];
        let rounds: [(&[usize], Vec<&BitColumn>); 3] = [
            (&[0, 1], vec![&c0[0], &c1[0]]),
            (&[0, 1, 2], vec![&c0[1], &c1[1], &c2[0]]),
            (&[1, 2, 3], vec![&c1[2], &c2[1], &c3[0]]),
        ];
        for (round, (active, parts)) in rounds.into_iter().enumerate() {
            let owned: Vec<BitColumn> = parts.iter().map(|c| (*c).clone()).collect();
            let merged = BitColumn::concat(owned.iter());
            store
                .ingest_active_columns(PolicyTag::PerShard, round, 4, active, &owned, &merged)
                .unwrap();
        }
        store
    }

    #[test]
    fn dynamic_rounds_index_by_cohort_round_range() {
        let store = rotating_store();
        assert!(store.is_dynamic());
        assert_eq!(store.rounds(), 3);
        assert_eq!(store.cohorts(), 4);
        assert_eq!(store.records(), None, "dynamic merged is ragged");
        assert_eq!(store.cohort_window(0), Some(0..2));
        assert_eq!(store.cohort_window(1), Some(0..3));
        assert_eq!(store.cohort_window(2), Some(1..3));
        assert_eq!(store.cohort_window(3), Some(2..3));
        // Ragged merged rounds carry the active population per round.
        assert_eq!(store.merged_round(0).unwrap().len(), 5);
        assert_eq!(store.merged_round(1).unwrap().len(), 6);
        assert_eq!(store.merged_round(2).unwrap().len(), 6);
        assert!(store.merged_round(3).is_err());
        // The merged scope has no rectangular panel; cohorts do.
        assert!(matches!(
            store.panel(StoreScope::Merged),
            Err(ServeError::ScopeNotRectangular(StoreScope::Merged))
        ));
        assert_eq!(store.panel(StoreScope::Cohort(2)).unwrap().rounds(), 2);
    }

    #[test]
    fn dynamic_cohort_queries_translate_to_local_rounds() {
        let store = rotating_store();
        // Cohort 2 at global round 1 is its local round 0: one record set.
        let ask = |scope, kind| store.answer(&ServeQuery { scope, kind });
        assert_eq!(
            ask(
                StoreScope::Cohort(2),
                QueryKind::CumulativeFraction { t: 1, b: 1 }
            )
            .unwrap(),
            1.0
        );
        // Outside the cohort's window: descriptive coverage error.
        match ask(
            StoreScope::Cohort(2),
            QueryKind::CumulativeFraction { t: 0, b: 1 },
        ) {
            Err(ServeError::RoundNotCovered {
                round: 0, covered, ..
            }) => assert_eq!(covered, 1..3),
            other => panic!("expected RoundNotCovered, got {other:?}"),
        }
        // A retired cohort's released rounds stay queryable forever.
        assert!(ask(
            StoreScope::Cohort(0),
            QueryKind::CumulativeFraction { t: 1, b: 2 }
        )
        .is_ok());
        assert!(matches!(
            ask(
                StoreScope::Cohort(0),
                QueryKind::CumulativeFraction { t: 2, b: 1 }
            ),
            Err(ServeError::RoundNotCovered { .. })
        ));
    }

    #[test]
    fn dynamic_merged_answers_pool_covering_cohorts() {
        let store = rotating_store();
        // Round 1 cumulative b=1: cohorts 0 (2 records, both ≥1 by local
        // round 1), 1 (3 records: r0 {0,1,1}, r1 {0,0,1} → weights 0,1,2 →
        // fraction 2/3), 2 (1 record, weight 1 → 1.0).
        let value = store
            .answer(&ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::CumulativeFraction { t: 1, b: 1 },
            })
            .unwrap();
        let expected = (1.0 * 2.0 + (2.0 / 3.0) * 3.0 + 1.0) / 6.0;
        assert!((value - expected).abs() < 1e-12, "{value} vs {expected}");
        // A width-2 window at round 2 only counts cohorts observing both
        // rounds 1 and 2: cohorts 1 and 2 (cohort 3 entered mid-window).
        let value = store
            .answer(&ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::Window {
                    t: 2,
                    query: WindowQuery::at_least_m_ones(2, 1),
                },
            })
            .unwrap();
        assert!((0.0..=1.0).contains(&value));
        // Cohort 1 spans all three rounds, so even the full-width window
        // has a covering cohort.
        assert!(store
            .answer(&ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::Window {
                    t: 2,
                    query: WindowQuery::at_least_m_ones(3, 1),
                },
            })
            .is_ok());
        // In a panel where every cohort rotates, a window spanning the
        // rotation boundary has no covering cohort — named as such.
        let mut rotated = ReleaseStore::new();
        let rounds: [(&[usize], BitColumn); 3] = [
            (&[0], col(&[true, false])),
            (&[0, 1], col(&[false, true, true])),
            (&[1], col(&[false])),
        ];
        for (round, (active, merged)) in rounds.into_iter().enumerate() {
            let parts: Vec<BitColumn> = match active.len() {
                1 => vec![merged.clone()],
                _ => vec![merged.slice(0..2), merged.slice(2..3)],
            };
            rotated
                .ingest_active_columns(PolicyTag::PerShard, round, 2, active, &parts, &merged)
                .unwrap();
        }
        // Width 3 at t=2 spans rounds 0..=2: cohort 0 retired after round
        // 1, cohort 1 entered at round 1 — nobody saw the whole window.
        assert!(matches!(
            rotated.answer(&ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::Window {
                    t: 2,
                    query: WindowQuery::at_least_m_ones(3, 1),
                },
            }),
            Err(ServeError::WindowNotCovered { round: 2, width: 3 })
        ));
    }

    /// Shared-noise rotating rounds: the merged column is an independent
    /// windowed population synthesis (constant active size, no
    /// concatenation constraint), and every round records which cohorts
    /// it covers.
    #[test]
    fn shared_rotating_rounds_carry_coverage_metadata() {
        let mut store = ReleaseStore::new();
        // Two waves of 2 over 3 rounds: cohorts 0 (rounds 0), 1 (0-1),
        // 2 (1-2), 3 (2). Active population 4 per round; the merged
        // population release has its own constant 4 records.
        let rounds: [(&[usize], Vec<BitColumn>); 3] = [
            (&[0, 1], vec![col(&[true, false]), col(&[false, true])]),
            (&[1, 2], vec![col(&[true, true]), col(&[false, false])]),
            (&[2, 3], vec![col(&[true, false]), col(&[false, true])]),
        ];
        for (round, (active, parts)) in rounds.into_iter().enumerate() {
            // Independent population synthesis: NOT the concatenation.
            let merged = col(&[round % 2 == 0, true, false, round == 2]);
            store
                .ingest_active_columns(PolicyTag::Shared, round, 4, active, &parts, &merged)
                .unwrap();
        }
        assert!(store.is_dynamic());
        assert_eq!(store.policy(), Some(PolicyTag::Shared));
        assert_eq!(store.merged_coverage(0).unwrap(), &[0, 1]);
        assert_eq!(store.merged_coverage(1).unwrap(), &[1, 2]);
        assert_eq!(store.merged_coverage(2).unwrap(), &[2, 3]);
        assert!(store.merged_coverage(3).is_err());
        assert_eq!(store.merged_round(1).unwrap().len(), 4);
        // Merged-scope answers still pool the covering cohorts' panels.
        let value = store
            .answer(&ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::CumulativeFraction { t: 1, b: 1 },
            })
            .unwrap();
        assert!((0.0..=1.0).contains(&value));
        // Coverage survives the snapshot round trip.
        let restored = ReleaseStore::from_snapshot_json(&store.to_snapshot_json()).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.merged_coverage(2).unwrap(), &[2, 3]);
    }

    #[test]
    fn dynamic_ingest_validation_is_strict() {
        let mut store = rotating_store();
        let before = store.clone();
        // Round out of order.
        assert!(matches!(
            store.ingest_active_columns(
                PolicyTag::PerShard,
                5,
                4,
                &[1],
                &[col(&[true, true, true])],
                &col(&[true, true, true]),
            ),
            Err(ServeError::IngestMismatch(_))
        ));
        // A retired cohort cannot resume (cohort 0 stopped after round 1).
        let err = store
            .ingest_active_columns(
                PolicyTag::PerShard,
                3,
                4,
                &[0],
                &[col(&[true, false])],
                &col(&[true, false]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("contiguous"), "{err}");
        // Non-ascending active indices.
        assert!(store
            .ingest_active_columns(
                PolicyTag::PerShard,
                3,
                4,
                &[2, 1],
                &[col(&[true]), col(&[true, false, true])],
                &col(&[true, true, false, true]),
            )
            .is_err());
        // Concatenation mismatch under per-shard.
        assert!(store
            .ingest_active_columns(
                PolicyTag::PerShard,
                3,
                4,
                &[1],
                &[col(&[true, false, true])],
                &col(&[true]),
            )
            .is_err());
        assert_eq!(store, before, "failed ingests must not mutate");
        // Static and dynamic rounds never mix, in either direction.
        let (parts, merged) = two_cohort_round(&[true], &[false]);
        assert!(store.ingest_columns(&parts, &merged).is_err());
        let mut static_store = ReleaseStore::new();
        static_store.ingest_columns(&parts, &merged).unwrap();
        assert!(static_store
            .ingest_active_columns(
                PolicyTag::PerShard,
                1,
                2,
                &[0],
                &[col(&[true])],
                &col(&[true]),
            )
            .is_err());
    }

    #[test]
    fn answer_errors_are_descriptive() {
        let store = ReleaseStore::new();
        let q = ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::CumulativeFraction { t: 0, b: 1 },
        };
        assert!(matches!(
            store.answer(&q),
            Err(ServeError::NothingReleased(StoreScope::Merged))
        ));

        let mut store = ReleaseStore::new();
        let (parts, merged) = two_cohort_round(&[true], &[false]);
        store.ingest_columns(&parts, &merged).unwrap();
        // Round too far ahead.
        let q = ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::CumulativeFraction { t: 5, b: 1 },
        };
        assert!(matches!(
            store.answer(&q),
            Err(ServeError::RoundNotReleased {
                round: 5,
                available: 1,
                ..
            })
        ));
        // Unknown cohort.
        let q = ServeQuery {
            scope: StoreScope::Cohort(7),
            kind: QueryKind::CumulativeFraction { t: 0, b: 1 },
        };
        assert!(matches!(
            store.answer(&q),
            Err(ServeError::UnknownCohort {
                cohort: 7,
                cohorts: 2
            })
        ));
        // Window underflow.
        let q = ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::Window {
                t: 0,
                query: WindowQuery::all_ones(3),
            },
        };
        assert!(matches!(
            store.answer(&q),
            Err(ServeError::WindowUnderflow { round: 0, width: 3 })
        ));
        // Display impls mention the key facts.
        let msg = ServeError::UnknownCohort {
            cohort: 7,
            cohorts: 2,
        }
        .to_string();
        assert!(msg.contains('7') && msg.contains('2'));
    }
}
