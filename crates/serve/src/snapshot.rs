//! JSON snapshot/restore of a [`ReleaseStore`] — full and incremental.
//!
//! A continual release runs for months; the serving process must not lose
//! the archive on restart. [`snapshot_json`] renders the whole store —
//! merged panel, every cohort panel, cohort count, aggregation-policy tag —
//! as a self-describing JSON document, and [`restore_json`] rebuilds a
//! store whose query answers are **bit-identical** (the property-based
//! tests in `tests/prop_store.rs` pin this down over random release
//! sequences).
//!
//! Full snapshots are O(store), which is the wrong cost for *periodic*
//! checkpoints of an append-only archive. [`snapshot_since_json`] exports
//! only the rounds released after a known base round — O(delta) — and
//! [`apply_delta_json`] replays such a delta onto a store holding exactly
//! that base. Restoring a base snapshot and chaining deltas is equivalent,
//! bit for bit, to restoring one full snapshot (property-tested).
//!
//! Bit columns travel as hex strings of their packed little-endian `u64`
//! words (16 hex digits per word) rather than JSON numbers: lossless at
//! any width, compact, and independent of JSON number precision.

use longsynth_data::{BitColumn, LongitudinalDataset};
use longsynth_engine::PolicyTag;
use serde::Serialize;

use crate::store::{GrowingPanel, ReleaseStore, ServeError};

/// Format tag embedded in every full snapshot; bump on layout changes.
/// v4 added cohort-coverage metadata on a dynamic store's merged rounds
/// (the windowed shared-noise population releases); v3 added
/// dynamic-panel schedules (per-cohort entry rounds, ragged merged
/// rounds); v2 added the aggregation-policy tag; v1 documents restore as
/// per-shard-era stores (no tag recorded).
const FORMAT: &str = "longsynth-release-store/v4";
/// The pre-coverage dynamic format, still restorable (coverage derives
/// from the cohort windows).
const FORMAT_V3: &str = "longsynth-release-store/v3";
/// The pre-schedule format, still restorable (static stores only).
const FORMAT_V2: &str = "longsynth-release-store/v2";
/// The pre-policy format, still restorable.
const FORMAT_V1: &str = "longsynth-release-store/v1";
/// Format tag of incremental (delta) snapshots. v2 carries dynamic-panel
/// rounds; v1 (static-only) deltas still apply.
const DELTA_FORMAT: &str = "longsynth-release-store-delta/v2";
/// The pre-schedule delta format, still applicable to static stores.
const DELTA_FORMAT_V1: &str = "longsynth-release-store-delta/v1";

#[derive(Serialize)]
struct PanelDto {
    records: u64,
    columns: Vec<String>,
}

/// A cohort panel plus its dynamic-panel entry round (`None` for static
/// stores, whose cohorts all cover every round).
#[derive(Serialize)]
struct CohortDto {
    records: u64,
    entry: Option<u64>,
    columns: Vec<String>,
}

/// One ragged merged round of a dynamic store.
#[derive(Serialize)]
struct RaggedColumnDto {
    records: u64,
    column: String,
}

#[derive(Serialize)]
struct SnapshotDto {
    format: String,
    policy: Option<String>,
    /// True for dynamic (scheduled) stores: `merged` is null and
    /// `merged_rounds`/cohort `entry` fields carry the panel lifecycle.
    dynamic: bool,
    merged: Option<PanelDto>,
    merged_rounds: Vec<RaggedColumnDto>,
    /// Cohort coverage of each dynamic merged round (v4; empty for
    /// static stores).
    coverage: Vec<Vec<u64>>,
    cohorts: Vec<Option<CohortDto>>,
}

#[derive(Serialize)]
struct DeltaDto {
    format: String,
    policy: Option<String>,
    dynamic: bool,
    /// Rounds the receiving store must already hold.
    base_rounds: u64,
    /// Rounds this delta appends.
    delta_rounds: u64,
    merged: Option<PanelDto>,
    merged_rounds: Vec<RaggedColumnDto>,
    cohorts: Vec<Option<CohortDto>>,
}

fn column_to_hex(column: &BitColumn) -> String {
    let mut out = String::with_capacity(column.as_words().len() * 16);
    for word in column.as_words() {
        out.push_str(&format!("{word:016x}"));
    }
    out
}

fn column_from_hex(hex: &str, records: usize) -> Result<BitColumn, ServeError> {
    let expected_words = records.div_ceil(64);
    if hex.len() != expected_words * 16 {
        return Err(ServeError::Snapshot(format!(
            "column hex has {} digits, expected {} for {records} records",
            hex.len(),
            expected_words * 16
        )));
    }
    let mut words = Vec::with_capacity(expected_words);
    for chunk in 0..expected_words {
        let digits = &hex[chunk * 16..(chunk + 1) * 16];
        let word = u64::from_str_radix(digits, 16)
            .map_err(|_| ServeError::Snapshot(format!("invalid hex word {digits:?}")))?;
        words.push(word);
    }
    Ok(BitColumn::from_words(words, records))
}

fn panel_to_dto(panel: &GrowingPanel) -> Option<PanelDto> {
    panel.panel().map(|dataset| PanelDto {
        records: dataset.individuals() as u64,
        columns: (0..dataset.rounds())
            .map(|t| column_to_hex(dataset.column(t)))
            .collect(),
    })
}

/// A cohort panel as a [`CohortDto`], carrying the columns of **local**
/// rounds `since..` (possibly none — the record count still travels so
/// the receiver can validate shape) plus the cohort's entry round.
fn cohort_to_dto(panel: &GrowingPanel, entry: Option<usize>, since: usize) -> Option<CohortDto> {
    panel.panel().map(|dataset| CohortDto {
        records: dataset.individuals() as u64,
        entry: entry.map(|e| e as u64),
        columns: (since.min(dataset.rounds())..dataset.rounds())
            .map(|t| column_to_hex(dataset.column(t)))
            .collect(),
    })
}

fn ragged_to_dto(column: &BitColumn) -> RaggedColumnDto {
    RaggedColumnDto {
        records: column.len() as u64,
        column: column_to_hex(column),
    }
}

/// Interprets one JSON value as a non-negative integer index, naming the
/// offending value when it is a number of the wrong shape (negative,
/// fractional, or too large for a 64-bit index) rather than absent.
fn index_from_value(raw: &serde_json::Value, what: &str) -> Result<usize, ServeError> {
    raw.as_usize().ok_or_else(|| {
        let detail = match raw.as_f64() {
            Some(n) if n < 0.0 => format!("{n} is negative"),
            Some(n) if n.fract() != 0.0 => format!("{n} is fractional"),
            Some(n) => format!("{n} overflows a 64-bit index"),
            None => format!("expected a number, found {raw:?}"),
        };
        ServeError::Snapshot(format!("{what} must be a non-negative integer: {detail}"))
    })
}

/// Reads a required non-negative integer field, distinguishing an absent
/// key from a present-but-invalid number so restore failures say which.
fn index_field(value: &serde_json::Value, key: &str, context: &str) -> Result<usize, ServeError> {
    let raw = value
        .get(key)
        .ok_or_else(|| ServeError::Snapshot(format!("{context} missing `{key}`")))?;
    index_from_value(raw, &format!("{context} `{key}`"))
}

fn ragged_from_value(value: &serde_json::Value) -> Result<BitColumn, ServeError> {
    let records = index_field(value, "records", "merged round")?;
    let hex = value
        .get("column")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("merged round missing `column`".to_string()))?;
    column_from_hex(hex, records)
}

fn merged_rounds_from_value(value: &serde_json::Value) -> Result<Vec<BitColumn>, ServeError> {
    value
        .get("merged_rounds")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `merged_rounds`".to_string()))?
        .iter()
        .map(ragged_from_value)
        .collect()
}

/// Decode one dynamic cohort: `(entry, records, columns)`, or `None` for a
/// cohort that has not entered the panel.
type DynamicCohort = Option<(usize, usize, Vec<BitColumn>)>;

fn dynamic_cohort_from_value(value: &serde_json::Value) -> Result<DynamicCohort, ServeError> {
    let Some((records, columns)) = panel_columns_from_value(value, false)? else {
        return Ok(None);
    };
    let entry = index_field(value, "entry", "dynamic cohort")?;
    Ok(Some((entry, records, columns)))
}

fn policy_to_dto(policy: Option<PolicyTag>) -> Option<String> {
    policy.map(|tag| tag.to_string())
}

fn policy_from_value(value: &serde_json::Value) -> Result<Option<PolicyTag>, ServeError> {
    match value.get("policy") {
        None => Ok(None),
        Some(serde_json::Value::Null) => Ok(None),
        Some(raw) => {
            let text = raw
                .as_str()
                .ok_or_else(|| ServeError::Snapshot("policy is not a string".to_string()))?;
            text.parse()
                .map(Some)
                .map_err(|e: String| ServeError::Snapshot(e))
        }
    }
}

/// Decode a panel value into `(records, columns)`; `require_columns`
/// distinguishes full snapshots (a stored panel always has ≥ 1 column)
/// from deltas (zero new rounds is legal).
fn panel_columns_from_value(
    value: &serde_json::Value,
    require_columns: bool,
) -> Result<Option<(usize, Vec<BitColumn>)>, ServeError> {
    if *value == serde_json::Value::Null {
        return Ok(None);
    }
    let records = index_field(value, "records", "panel")?;
    let columns = value
        .get("columns")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("panel missing `columns`".to_string()))?;
    if columns.is_empty() && require_columns {
        return Err(ServeError::Snapshot(
            "stored panels always hold at least one column".to_string(),
        ));
    }
    let columns: Vec<BitColumn> = columns
        .iter()
        .map(|col| {
            col.as_str()
                .ok_or_else(|| ServeError::Snapshot("column is not a hex string".to_string()))
                .and_then(|hex| column_from_hex(hex, records))
        })
        .collect::<Result<_, _>>()?;
    Ok(Some((records, columns)))
}

fn panel_from_value(value: &serde_json::Value) -> Result<GrowingPanel, ServeError> {
    match panel_columns_from_value(value, true)? {
        None => Ok(GrowingPanel::default()),
        Some((_, columns)) => {
            let dataset = LongitudinalDataset::from_columns(columns)
                .map_err(|e| ServeError::Snapshot(format!("inconsistent panel: {e}")))?;
            Ok(GrowingPanel::from_dataset(Some(dataset)))
        }
    }
}

/// Render the store as a full JSON snapshot.
pub fn snapshot_json(store: &ReleaseStore) -> String {
    let dto = if store.is_dynamic() {
        let (cohorts, entries, merged_rounds, coverage) = store.dynamic_parts();
        let entries = entries.expect("dynamic store tracks entries");
        SnapshotDto {
            format: FORMAT.to_string(),
            policy: policy_to_dto(store.policy()),
            dynamic: true,
            merged: None,
            merged_rounds: merged_rounds.iter().map(ragged_to_dto).collect(),
            coverage: coverage
                .iter()
                .map(|active| active.iter().map(|&c| c as u64).collect())
                .collect(),
            cohorts: cohorts
                .iter()
                .zip(entries)
                .map(|(panel, entry)| cohort_to_dto(panel, *entry, 0))
                .collect(),
        }
    } else {
        let (merged, cohorts) = store.parts();
        SnapshotDto {
            format: FORMAT.to_string(),
            policy: policy_to_dto(store.policy()),
            dynamic: false,
            merged: panel_to_dto(merged),
            merged_rounds: Vec::new(),
            coverage: Vec::new(),
            cohorts: cohorts
                .iter()
                .map(|panel| cohort_to_dto(panel, None, 0))
                .collect(),
        }
    };
    serde_json::to_string_pretty(&dto).expect("vendored JSON writer is infallible")
}

/// Rebuild a store from a snapshot produced by [`snapshot_json`] (or by
/// the pre-schedule v2 / pre-policy v1 writers, whose stores restore as
/// static — v1 additionally as untagged).
pub fn restore_json(json: &str) -> Result<ReleaseStore, ServeError> {
    let value = serde_json::from_str(json).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    let format = value
        .get("format")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("missing `format` tag".to_string()))?;
    if format != FORMAT && format != FORMAT_V3 && format != FORMAT_V2 && format != FORMAT_V1 {
        return Err(ServeError::Snapshot(format!(
            "unsupported snapshot format {format:?} (expected {FORMAT:?}, {FORMAT_V3:?}, \
             {FORMAT_V2:?}, or {FORMAT_V1:?})"
        )));
    }
    let policy = policy_from_value(&value)?;
    let dynamic = value
        .get("dynamic")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(false);
    if dynamic {
        if format != FORMAT && format != FORMAT_V3 {
            return Err(ServeError::Snapshot(format!(
                "dynamic stores need snapshot format {FORMAT:?} or {FORMAT_V3:?}, \
                 got {format:?}"
            )));
        }
        let mut cohorts = Vec::new();
        let mut entries = Vec::new();
        for cohort in value
            .get("cohorts")
            .and_then(serde_json::Value::as_array)
            .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        {
            match dynamic_cohort_from_value(cohort)? {
                None => {
                    cohorts.push(GrowingPanel::default());
                    entries.push(None);
                }
                Some((entry, _records, columns)) => {
                    let dataset = LongitudinalDataset::from_columns(columns)
                        .map_err(|e| ServeError::Snapshot(format!("inconsistent panel: {e}")))?;
                    cohorts.push(GrowingPanel::from_dataset(Some(dataset)));
                    entries.push(Some(entry));
                }
            }
        }
        let merged_rounds = merged_rounds_from_value(&value)?;
        // v4 records coverage explicitly; v3 derives it from the windows.
        let coverage = match value.get("coverage") {
            None | Some(serde_json::Value::Null) => None,
            Some(raw) => {
                let rows = raw
                    .as_array()
                    .ok_or_else(|| ServeError::Snapshot("coverage is not an array".to_string()))?;
                Some(
                    rows.iter()
                        .map(|row| {
                            row.as_array()
                                .ok_or_else(|| {
                                    ServeError::Snapshot(
                                        "coverage round is not an array".to_string(),
                                    )
                                })?
                                .iter()
                                .map(|c| index_from_value(c, "coverage entry"))
                                .collect::<Result<Vec<usize>, _>>()
                        })
                        .collect::<Result<Vec<Vec<usize>>, _>>()?,
                )
            }
        };
        return ReleaseStore::from_dynamic_parts(cohorts, entries, merged_rounds, coverage, policy);
    }
    let merged = panel_from_value(
        value
            .get("merged")
            .ok_or_else(|| ServeError::Snapshot("missing `merged`".to_string()))?,
    )?;
    let cohorts: Vec<GrowingPanel> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(panel_from_value)
        .collect::<Result<_, _>>()?;
    // Lockstep invariant: every non-empty cohort panel has exactly the
    // merged panel's round count, and — for per-shard stores, where the
    // merged panel is the cohort concatenation — cohort records sum to
    // merged records (a shared-noise merged panel is an independent
    // synthesis, so no sum constraint applies).
    let rounds = merged.rounds();
    for (index, cohort) in cohorts.iter().enumerate() {
        if cohort.panel().is_some() && cohort.rounds() != rounds {
            return Err(ServeError::Snapshot(format!(
                "cohort {index} has {} rounds, merged has {rounds}",
                cohort.rounds()
            )));
        }
    }
    if policy != Some(PolicyTag::Shared) {
        if let Some(records) = merged.records() {
            let cohort_records: usize = cohorts.iter().filter_map(GrowingPanel::records).sum();
            if cohort_records != records {
                return Err(ServeError::Snapshot(format!(
                    "cohort records sum to {cohort_records}, merged has {records}"
                )));
            }
        }
    }
    // An untagged snapshot with rounds can only be a pre-policy (v1)
    // store, which by construction held per-shard concatenation rounds
    // (the sum check above just enforced exactly that). Pin the tag so a
    // later shared-noise ingest cannot retroactively relabel the history.
    let policy = match policy {
        None if merged.rounds() > 0 => Some(PolicyTag::PerShard),
        other => other,
    };
    Ok(ReleaseStore::from_parts(merged, cohorts, policy))
}

/// Render the rounds released **after** `base_rounds` as an incremental
/// snapshot — O(delta), not O(store). The receiver must hold exactly
/// `base_rounds` rounds when applying ([`apply_delta_json`]).
///
/// For a dynamic store the delta carries, per cohort, the columns of the
/// global rounds past the base (a cohort retired before the base
/// contributes none; one entering after it contributes all of its
/// columns), plus the ragged merged rounds.
///
/// Errors if the store holds fewer than `base_rounds` rounds.
pub fn snapshot_since_json(store: &ReleaseStore, base_rounds: usize) -> Result<String, ServeError> {
    if base_rounds > store.rounds() {
        return Err(ServeError::Snapshot(format!(
            "delta base {base_rounds} exceeds the store's {} rounds",
            store.rounds()
        )));
    }
    let dto = if store.is_dynamic() {
        let (cohorts, entries, merged_rounds, _coverage) = store.dynamic_parts();
        let entries = entries.expect("dynamic store tracks entries");
        DeltaDto {
            format: DELTA_FORMAT.to_string(),
            policy: policy_to_dto(store.policy()),
            dynamic: true,
            base_rounds: base_rounds as u64,
            delta_rounds: (store.rounds() - base_rounds) as u64,
            merged: None,
            merged_rounds: merged_rounds[base_rounds..]
                .iter()
                .map(ragged_to_dto)
                .collect(),
            cohorts: cohorts
                .iter()
                .zip(entries)
                .map(|(panel, entry)| {
                    // Local index of the first column at or past the base.
                    let since = entry.map_or(0, |e| base_rounds.saturating_sub(e));
                    cohort_to_dto(panel, *entry, since)
                })
                .collect(),
        }
    } else {
        let (merged, cohorts) = store.parts();
        DeltaDto {
            format: DELTA_FORMAT.to_string(),
            policy: policy_to_dto(store.policy()),
            dynamic: false,
            base_rounds: base_rounds as u64,
            delta_rounds: (store.rounds() - base_rounds) as u64,
            merged: merged.panel().map(|dataset| PanelDto {
                records: dataset.individuals() as u64,
                columns: (base_rounds..dataset.rounds())
                    .map(|t| column_to_hex(dataset.column(t)))
                    .collect(),
            }),
            merged_rounds: Vec::new(),
            cohorts: cohorts
                .iter()
                .map(|panel| cohort_to_dto(panel, None, base_rounds))
                .collect(),
        }
    };
    Ok(serde_json::to_string_pretty(&dto).expect("vendored JSON writer is infallible"))
}

/// Apply an incremental snapshot produced by [`snapshot_since_json`] to a
/// store holding exactly the delta's base rounds. Appended rounds pass the
/// same validation as live ingestion, so a rejected delta leaves the store
/// untouched round-atomically.
pub fn apply_delta_json(store: &mut ReleaseStore, json: &str) -> Result<(), ServeError> {
    let value = serde_json::from_str(json).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    let format = value
        .get("format")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("missing `format` tag".to_string()))?;
    if format != DELTA_FORMAT && format != DELTA_FORMAT_V1 {
        return Err(ServeError::Snapshot(format!(
            "unsupported delta format {format:?} (expected {DELTA_FORMAT:?} or \
             {DELTA_FORMAT_V1:?})"
        )));
    }
    let base_rounds = index_field(&value, "base_rounds", "delta")?;
    if store.rounds() != base_rounds {
        return Err(ServeError::Snapshot(format!(
            "delta expects a store at {base_rounds} rounds, this one holds {}",
            store.rounds()
        )));
    }
    let policy = policy_from_value(&value)?;
    let delta_rounds = index_field(&value, "delta_rounds", "delta")?;
    if delta_rounds == 0 {
        return Ok(());
    }
    let policy = policy.ok_or_else(|| {
        ServeError::Snapshot("delta with rounds carries no policy tag".to_string())
    })?;
    let dynamic = value
        .get("dynamic")
        .and_then(serde_json::Value::as_bool)
        .unwrap_or(false);
    if dynamic {
        return apply_dynamic_delta(store, &value, base_rounds, delta_rounds, policy);
    }
    let merged = panel_columns_from_value(
        value
            .get("merged")
            .ok_or_else(|| ServeError::Snapshot("missing `merged`".to_string()))?,
        false,
    )?
    .ok_or_else(|| ServeError::Snapshot("delta with rounds has a null merged panel".to_string()))?;
    let cohorts: Vec<(usize, Vec<BitColumn>)> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(|panel| {
            panel_columns_from_value(panel, false)?.ok_or_else(|| {
                ServeError::Snapshot("delta with rounds has a null cohort panel".to_string())
            })
        })
        .collect::<Result<_, _>>()?;
    let (_, merged_columns) = merged;
    if merged_columns.len() != delta_rounds
        || cohorts
            .iter()
            .any(|(_, columns)| columns.len() != delta_rounds)
    {
        return Err(ServeError::Snapshot(format!(
            "delta declares {delta_rounds} rounds but panels disagree"
        )));
    }
    // Replay through the live ingestion path: same validation, same
    // atomicity per round, policy consistency included.
    for round in 0..delta_rounds {
        let parts: Vec<BitColumn> = cohorts
            .iter()
            .map(|(_, columns)| columns[round].clone())
            .collect();
        store.ingest_columns_with(policy, &parts, &merged_columns[round])?;
    }
    Ok(())
}

/// Apply a dynamic-panel delta by replaying each global round through the
/// live [`ReleaseStore::ingest_active_columns`] path — same validation
/// (entry pinning, contiguity, concatenation sums), same per-round
/// atomicity. Each cohort's delta columns map onto global rounds
/// `entry + already_stored + k`; a round's active set is exactly the
/// cohorts with a column at that round.
fn apply_dynamic_delta(
    store: &mut ReleaseStore,
    value: &serde_json::Value,
    base_rounds: usize,
    delta_rounds: usize,
    policy: longsynth_engine::PolicyTag,
) -> Result<(), ServeError> {
    let merged_rounds = merged_rounds_from_value(value)?;
    if merged_rounds.len() != delta_rounds {
        return Err(ServeError::Snapshot(format!(
            "delta declares {delta_rounds} rounds but carries {} merged columns",
            merged_rounds.len()
        )));
    }
    let cohorts: Vec<DynamicCohort> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(dynamic_cohort_from_value)
        .collect::<Result<_, _>>()?;
    let cohort_count = cohorts.len();
    // Rounds each cohort already holds — captured before the replay
    // mutates the store. An empty (fresh) store holds none anywhere.
    let already: Vec<usize> = (0..cohort_count)
        .map(|c| store.cohort_window(c).map_or(0, |window| window.len()))
        .collect();
    // Dry pass: plan each round's active set and check, BEFORE any
    // mutation, that every carried column lands inside the declared round
    // range. A delta whose cohort columns spill outside it (understated
    // `delta_rounds`, shifted `entry`) is corrupt, not silently
    // truncatable — mirroring the static path's "panels disagree" check.
    let mut plan: Vec<(Vec<usize>, Vec<&BitColumn>)> = Vec::with_capacity(delta_rounds);
    let mut consumed = vec![0usize; cohort_count];
    for round in base_rounds..base_rounds + delta_rounds {
        let mut active = Vec::new();
        let mut columns = Vec::new();
        for (c, cohort) in cohorts.iter().enumerate() {
            let Some((entry, _records, cols)) = cohort else {
                continue;
            };
            let first_new = entry + already[c];
            if round >= first_new && round - first_new < cols.len() {
                active.push(c);
                columns.push(&cols[round - first_new]);
                consumed[c] += 1;
            }
        }
        plan.push((active, columns));
    }
    for (c, cohort) in cohorts.iter().enumerate() {
        if let Some((_, _, cols)) = cohort {
            if consumed[c] != cols.len() {
                return Err(ServeError::Snapshot(format!(
                    "delta declares {delta_rounds} rounds but cohort {c} carries {} columns, \
                     of which only {} fall inside the declared range",
                    cols.len(),
                    consumed[c]
                )));
            }
        }
    }
    // Replay through the live ingestion path: same validation, same
    // per-round atomicity, policy consistency included.
    for (offset, (active, columns)) in plan.into_iter().enumerate() {
        let columns: Vec<BitColumn> = columns.into_iter().cloned().collect();
        store.ingest_active_columns(
            policy,
            base_rounds + offset,
            cohort_count,
            &active,
            &columns,
            &merged_rounds[offset],
        )?;
    }
    Ok(())
}

impl ReleaseStore {
    /// Render this store as a full JSON snapshot (see [`snapshot_json`]).
    pub fn to_snapshot_json(&self) -> String {
        snapshot_json(self)
    }

    /// Rebuild a store from a snapshot (see [`restore_json`]).
    pub fn from_snapshot_json(json: &str) -> Result<Self, ServeError> {
        restore_json(json)
    }

    /// Render the rounds after `base_rounds` as an incremental snapshot
    /// (see [`snapshot_since_json`]).
    pub fn to_delta_json(&self, base_rounds: usize) -> Result<String, ServeError> {
        snapshot_since_json(self, base_rounds)
    }

    /// Append an incremental snapshot's rounds (see [`apply_delta_json`]).
    pub fn apply_delta_json(&mut self, json: &str) -> Result<(), ServeError> {
        apply_delta_json(self, json)
    }
}

impl crate::QueryService {
    /// Snapshot the underlying store as JSON (read lock held briefly; the
    /// cache is derived data and deliberately not serialized). The
    /// rendered size lands in the `serve_snapshot_bytes` gauge.
    pub fn snapshot_json(&self) -> String {
        let json = self.with_store(snapshot_json);
        self.note_snapshot_bytes(json.len());
        json
    }

    /// Incremental snapshot of the rounds after `base_rounds` (read lock
    /// held briefly). Periodic checkpointing pairs this with
    /// [`apply_delta_json`](Self::apply_delta_json) at restore time:
    /// O(delta) per checkpoint instead of O(store).
    pub fn snapshot_since_json(&self, base_rounds: usize) -> Result<String, ServeError> {
        let json = self.with_store(|store| snapshot_since_json(store, base_rounds))?;
        self.note_snapshot_bytes(json.len());
        Ok(json)
    }

    /// Apply an incremental snapshot to the underlying store (write lock
    /// held for the call). Sound with a warm cache: the store is
    /// append-only, so every memoized `(query, round)` answer stays valid.
    pub fn apply_delta_json(&self, json: &str) -> Result<(), ServeError> {
        self.with_store_mut(|store| apply_delta_json(store, json))
    }

    /// A fresh service over a store restored from `json` (empty cache —
    /// answers refill it and are bit-identical by construction).
    pub fn restore_json(json: &str) -> Result<Self, ServeError> {
        Ok(Self::from_store(restore_json(json)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ReleaseStore {
        sample_store_rounds(5)
    }

    fn sample_store_rounds(rounds: usize) -> ReleaseStore {
        let mut store = ReleaseStore::new();
        for round in 0..rounds {
            let a =
                BitColumn::from_bools(&(0..67).map(|i| (i + round) % 3 == 0).collect::<Vec<_>>());
            let b =
                BitColumn::from_bools(&(0..41).map(|i| (i * round) % 5 == 1).collect::<Vec<_>>());
            let merged = BitColumn::concat([&a, &b]);
            store.ingest_columns(&[a, b], &merged).unwrap();
        }
        store
    }

    fn shared_store(rounds: usize) -> ReleaseStore {
        let mut store = ReleaseStore::new();
        for round in 0..rounds {
            let a =
                BitColumn::from_bools(&(0..13).map(|i| (i + round) % 2 == 0).collect::<Vec<_>>());
            let b =
                BitColumn::from_bools(&(0..9).map(|i| (i * round) % 3 == 1).collect::<Vec<_>>());
            // Independent population panel with its own record count.
            let merged =
                BitColumn::from_bools(&(0..29).map(|i| (i ^ round) % 4 == 0).collect::<Vec<_>>());
            store
                .ingest_columns_with(PolicyTag::Shared, &[a, b], &merged)
                .unwrap();
        }
        store
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        assert!(json.contains(FORMAT));
        assert!(json.contains("per-shard"));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.policy(), Some(PolicyTag::PerShard));
        // Snapshot of the restore is byte-identical (canonical form).
        assert_eq!(restored.to_snapshot_json(), json);
    }

    #[test]
    fn shared_store_snapshot_keeps_tag_and_shape() {
        let store = shared_store(4);
        let json = store.to_snapshot_json();
        assert!(json.contains("\"shared\""));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.policy(), Some(PolicyTag::Shared));
        // The merged panel's independent record count survived the
        // restore-time validation (no concatenation sum applies).
        assert_eq!(restored.records(), Some(29));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ReleaseStore::new();
        let restored = ReleaseStore::from_snapshot_json(&store.to_snapshot_json()).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.rounds(), 0);
        assert_eq!(restored.policy(), None);
    }

    #[test]
    fn v1_snapshots_still_restore() {
        // A pre-policy snapshot: v1 tag, no policy key. Its rounds are
        // per-shard concatenation rounds by construction, and the restore
        // pins that tag — so a later shared-noise ingest cannot relabel
        // the history.
        let json = format!(
            r#"{{
  "format": "{FORMAT_V1}",
  "merged": {{ "records": 2, "columns": ["0000000000000003"] }},
  "cohorts": [ {{ "records": 2, "columns": ["0000000000000003"] }} ]
}}"#
        );
        let mut restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored.rounds(), 1);
        assert_eq!(restored.policy(), Some(PolicyTag::PerShard));
        let err = restored
            .ingest_columns_with(
                PolicyTag::Shared,
                &[BitColumn::from_bools(&[true, false])],
                &BitColumn::from_bools(&[true, true, true]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("per-shard"), "{err}");
    }

    #[test]
    fn hex_encoding_is_lossless_at_odd_widths() {
        for len in [1usize, 63, 64, 65, 127, 130] {
            let col = BitColumn::from_bools(&(0..len).map(|i| i % 7 == 0).collect::<Vec<_>>());
            let back = column_from_hex(&column_to_hex(&col), len).unwrap();
            assert_eq!(back, col, "len {len}");
        }
    }

    #[test]
    fn restore_rejects_corruption() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        // Unknown format tag.
        let bad = json.replace(FORMAT, "longsynth-release-store/v999");
        assert!(matches!(
            ReleaseStore::from_snapshot_json(&bad),
            Err(ServeError::Snapshot(_))
        ));
        // Truncated document.
        assert!(ReleaseStore::from_snapshot_json(&json[..json.len() / 2]).is_err());
        // Non-hex column data.
        let bad = json.replacen("00", "zz", 1);
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Unknown policy tag.
        let bad = json.replace("per-shard", "maximal");
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Not JSON at all.
        assert!(ReleaseStore::from_snapshot_json("hello").is_err());
    }

    #[test]
    fn restore_validates_lockstep_invariants() {
        // Handcraft a snapshot whose cohort record counts cannot sum to the
        // merged count.
        let json = format!(
            r#"{{
  "format": "{FORMAT}",
  "policy": "per-shard",
  "merged": {{ "records": 3, "columns": ["0000000000000007"] }},
  "cohorts": [ {{ "records": 1, "columns": ["0000000000000001"] }} ]
}}"#
        );
        let err = ReleaseStore::from_snapshot_json(&json).unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
        // The same shape is legal when tagged shared (independent merged
        // synthesis).
        let json = json.replace("per-shard", "shared");
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored.policy(), Some(PolicyTag::Shared));
    }

    #[test]
    fn delta_snapshots_chain_to_the_full_snapshot() {
        for shared in [false, true] {
            let build = |rounds: usize| {
                if shared {
                    shared_store(rounds)
                } else {
                    let mut store = ReleaseStore::new();
                    let full = sample_store();
                    for _ in 0..rounds {
                        let round = store.rounds();
                        let a = full
                            .panel(crate::StoreScope::Cohort(0))
                            .unwrap()
                            .column(round);
                        let b = full
                            .panel(crate::StoreScope::Cohort(1))
                            .unwrap()
                            .column(round);
                        let merged = full.panel(crate::StoreScope::Merged).unwrap().column(round);
                        store
                            .ingest_columns(&[a.clone(), b.clone()], merged)
                            .unwrap();
                    }
                    store
                }
            };
            let full = build(5);
            // Base snapshot at round 2, then deltas 2→4 and 4→5.
            let base = build(2);
            let mut chained = ReleaseStore::from_snapshot_json(&base.to_snapshot_json()).unwrap();
            chained
                .apply_delta_json(&build(4).to_delta_json(2).unwrap())
                .unwrap();
            chained
                .apply_delta_json(&full.to_delta_json(4).unwrap())
                .unwrap();
            assert_eq!(chained, full, "shared={shared}");
            // An empty delta is a no-op.
            chained
                .apply_delta_json(&full.to_delta_json(5).unwrap())
                .unwrap();
            assert_eq!(chained, full, "shared={shared}");
        }
    }

    /// A dynamic three-round store with entry-staggered cohorts (mirrors
    /// the rotating fixture in `store::tests`).
    fn dynamic_store() -> ReleaseStore {
        dynamic_store_rounds(3)
    }

    fn dynamic_store_rounds(rounds: usize) -> ReleaseStore {
        let col = |bits: &[bool]| BitColumn::from_bools(bits);
        let mut store = ReleaseStore::new();
        let plan: [(&[usize], Vec<BitColumn>); 3] = [
            (
                &[0, 1],
                vec![col(&[true, false]), col(&[false, true, true])],
            ),
            (
                &[0, 1, 2],
                vec![col(&[true, true]), col(&[false, false, true]), col(&[true])],
            ),
            (&[1, 2], vec![col(&[true, true, true]), col(&[false])]),
        ];
        for (round, (active, parts)) in plan.into_iter().enumerate().take(rounds) {
            let merged = BitColumn::concat(parts.iter());
            store
                .ingest_active_columns(PolicyTag::PerShard, round, 3, active, &parts, &merged)
                .unwrap();
        }
        store
    }

    #[test]
    fn dynamic_store_snapshots_roundtrip_with_schedule() {
        let store = dynamic_store();
        let json = store.to_snapshot_json();
        assert!(json.contains(FORMAT));
        assert!(json.contains("\"dynamic\": true") || json.contains("\"dynamic\":true"));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        assert!(restored.is_dynamic());
        assert_eq!(restored.cohort_window(0), Some(0..2));
        assert_eq!(restored.cohort_window(2), Some(1..3));
        // Canonical form: snapshot of the restore is byte-identical.
        assert_eq!(restored.to_snapshot_json(), json);
        // Merged-scope dynamic answers survive the round trip bit-exactly.
        let query = crate::ServeQuery {
            scope: crate::StoreScope::Merged,
            kind: crate::QueryKind::CumulativeFraction { t: 2, b: 1 },
        };
        assert_eq!(
            store.answer(&query).unwrap().to_bits(),
            restored.answer(&query).unwrap().to_bits()
        );
    }

    #[test]
    fn dynamic_deltas_replay_the_schedule() {
        let full = dynamic_store();
        // Base at round 1, delta 1→3: the delta carries cohort 2's entry.
        let base = dynamic_store_rounds(1);
        let mut chained = ReleaseStore::from_snapshot_json(&base.to_snapshot_json()).unwrap();
        let delta = full.to_delta_json(1).unwrap();
        assert!(delta.contains(DELTA_FORMAT));
        chained.apply_delta_json(&delta).unwrap();
        assert_eq!(chained, full);
        // Empty dynamic delta is a no-op.
        chained
            .apply_delta_json(&full.to_delta_json(3).unwrap())
            .unwrap();
        assert_eq!(chained, full);
        // A delta also boots an empty store from base 0.
        let mut fresh = ReleaseStore::new();
        fresh
            .apply_delta_json(&full.to_delta_json(0).unwrap())
            .unwrap();
        assert_eq!(fresh, full);
    }

    #[test]
    fn dynamic_snapshot_coverage_is_validated() {
        let store = dynamic_store();
        assert!(store.to_snapshot_json().contains("\"coverage\""));
        // Tampered coverage that disagrees with the cohort windows is
        // refused (the v3-restore derivation path — no coverage recorded
        // at all — is pinned by the frozen fixture in
        // `tests/prop_store.rs`).
        let (cohorts, entries, merged_rounds, coverage) = store.dynamic_parts();
        let mut tampered = coverage.to_vec();
        tampered[0] = vec![1];
        let err = ReleaseStore::from_dynamic_parts(
            cohorts.to_vec(),
            entries.expect("dynamic store").to_vec(),
            merged_rounds.to_vec(),
            Some(tampered),
            store.policy(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("coverage"), "{err}");
    }

    #[test]
    fn dynamic_snapshot_corruption_is_rejected() {
        let store = dynamic_store();
        let json = store.to_snapshot_json();
        // A dynamic snapshot claiming a pre-schedule format is refused.
        let bad = json.replace(FORMAT, FORMAT_V2);
        let err = ReleaseStore::from_snapshot_json(&bad).unwrap_err();
        assert!(err.to_string().contains("dynamic"), "{err}");
        // Dropping a cohort's entry round is caught.
        let bad = json.replace("\"entry\": 1", "\"entry\": null");
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Cohort windows beyond the stored rounds are caught.
        let bad = json.replace("\"entry\": 1", "\"entry\": 2");
        let err = ReleaseStore::from_snapshot_json(&bad).unwrap_err();
        assert!(err.to_string().contains("covers rounds"), "{err}");
    }

    #[test]
    fn restore_names_invalid_integer_fields() {
        // A present-but-negative record count is reported as negative, not
        // as an absent field (the two used to share one "missing" message).
        let json = format!(
            r#"{{
  "format": "{FORMAT}",
  "policy": "per-shard",
  "merged": {{ "records": -3, "columns": ["0000000000000007"] }},
  "cohorts": [ {{ "records": 3, "columns": ["0000000000000007"] }} ]
}}"#
        );
        let err = ReleaseStore::from_snapshot_json(&json).unwrap_err();
        assert!(err.to_string().contains("`records`"), "{err}");
        assert!(err.to_string().contains("negative"), "{err}");
        // A genuinely absent field still says so.
        let json = format!(
            r#"{{
  "format": "{FORMAT}",
  "policy": "per-shard",
  "merged": {{ "columns": ["0000000000000007"] }},
  "cohorts": [ {{ "records": 3, "columns": ["0000000000000007"] }} ]
}}"#
        );
        let err = ReleaseStore::from_snapshot_json(&json).unwrap_err();
        assert!(err.to_string().contains("missing `records`"), "{err}");

        let dynamic = dynamic_store().to_snapshot_json();
        // A fractional cohort entry round is named as fractional.
        let bad = dynamic.replace("\"entry\": 1", "\"entry\": 1.25");
        let err = ReleaseStore::from_snapshot_json(&bad).unwrap_err();
        assert!(err.to_string().contains("`entry`"), "{err}");
        assert!(err.to_string().contains("fractional"), "{err}");
        // A negative ragged merged-round count is named as negative.
        let bad = dynamic.replacen("\"records\": 5", "\"records\": -5", 1);
        let err = ReleaseStore::from_snapshot_json(&bad).unwrap_err();
        assert!(err.to_string().contains("merged round `records`"), "{err}");
        assert!(err.to_string().contains("negative"), "{err}");
        // A fractional coverage entry is named (the first bare "0," in the
        // document sits inside the coverage rows).
        let bad = dynamic.replacen("0,", "0.75,", 1);
        let err = ReleaseStore::from_snapshot_json(&bad).unwrap_err();
        assert!(err.to_string().contains("coverage entry"), "{err}");
        assert!(err.to_string().contains("fractional"), "{err}");
    }

    #[test]
    fn delta_rejects_invalid_round_counts() {
        let full = sample_store();
        let delta = full.to_delta_json(3).unwrap();
        // `base_rounds` beyond what a 64-bit index can hold is reported as
        // overflow before any base comparison happens.
        let bad = delta.replace(
            "\"base_rounds\": 3",
            "\"base_rounds\": 1000000000000000000000000000000",
        );
        let mut store = sample_store_rounds(3);
        let err = store.apply_delta_json(&bad).unwrap_err();
        assert!(err.to_string().contains("`base_rounds`"), "{err}");
        assert!(err.to_string().contains("overflows"), "{err}");
        // A negative `delta_rounds` is named as negative.
        let bad = delta.replace("\"delta_rounds\": 2", "\"delta_rounds\": -2");
        let err = store.apply_delta_json(&bad).unwrap_err();
        assert!(err.to_string().contains("`delta_rounds`"), "{err}");
        assert!(err.to_string().contains("negative"), "{err}");
        // The untampered delta still applies cleanly afterwards.
        store.apply_delta_json(&delta).unwrap();
        assert_eq!(store, full);
    }

    #[test]
    fn delta_validation_catches_mismatched_bases() {
        let full = sample_store();
        // Base beyond the store's rounds.
        assert!(full.to_delta_json(9).is_err());
        // Applying a delta to the wrong base round count.
        let delta = full.to_delta_json(3).unwrap();
        let mut wrong_base = ReleaseStore::from_snapshot_json(&full.to_snapshot_json()).unwrap();
        let err = wrong_base.apply_delta_json(&delta).unwrap_err();
        assert!(err.to_string().contains("3 rounds"), "{err}");
        // A full snapshot is not a delta.
        let mut store = sample_store();
        assert!(store.apply_delta_json(&full.to_snapshot_json()).is_err());
    }

    #[test]
    fn service_snapshot_restores_with_identical_answers() {
        use crate::{QueryKind, QueryService, ServeQuery, StoreScope};
        let service = QueryService::from_store(sample_store());
        let query = ServeQuery {
            scope: StoreScope::Cohort(1),
            kind: QueryKind::CumulativeFraction { t: 4, b: 2 },
        };
        let before = service.answer(&query).unwrap();
        let restored = QueryService::restore_json(&service.snapshot_json()).unwrap();
        let after = restored.answer(&query).unwrap();
        assert_eq!(before.to_bits(), after.to_bits());
        // Restored cache starts cold.
        assert_eq!(restored.cache_stats(), (0, 1));
    }

    #[test]
    fn service_deltas_apply_under_a_warm_cache() {
        use crate::{QueryKind, QueryService, ServeQuery, StoreScope};
        let full = sample_store();
        let base = QueryService::restore_json(&sample_store_rounds(3).to_snapshot_json()).unwrap();
        let query = |t| ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::CumulativeFraction { t, b: 1 },
        };
        // Warm the cache on the base rounds.
        let warm = base.answer(&query(2)).unwrap();
        // Round 4 is not answerable yet.
        assert!(base.answer(&query(4)).is_err());
        base.apply_delta_json(&full.to_delta_json(3).unwrap())
            .unwrap();
        // New round answerable; warm entry still bit-identical.
        assert!(base.answer(&query(4)).is_ok());
        assert_eq!(base.answer(&query(2)).unwrap().to_bits(), warm.to_bits());
    }
}
