//! JSON snapshot/restore of a [`ReleaseStore`] — full and incremental.
//!
//! A continual release runs for months; the serving process must not lose
//! the archive on restart. [`snapshot_json`] renders the whole store —
//! merged panel, every cohort panel, cohort count, aggregation-policy tag —
//! as a self-describing JSON document, and [`restore_json`] rebuilds a
//! store whose query answers are **bit-identical** (the property-based
//! tests in `tests/prop_store.rs` pin this down over random release
//! sequences).
//!
//! Full snapshots are O(store), which is the wrong cost for *periodic*
//! checkpoints of an append-only archive. [`snapshot_since_json`] exports
//! only the rounds released after a known base round — O(delta) — and
//! [`apply_delta_json`] replays such a delta onto a store holding exactly
//! that base. Restoring a base snapshot and chaining deltas is equivalent,
//! bit for bit, to restoring one full snapshot (property-tested).
//!
//! Bit columns travel as hex strings of their packed little-endian `u64`
//! words (16 hex digits per word) rather than JSON numbers: lossless at
//! any width, compact, and independent of JSON number precision.

use longsynth_data::{BitColumn, LongitudinalDataset};
use longsynth_engine::PolicyTag;
use serde::Serialize;

use crate::store::{GrowingPanel, ReleaseStore, ServeError};

/// Format tag embedded in every full snapshot; bump on layout changes.
/// v2 added the aggregation-policy tag; v1 documents restore as
/// per-shard-era stores (no tag recorded).
const FORMAT: &str = "longsynth-release-store/v2";
/// The pre-policy format, still restorable.
const FORMAT_V1: &str = "longsynth-release-store/v1";
/// Format tag of incremental (delta) snapshots.
const DELTA_FORMAT: &str = "longsynth-release-store-delta/v1";

#[derive(Serialize)]
struct PanelDto {
    records: u64,
    columns: Vec<String>,
}

#[derive(Serialize)]
struct SnapshotDto {
    format: String,
    policy: Option<String>,
    merged: Option<PanelDto>,
    cohorts: Vec<Option<PanelDto>>,
}

#[derive(Serialize)]
struct DeltaDto {
    format: String,
    policy: Option<String>,
    /// Rounds the receiving store must already hold.
    base_rounds: u64,
    /// Rounds this delta appends.
    delta_rounds: u64,
    merged: Option<PanelDto>,
    cohorts: Vec<Option<PanelDto>>,
}

fn column_to_hex(column: &BitColumn) -> String {
    let mut out = String::with_capacity(column.as_words().len() * 16);
    for word in column.as_words() {
        out.push_str(&format!("{word:016x}"));
    }
    out
}

fn column_from_hex(hex: &str, records: usize) -> Result<BitColumn, ServeError> {
    let expected_words = records.div_ceil(64);
    if hex.len() != expected_words * 16 {
        return Err(ServeError::Snapshot(format!(
            "column hex has {} digits, expected {} for {records} records",
            hex.len(),
            expected_words * 16
        )));
    }
    let mut words = Vec::with_capacity(expected_words);
    for chunk in 0..expected_words {
        let digits = &hex[chunk * 16..(chunk + 1) * 16];
        let word = u64::from_str_radix(digits, 16)
            .map_err(|_| ServeError::Snapshot(format!("invalid hex word {digits:?}")))?;
        words.push(word);
    }
    Ok(BitColumn::from_words(words, records))
}

fn panel_to_dto(panel: &GrowingPanel) -> Option<PanelDto> {
    panel.panel().map(|dataset| PanelDto {
        records: dataset.individuals() as u64,
        columns: (0..dataset.rounds())
            .map(|t| column_to_hex(dataset.column(t)))
            .collect(),
    })
}

/// Like [`panel_to_dto`], but carrying only the columns of rounds
/// `since..` (possibly none — the record count still travels so the
/// receiver can validate shape).
fn panel_to_delta_dto(panel: &GrowingPanel, since: usize) -> Option<PanelDto> {
    panel.panel().map(|dataset| PanelDto {
        records: dataset.individuals() as u64,
        columns: (since..dataset.rounds())
            .map(|t| column_to_hex(dataset.column(t)))
            .collect(),
    })
}

fn policy_to_dto(policy: Option<PolicyTag>) -> Option<String> {
    policy.map(|tag| tag.to_string())
}

fn policy_from_value(value: &serde_json::Value) -> Result<Option<PolicyTag>, ServeError> {
    match value.get("policy") {
        None => Ok(None),
        Some(serde_json::Value::Null) => Ok(None),
        Some(raw) => {
            let text = raw
                .as_str()
                .ok_or_else(|| ServeError::Snapshot("policy is not a string".to_string()))?;
            text.parse()
                .map(Some)
                .map_err(|e: String| ServeError::Snapshot(e))
        }
    }
}

/// Decode a panel value into `(records, columns)`; `require_columns`
/// distinguishes full snapshots (a stored panel always has ≥ 1 column)
/// from deltas (zero new rounds is legal).
fn panel_columns_from_value(
    value: &serde_json::Value,
    require_columns: bool,
) -> Result<Option<(usize, Vec<BitColumn>)>, ServeError> {
    if *value == serde_json::Value::Null {
        return Ok(None);
    }
    let records = value
        .get("records")
        .and_then(serde_json::Value::as_usize)
        .ok_or_else(|| ServeError::Snapshot("panel missing `records`".to_string()))?;
    let columns = value
        .get("columns")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("panel missing `columns`".to_string()))?;
    if columns.is_empty() && require_columns {
        return Err(ServeError::Snapshot(
            "stored panels always hold at least one column".to_string(),
        ));
    }
    let columns: Vec<BitColumn> = columns
        .iter()
        .map(|col| {
            col.as_str()
                .ok_or_else(|| ServeError::Snapshot("column is not a hex string".to_string()))
                .and_then(|hex| column_from_hex(hex, records))
        })
        .collect::<Result<_, _>>()?;
    Ok(Some((records, columns)))
}

fn panel_from_value(value: &serde_json::Value) -> Result<GrowingPanel, ServeError> {
    match panel_columns_from_value(value, true)? {
        None => Ok(GrowingPanel::default()),
        Some((_, columns)) => {
            let dataset = LongitudinalDataset::from_columns(columns)
                .map_err(|e| ServeError::Snapshot(format!("inconsistent panel: {e}")))?;
            Ok(GrowingPanel::from_dataset(Some(dataset)))
        }
    }
}

/// Render the store as a full JSON snapshot.
pub fn snapshot_json(store: &ReleaseStore) -> String {
    let (merged, cohorts) = store.parts();
    let dto = SnapshotDto {
        format: FORMAT.to_string(),
        policy: policy_to_dto(store.policy()),
        merged: panel_to_dto(merged),
        cohorts: cohorts.iter().map(panel_to_dto).collect(),
    };
    serde_json::to_string_pretty(&dto).expect("vendored JSON writer is infallible")
}

/// Rebuild a store from a snapshot produced by [`snapshot_json`] (or by
/// the pre-policy v1 writer, whose stores restore as untagged).
pub fn restore_json(json: &str) -> Result<ReleaseStore, ServeError> {
    let value = serde_json::from_str(json).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    let format = value
        .get("format")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("missing `format` tag".to_string()))?;
    if format != FORMAT && format != FORMAT_V1 {
        return Err(ServeError::Snapshot(format!(
            "unsupported snapshot format {format:?} (expected {FORMAT:?} or {FORMAT_V1:?})"
        )));
    }
    let policy = policy_from_value(&value)?;
    let merged = panel_from_value(
        value
            .get("merged")
            .ok_or_else(|| ServeError::Snapshot("missing `merged`".to_string()))?,
    )?;
    let cohorts: Vec<GrowingPanel> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(panel_from_value)
        .collect::<Result<_, _>>()?;
    // Lockstep invariant: every non-empty cohort panel has exactly the
    // merged panel's round count, and — for per-shard stores, where the
    // merged panel is the cohort concatenation — cohort records sum to
    // merged records (a shared-noise merged panel is an independent
    // synthesis, so no sum constraint applies).
    let rounds = merged.rounds();
    for (index, cohort) in cohorts.iter().enumerate() {
        if cohort.panel().is_some() && cohort.rounds() != rounds {
            return Err(ServeError::Snapshot(format!(
                "cohort {index} has {} rounds, merged has {rounds}",
                cohort.rounds()
            )));
        }
    }
    if policy != Some(PolicyTag::Shared) {
        if let Some(records) = merged.records() {
            let cohort_records: usize = cohorts.iter().filter_map(GrowingPanel::records).sum();
            if cohort_records != records {
                return Err(ServeError::Snapshot(format!(
                    "cohort records sum to {cohort_records}, merged has {records}"
                )));
            }
        }
    }
    // An untagged snapshot with rounds can only be a pre-policy (v1)
    // store, which by construction held per-shard concatenation rounds
    // (the sum check above just enforced exactly that). Pin the tag so a
    // later shared-noise ingest cannot retroactively relabel the history.
    let policy = match policy {
        None if merged.rounds() > 0 => Some(PolicyTag::PerShard),
        other => other,
    };
    Ok(ReleaseStore::from_parts(merged, cohorts, policy))
}

/// Render the rounds released **after** `base_rounds` as an incremental
/// snapshot — O(delta), not O(store). The receiver must hold exactly
/// `base_rounds` rounds when applying ([`apply_delta_json`]).
///
/// Errors if the store holds fewer than `base_rounds` rounds.
pub fn snapshot_since_json(store: &ReleaseStore, base_rounds: usize) -> Result<String, ServeError> {
    if base_rounds > store.rounds() {
        return Err(ServeError::Snapshot(format!(
            "delta base {base_rounds} exceeds the store's {} rounds",
            store.rounds()
        )));
    }
    let (merged, cohorts) = store.parts();
    let dto = DeltaDto {
        format: DELTA_FORMAT.to_string(),
        policy: policy_to_dto(store.policy()),
        base_rounds: base_rounds as u64,
        delta_rounds: (store.rounds() - base_rounds) as u64,
        merged: panel_to_delta_dto(merged, base_rounds),
        cohorts: cohorts
            .iter()
            .map(|panel| panel_to_delta_dto(panel, base_rounds))
            .collect(),
    };
    Ok(serde_json::to_string_pretty(&dto).expect("vendored JSON writer is infallible"))
}

/// Apply an incremental snapshot produced by [`snapshot_since_json`] to a
/// store holding exactly the delta's base rounds. Appended rounds pass the
/// same validation as live ingestion, so a rejected delta leaves the store
/// untouched round-atomically.
pub fn apply_delta_json(store: &mut ReleaseStore, json: &str) -> Result<(), ServeError> {
    let value = serde_json::from_str(json).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    let format = value
        .get("format")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("missing `format` tag".to_string()))?;
    if format != DELTA_FORMAT {
        return Err(ServeError::Snapshot(format!(
            "unsupported delta format {format:?} (expected {DELTA_FORMAT:?})"
        )));
    }
    let base_rounds = value
        .get("base_rounds")
        .and_then(serde_json::Value::as_usize)
        .ok_or_else(|| ServeError::Snapshot("missing `base_rounds`".to_string()))?;
    if store.rounds() != base_rounds {
        return Err(ServeError::Snapshot(format!(
            "delta expects a store at {base_rounds} rounds, this one holds {}",
            store.rounds()
        )));
    }
    let policy = policy_from_value(&value)?;
    let delta_rounds = value
        .get("delta_rounds")
        .and_then(serde_json::Value::as_usize)
        .ok_or_else(|| ServeError::Snapshot("missing `delta_rounds`".to_string()))?;
    if delta_rounds == 0 {
        return Ok(());
    }
    let policy = policy.ok_or_else(|| {
        ServeError::Snapshot("delta with rounds carries no policy tag".to_string())
    })?;
    let merged = panel_columns_from_value(
        value
            .get("merged")
            .ok_or_else(|| ServeError::Snapshot("missing `merged`".to_string()))?,
        false,
    )?
    .ok_or_else(|| ServeError::Snapshot("delta with rounds has a null merged panel".to_string()))?;
    let cohorts: Vec<(usize, Vec<BitColumn>)> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(|panel| {
            panel_columns_from_value(panel, false)?.ok_or_else(|| {
                ServeError::Snapshot("delta with rounds has a null cohort panel".to_string())
            })
        })
        .collect::<Result<_, _>>()?;
    let (_, merged_columns) = merged;
    if merged_columns.len() != delta_rounds
        || cohorts
            .iter()
            .any(|(_, columns)| columns.len() != delta_rounds)
    {
        return Err(ServeError::Snapshot(format!(
            "delta declares {delta_rounds} rounds but panels disagree"
        )));
    }
    // Replay through the live ingestion path: same validation, same
    // atomicity per round, policy consistency included.
    for round in 0..delta_rounds {
        let parts: Vec<BitColumn> = cohorts
            .iter()
            .map(|(_, columns)| columns[round].clone())
            .collect();
        store.ingest_columns_with(policy, &parts, &merged_columns[round])?;
    }
    Ok(())
}

impl ReleaseStore {
    /// Render this store as a full JSON snapshot (see [`snapshot_json`]).
    pub fn to_snapshot_json(&self) -> String {
        snapshot_json(self)
    }

    /// Rebuild a store from a snapshot (see [`restore_json`]).
    pub fn from_snapshot_json(json: &str) -> Result<Self, ServeError> {
        restore_json(json)
    }

    /// Render the rounds after `base_rounds` as an incremental snapshot
    /// (see [`snapshot_since_json`]).
    pub fn to_delta_json(&self, base_rounds: usize) -> Result<String, ServeError> {
        snapshot_since_json(self, base_rounds)
    }

    /// Append an incremental snapshot's rounds (see [`apply_delta_json`]).
    pub fn apply_delta_json(&mut self, json: &str) -> Result<(), ServeError> {
        apply_delta_json(self, json)
    }
}

impl crate::QueryService {
    /// Snapshot the underlying store as JSON (read lock held briefly; the
    /// cache is derived data and deliberately not serialized).
    pub fn snapshot_json(&self) -> String {
        self.with_store(snapshot_json)
    }

    /// Incremental snapshot of the rounds after `base_rounds` (read lock
    /// held briefly). Periodic checkpointing pairs this with
    /// [`apply_delta_json`](Self::apply_delta_json) at restore time:
    /// O(delta) per checkpoint instead of O(store).
    pub fn snapshot_since_json(&self, base_rounds: usize) -> Result<String, ServeError> {
        self.with_store(|store| snapshot_since_json(store, base_rounds))
    }

    /// Apply an incremental snapshot to the underlying store (write lock
    /// held for the call). Sound with a warm cache: the store is
    /// append-only, so every memoized `(query, round)` answer stays valid.
    pub fn apply_delta_json(&self, json: &str) -> Result<(), ServeError> {
        self.with_store_mut(|store| apply_delta_json(store, json))
    }

    /// A fresh service over a store restored from `json` (empty cache —
    /// answers refill it and are bit-identical by construction).
    pub fn restore_json(json: &str) -> Result<Self, ServeError> {
        Ok(Self::from_store(restore_json(json)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ReleaseStore {
        sample_store_rounds(5)
    }

    fn sample_store_rounds(rounds: usize) -> ReleaseStore {
        let mut store = ReleaseStore::new();
        for round in 0..rounds {
            let a =
                BitColumn::from_bools(&(0..67).map(|i| (i + round) % 3 == 0).collect::<Vec<_>>());
            let b =
                BitColumn::from_bools(&(0..41).map(|i| (i * round) % 5 == 1).collect::<Vec<_>>());
            let merged = BitColumn::concat([&a, &b]);
            store.ingest_columns(&[a, b], &merged).unwrap();
        }
        store
    }

    fn shared_store(rounds: usize) -> ReleaseStore {
        let mut store = ReleaseStore::new();
        for round in 0..rounds {
            let a =
                BitColumn::from_bools(&(0..13).map(|i| (i + round) % 2 == 0).collect::<Vec<_>>());
            let b =
                BitColumn::from_bools(&(0..9).map(|i| (i * round) % 3 == 1).collect::<Vec<_>>());
            // Independent population panel with its own record count.
            let merged =
                BitColumn::from_bools(&(0..29).map(|i| (i ^ round) % 4 == 0).collect::<Vec<_>>());
            store
                .ingest_columns_with(PolicyTag::Shared, &[a, b], &merged)
                .unwrap();
        }
        store
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        assert!(json.contains(FORMAT));
        assert!(json.contains("per-shard"));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.policy(), Some(PolicyTag::PerShard));
        // Snapshot of the restore is byte-identical (canonical form).
        assert_eq!(restored.to_snapshot_json(), json);
    }

    #[test]
    fn shared_store_snapshot_keeps_tag_and_shape() {
        let store = shared_store(4);
        let json = store.to_snapshot_json();
        assert!(json.contains("\"shared\""));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.policy(), Some(PolicyTag::Shared));
        // The merged panel's independent record count survived the
        // restore-time validation (no concatenation sum applies).
        assert_eq!(restored.records(), Some(29));
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ReleaseStore::new();
        let restored = ReleaseStore::from_snapshot_json(&store.to_snapshot_json()).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.rounds(), 0);
        assert_eq!(restored.policy(), None);
    }

    #[test]
    fn v1_snapshots_still_restore() {
        // A pre-policy snapshot: v1 tag, no policy key. Its rounds are
        // per-shard concatenation rounds by construction, and the restore
        // pins that tag — so a later shared-noise ingest cannot relabel
        // the history.
        let json = format!(
            r#"{{
  "format": "{FORMAT_V1}",
  "merged": {{ "records": 2, "columns": ["0000000000000003"] }},
  "cohorts": [ {{ "records": 2, "columns": ["0000000000000003"] }} ]
}}"#
        );
        let mut restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored.rounds(), 1);
        assert_eq!(restored.policy(), Some(PolicyTag::PerShard));
        let err = restored
            .ingest_columns_with(
                PolicyTag::Shared,
                &[BitColumn::from_bools(&[true, false])],
                &BitColumn::from_bools(&[true, true, true]),
            )
            .unwrap_err();
        assert!(err.to_string().contains("per-shard"), "{err}");
    }

    #[test]
    fn hex_encoding_is_lossless_at_odd_widths() {
        for len in [1usize, 63, 64, 65, 127, 130] {
            let col = BitColumn::from_bools(&(0..len).map(|i| i % 7 == 0).collect::<Vec<_>>());
            let back = column_from_hex(&column_to_hex(&col), len).unwrap();
            assert_eq!(back, col, "len {len}");
        }
    }

    #[test]
    fn restore_rejects_corruption() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        // Unknown format tag.
        let bad = json.replace(FORMAT, "longsynth-release-store/v999");
        assert!(matches!(
            ReleaseStore::from_snapshot_json(&bad),
            Err(ServeError::Snapshot(_))
        ));
        // Truncated document.
        assert!(ReleaseStore::from_snapshot_json(&json[..json.len() / 2]).is_err());
        // Non-hex column data.
        let bad = json.replacen("00", "zz", 1);
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Unknown policy tag.
        let bad = json.replace("per-shard", "maximal");
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Not JSON at all.
        assert!(ReleaseStore::from_snapshot_json("hello").is_err());
    }

    #[test]
    fn restore_validates_lockstep_invariants() {
        // Handcraft a snapshot whose cohort record counts cannot sum to the
        // merged count.
        let json = format!(
            r#"{{
  "format": "{FORMAT}",
  "policy": "per-shard",
  "merged": {{ "records": 3, "columns": ["0000000000000007"] }},
  "cohorts": [ {{ "records": 1, "columns": ["0000000000000001"] }} ]
}}"#
        );
        let err = ReleaseStore::from_snapshot_json(&json).unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
        // The same shape is legal when tagged shared (independent merged
        // synthesis).
        let json = json.replace("per-shard", "shared");
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored.policy(), Some(PolicyTag::Shared));
    }

    #[test]
    fn delta_snapshots_chain_to_the_full_snapshot() {
        for shared in [false, true] {
            let build = |rounds: usize| {
                if shared {
                    shared_store(rounds)
                } else {
                    let mut store = ReleaseStore::new();
                    let full = sample_store();
                    for _ in 0..rounds {
                        let round = store.rounds();
                        let a = full
                            .panel(crate::StoreScope::Cohort(0))
                            .unwrap()
                            .column(round);
                        let b = full
                            .panel(crate::StoreScope::Cohort(1))
                            .unwrap()
                            .column(round);
                        let merged = full.panel(crate::StoreScope::Merged).unwrap().column(round);
                        store
                            .ingest_columns(&[a.clone(), b.clone()], merged)
                            .unwrap();
                    }
                    store
                }
            };
            let full = build(5);
            // Base snapshot at round 2, then deltas 2→4 and 4→5.
            let base = build(2);
            let mut chained = ReleaseStore::from_snapshot_json(&base.to_snapshot_json()).unwrap();
            chained
                .apply_delta_json(&build(4).to_delta_json(2).unwrap())
                .unwrap();
            chained
                .apply_delta_json(&full.to_delta_json(4).unwrap())
                .unwrap();
            assert_eq!(chained, full, "shared={shared}");
            // An empty delta is a no-op.
            chained
                .apply_delta_json(&full.to_delta_json(5).unwrap())
                .unwrap();
            assert_eq!(chained, full, "shared={shared}");
        }
    }

    #[test]
    fn delta_validation_catches_mismatched_bases() {
        let full = sample_store();
        // Base beyond the store's rounds.
        assert!(full.to_delta_json(9).is_err());
        // Applying a delta to the wrong base round count.
        let delta = full.to_delta_json(3).unwrap();
        let mut wrong_base = ReleaseStore::from_snapshot_json(&full.to_snapshot_json()).unwrap();
        let err = wrong_base.apply_delta_json(&delta).unwrap_err();
        assert!(err.to_string().contains("3 rounds"), "{err}");
        // A full snapshot is not a delta.
        let mut store = sample_store();
        assert!(store.apply_delta_json(&full.to_snapshot_json()).is_err());
    }

    #[test]
    fn service_snapshot_restores_with_identical_answers() {
        use crate::{QueryKind, QueryService, ServeQuery, StoreScope};
        let service = QueryService::from_store(sample_store());
        let query = ServeQuery {
            scope: StoreScope::Cohort(1),
            kind: QueryKind::CumulativeFraction { t: 4, b: 2 },
        };
        let before = service.answer(&query).unwrap();
        let restored = QueryService::restore_json(&service.snapshot_json()).unwrap();
        let after = restored.answer(&query).unwrap();
        assert_eq!(before.to_bits(), after.to_bits());
        // Restored cache starts cold.
        assert_eq!(restored.cache_stats(), (0, 1));
    }

    #[test]
    fn service_deltas_apply_under_a_warm_cache() {
        use crate::{QueryKind, QueryService, ServeQuery, StoreScope};
        let full = sample_store();
        let base = QueryService::restore_json(&sample_store_rounds(3).to_snapshot_json()).unwrap();
        let query = |t| ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::CumulativeFraction { t, b: 1 },
        };
        // Warm the cache on the base rounds.
        let warm = base.answer(&query(2)).unwrap();
        // Round 4 is not answerable yet.
        assert!(base.answer(&query(4)).is_err());
        base.apply_delta_json(&full.to_delta_json(3).unwrap())
            .unwrap();
        // New round answerable; warm entry still bit-identical.
        assert!(base.answer(&query(4)).is_ok());
        assert_eq!(base.answer(&query(2)).unwrap().to_bits(), warm.to_bits());
    }
}
