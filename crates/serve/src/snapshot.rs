//! JSON snapshot/restore of a [`ReleaseStore`].
//!
//! A continual release runs for months; the serving process must not lose
//! the archive on restart. [`snapshot_json`] renders the whole store —
//! merged panel, every cohort panel, cohort count — as a self-describing
//! JSON document, and [`restore_json`] rebuilds a store whose query
//! answers are **bit-identical** (the property-based tests in
//! `tests/prop_store.rs` pin this down over random release sequences).
//!
//! Bit columns travel as hex strings of their packed little-endian `u64`
//! words (16 hex digits per word) rather than JSON numbers: lossless at
//! any width, compact, and independent of JSON number precision.

use longsynth_data::{BitColumn, LongitudinalDataset};
use serde::Serialize;

use crate::store::{GrowingPanel, ReleaseStore, ServeError};

/// Format tag embedded in every snapshot; bump on layout changes.
const FORMAT: &str = "longsynth-release-store/v1";

#[derive(Serialize)]
struct PanelDto {
    records: u64,
    columns: Vec<String>,
}

#[derive(Serialize)]
struct SnapshotDto {
    format: String,
    merged: Option<PanelDto>,
    cohorts: Vec<Option<PanelDto>>,
}

fn column_to_hex(column: &BitColumn) -> String {
    let mut out = String::with_capacity(column.as_words().len() * 16);
    for word in column.as_words() {
        out.push_str(&format!("{word:016x}"));
    }
    out
}

fn column_from_hex(hex: &str, records: usize) -> Result<BitColumn, ServeError> {
    let expected_words = records.div_ceil(64);
    if hex.len() != expected_words * 16 {
        return Err(ServeError::Snapshot(format!(
            "column hex has {} digits, expected {} for {records} records",
            hex.len(),
            expected_words * 16
        )));
    }
    let mut words = Vec::with_capacity(expected_words);
    for chunk in 0..expected_words {
        let digits = &hex[chunk * 16..(chunk + 1) * 16];
        let word = u64::from_str_radix(digits, 16)
            .map_err(|_| ServeError::Snapshot(format!("invalid hex word {digits:?}")))?;
        words.push(word);
    }
    Ok(BitColumn::from_words(words, records))
}

fn panel_to_dto(panel: &GrowingPanel) -> Option<PanelDto> {
    panel.panel().map(|dataset| PanelDto {
        records: dataset.individuals() as u64,
        columns: (0..dataset.rounds())
            .map(|t| column_to_hex(dataset.column(t)))
            .collect(),
    })
}

fn panel_from_value(value: &serde_json::Value) -> Result<GrowingPanel, ServeError> {
    if *value == serde_json::Value::Null {
        return Ok(GrowingPanel::default());
    }
    let records = value
        .get("records")
        .and_then(serde_json::Value::as_usize)
        .ok_or_else(|| ServeError::Snapshot("panel missing `records`".to_string()))?;
    let columns = value
        .get("columns")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("panel missing `columns`".to_string()))?;
    if columns.is_empty() {
        return Err(ServeError::Snapshot(
            "stored panels always hold at least one column".to_string(),
        ));
    }
    let columns: Vec<BitColumn> = columns
        .iter()
        .map(|col| {
            col.as_str()
                .ok_or_else(|| ServeError::Snapshot("column is not a hex string".to_string()))
                .and_then(|hex| column_from_hex(hex, records))
        })
        .collect::<Result<_, _>>()?;
    let dataset = LongitudinalDataset::from_columns(columns)
        .map_err(|e| ServeError::Snapshot(format!("inconsistent panel: {e}")))?;
    Ok(GrowingPanel::from_dataset(Some(dataset)))
}

/// Render the store as a JSON snapshot.
pub fn snapshot_json(store: &ReleaseStore) -> String {
    let (merged, cohorts) = store.parts();
    let dto = SnapshotDto {
        format: FORMAT.to_string(),
        merged: panel_to_dto(merged),
        cohorts: cohorts.iter().map(panel_to_dto).collect(),
    };
    serde_json::to_string_pretty(&dto).expect("vendored JSON writer is infallible")
}

/// Rebuild a store from a snapshot produced by [`snapshot_json`].
pub fn restore_json(json: &str) -> Result<ReleaseStore, ServeError> {
    let value = serde_json::from_str(json).map_err(|e| ServeError::Snapshot(e.to_string()))?;
    let format = value
        .get("format")
        .and_then(serde_json::Value::as_str)
        .ok_or_else(|| ServeError::Snapshot("missing `format` tag".to_string()))?;
    if format != FORMAT {
        return Err(ServeError::Snapshot(format!(
            "unsupported snapshot format {format:?} (expected {FORMAT:?})"
        )));
    }
    let merged = panel_from_value(
        value
            .get("merged")
            .ok_or_else(|| ServeError::Snapshot("missing `merged`".to_string()))?,
    )?;
    let cohorts: Vec<GrowingPanel> = value
        .get("cohorts")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| ServeError::Snapshot("missing `cohorts`".to_string()))?
        .iter()
        .map(panel_from_value)
        .collect::<Result<_, _>>()?;
    // Lockstep invariant: every non-empty cohort panel has exactly the
    // merged panel's round count, and cohort records sum to merged records.
    let rounds = merged.rounds();
    for (index, cohort) in cohorts.iter().enumerate() {
        if cohort.panel().is_some() && cohort.rounds() != rounds {
            return Err(ServeError::Snapshot(format!(
                "cohort {index} has {} rounds, merged has {rounds}",
                cohort.rounds()
            )));
        }
    }
    if let Some(records) = merged.records() {
        let cohort_records: usize = cohorts.iter().filter_map(GrowingPanel::records).sum();
        if cohort_records != records {
            return Err(ServeError::Snapshot(format!(
                "cohort records sum to {cohort_records}, merged has {records}"
            )));
        }
    }
    Ok(ReleaseStore::from_parts(merged, cohorts))
}

impl ReleaseStore {
    /// Render this store as a JSON snapshot (see [`snapshot_json`]).
    pub fn to_snapshot_json(&self) -> String {
        snapshot_json(self)
    }

    /// Rebuild a store from a snapshot (see [`restore_json`]).
    pub fn from_snapshot_json(json: &str) -> Result<Self, ServeError> {
        restore_json(json)
    }
}

impl crate::QueryService {
    /// Snapshot the underlying store as JSON (read lock held briefly; the
    /// cache is derived data and deliberately not serialized).
    pub fn snapshot_json(&self) -> String {
        self.with_store(snapshot_json)
    }

    /// A fresh service over a store restored from `json` (empty cache —
    /// answers refill it and are bit-identical by construction).
    pub fn restore_json(json: &str) -> Result<Self, ServeError> {
        Ok(Self::from_store(restore_json(json)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ReleaseStore {
        let mut store = ReleaseStore::new();
        for round in 0..5 {
            let a =
                BitColumn::from_bools(&(0..67).map(|i| (i + round) % 3 == 0).collect::<Vec<_>>());
            let b =
                BitColumn::from_bools(&(0..41).map(|i| (i * round) % 5 == 1).collect::<Vec<_>>());
            let merged = BitColumn::concat([&a, &b]);
            store.ingest_columns(&[a, b], &merged).unwrap();
        }
        store
    }

    #[test]
    fn snapshot_roundtrips_exactly() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        assert!(json.contains(FORMAT));
        let restored = ReleaseStore::from_snapshot_json(&json).unwrap();
        assert_eq!(restored, store);
        // Snapshot of the restore is byte-identical (canonical form).
        assert_eq!(restored.to_snapshot_json(), json);
    }

    #[test]
    fn empty_store_roundtrips() {
        let store = ReleaseStore::new();
        let restored = ReleaseStore::from_snapshot_json(&store.to_snapshot_json()).unwrap();
        assert_eq!(restored, store);
        assert_eq!(restored.rounds(), 0);
    }

    #[test]
    fn hex_encoding_is_lossless_at_odd_widths() {
        for len in [1usize, 63, 64, 65, 127, 130] {
            let col = BitColumn::from_bools(&(0..len).map(|i| i % 7 == 0).collect::<Vec<_>>());
            let back = column_from_hex(&column_to_hex(&col), len).unwrap();
            assert_eq!(back, col, "len {len}");
        }
    }

    #[test]
    fn restore_rejects_corruption() {
        let store = sample_store();
        let json = store.to_snapshot_json();
        // Unknown format tag.
        let bad = json.replace(FORMAT, "longsynth-release-store/v999");
        assert!(matches!(
            ReleaseStore::from_snapshot_json(&bad),
            Err(ServeError::Snapshot(_))
        ));
        // Truncated document.
        assert!(ReleaseStore::from_snapshot_json(&json[..json.len() / 2]).is_err());
        // Non-hex column data.
        let bad = json.replacen("00", "zz", 1);
        assert!(ReleaseStore::from_snapshot_json(&bad).is_err());
        // Not JSON at all.
        assert!(ReleaseStore::from_snapshot_json("hello").is_err());
    }

    #[test]
    fn restore_validates_lockstep_invariants() {
        // Handcraft a snapshot whose cohort record counts cannot sum to the
        // merged count.
        let json = format!(
            r#"{{
  "format": "{FORMAT}",
  "merged": {{ "records": 3, "columns": ["0000000000000007"] }},
  "cohorts": [ {{ "records": 1, "columns": ["0000000000000001"] }} ]
}}"#
        );
        let err = ReleaseStore::from_snapshot_json(&json).unwrap_err();
        assert!(err.to_string().contains("sum"), "{err}");
    }

    #[test]
    fn service_snapshot_restores_with_identical_answers() {
        use crate::{QueryKind, QueryService, ServeQuery, StoreScope};
        let service = QueryService::from_store(sample_store());
        let query = ServeQuery {
            scope: StoreScope::Cohort(1),
            kind: QueryKind::CumulativeFraction { t: 4, b: 2 },
        };
        let before = service.answer(&query).unwrap();
        let restored = QueryService::restore_json(&service.snapshot_json()).unwrap();
        let after = restored.answer(&query).unwrap();
        assert_eq!(before.to_bits(), after.to_bits());
        // Restored cache starts cold.
        assert_eq!(restored.cache_stats(), (0, 1));
    }
}
