//! # longsynth-serve
//!
//! The query-serving subsystem of the `longsynth` workspace: everything
//! between "the engine produced a release" and "an online consumer got an
//! answer".
//!
//! In the continual-release deployment model (the source paper's setting,
//! and the streaming follow-ups in PAPERS.md), each round's release must be
//! queryable *immediately and forever after* — and answering from stored
//! releases must never cost a re-synthesis. Three pieces deliver that:
//!
//! * [`store::ReleaseStore`] — an append-only store of per-round merged and
//!   per-cohort synthetic releases, ingested from the engine as rounds
//!   complete (via the engine's `ReleaseSink` hook). Released prefixes are
//!   immutable, which is the property everything above relies on.
//! * [`query::QueryService`] — a cloneable, thread-safe front-end answering
//!   the existing window/cumulative/pattern workloads (`longsynth-queries`)
//!   straight from the store, with a **memoizing cache keyed by
//!   `(query, round)`**. Append-only releases make every per-round answer
//!   immutable once computed, so the cache never needs invalidation.
//!   Concurrent batches fan out on a `longsynth-pool` [`WorkerPool`] — the
//!   same pool type (and, if the caller chooses, the same pool instance)
//!   that drives the engine's shards.
//! * [`snapshot`] — JSON snapshot/restore of the store, so a long-running
//!   continual release survives process restarts with bit-identical query
//!   answers.
//!
//! ```
//! use longsynth::{CumulativeConfig, CumulativeSynthesizer};
//! use longsynth_data::generators::iid_bernoulli;
//! use longsynth_dp::budget::Rho;
//! use longsynth_dp::rng::{rng_from_seed, RngFork};
//! use longsynth_engine::{ShardPlan, ShardedEngine};
//! use longsynth_serve::{QueryKind, QueryService, ServeQuery, StoreScope};
//!
//! // Engine run with a serving sink attached.
//! let service = QueryService::new();
//! let panel = iid_bernoulli(&mut rng_from_seed(1), 300, 6, 0.2);
//! let fork = RngFork::new(9);
//! let mut engine = ShardedEngine::new(ShardPlan::new(300, 3).unwrap(), |s, _| {
//!     let config = CumulativeConfig::new(6, Rho::new(0.5).unwrap()).unwrap();
//!     CumulativeSynthesizer::new(config, fork.subfork(s as u64), rng_from_seed(s as u64))
//! })
//! .unwrap();
//! engine.set_sink(service.column_sink());
//! for (_, column) in panel.stream() {
//!     engine.step(column).unwrap();
//! }
//!
//! // Every released round is immediately queryable — twice, cheaply.
//! let query = ServeQuery {
//!     scope: StoreScope::Merged,
//!     kind: QueryKind::CumulativeFraction { t: 5, b: 2 },
//! };
//! let cold = service.answer(&query).unwrap();
//! let cached = service.answer(&query).unwrap();
//! assert_eq!(cold, cached);
//! assert_eq!(service.cache_stats(), (1, 1)); // one hit, one miss
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod query;
pub mod snapshot;
pub mod store;

pub use query::{
    mixed_battery, EvictionPolicy, QueryKind, QueryService, ServeQuery, DEFAULT_CACHE_CAPACITY,
};
pub use store::{ReleaseStore, ServeError, StoreScope};

// Re-exported so sinks and stores can be policy-tagged without a direct
// `longsynth-engine` dependency at the call site.
pub use longsynth_engine::PolicyTag;

// Re-exported so `serve` users can size and share pools without a direct
// `longsynth-pool` dependency.
pub use longsynth_pool::WorkerPool;
