//! Deterministic, forkable randomness.
//!
//! Everything in `longsynth` that consumes randomness takes a caller-supplied
//! [`rand::Rng`]. This module standardises on ChaCha12 (a cryptographically
//! strong, seedable, portable generator) and provides [`RngFork`], a tiny
//! utility that derives *independent* child seeds from a master seed.
//!
//! Independence of child streams matters for reproducibility of the paper's
//! experiments: the figure harness runs 1000 repetitions in parallel, and
//! every repetition must see the same noise no matter how many worker
//! threads execute it. Deriving child seeds with a SplitMix64 mix (the
//! standard seed-expansion construction, also used by `rand` itself for
//! `seed_from_u64`) guarantees that.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The RNG type used throughout the workspace when a concrete type is needed.
pub type StdDpRng = ChaCha12Rng;

/// Build a ChaCha12 RNG from a 64-bit seed.
///
/// The 64-bit seed is expanded to the full 256-bit ChaCha key with
/// SplitMix64, so similar seeds (e.g. `0, 1, 2, …`) still produce unrelated
/// streams.
pub fn rng_from_seed(seed: u64) -> StdDpRng {
    let mut key = [0u8; 32];
    let mut state = seed;
    for chunk in key.chunks_exact_mut(8) {
        state = splitmix64(state);
        chunk.copy_from_slice(&state.to_le_bytes());
    }
    ChaCha12Rng::from_seed(key)
}

/// One round of the SplitMix64 output function.
///
/// Passes BigCrush as a standalone generator; here it is used only to
/// decorrelate seed material, for which it is more than sufficient.
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent child RNGs from a master seed.
///
/// Children are addressed by a caller-chosen label (e.g. the repetition
/// index, or a histogram-bin id), so the mapping `label → stream` is stable
/// regardless of the order in which children are requested. Two forks with
/// the same master seed hand out identical streams.
///
/// ```
/// use longsynth_dp::rng::RngFork;
/// use rand::Rng;
///
/// let fork = RngFork::new(42);
/// let mut a = fork.child(0);
/// let mut b = fork.child(1);
/// let (x, y): (u64, u64) = (a.gen(), b.gen());
/// assert_ne!(x, y); // independent streams
/// // Stable: re-requesting the same child replays the same stream.
/// let mut a2 = fork.child(0);
/// assert_eq!(x, a2.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFork {
    master: u64,
}

impl RngFork {
    /// Create a fork rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: master_seed,
        }
    }

    /// The master seed this fork was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// An RNG for the child stream addressed by `label`.
    pub fn child(&self, label: u64) -> StdDpRng {
        // Mix the label through two SplitMix rounds keyed by the master so
        // that (master, label) pairs map injectively-in-practice to keys.
        let mixed = splitmix64(self.master ^ splitmix64(label ^ 0xA076_1D64_78BD_642F));
        rng_from_seed(mixed)
    }

    /// A sub-fork: useful when a component needs many streams of its own
    /// (e.g. one per stream counter) without coordinating labels globally.
    pub fn subfork(&self, label: u64) -> RngFork {
        RngFork {
            master: splitmix64(self.master ^ splitmix64(label ^ 0xE703_7ED1_A0B4_28DB)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_children_are_stable_and_distinct() {
        let fork = RngFork::new(123);
        let first: Vec<u64> = (0..16).map(|i| fork.child(i).gen()).collect();
        let second: Vec<u64> = (0..16).map(|i| fork.child(i).gen()).collect();
        assert_eq!(first, second);
        // All 16 children produce distinct first draws (collision prob ~2^-60).
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len());
    }

    #[test]
    fn subfork_decorrelates_from_parent_children() {
        let fork = RngFork::new(9);
        let sub = fork.subfork(0);
        let a: u64 = fork.child(0).gen();
        let b: u64 = sub.child(0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the public-domain SplitMix64 implementation.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn seed_expansion_uses_all_key_bytes() {
        // Seeds differing in the high bit must still yield different keys.
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(1 | (1 << 63));
        assert_ne!(a.gen::<u128>(), b.gen::<u128>());
    }
}
