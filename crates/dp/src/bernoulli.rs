//! Exact sampling from `Bernoulli(exp(-γ))`.
//!
//! This is the base primitive of the Canonne–Kamath–Steinke (2020) discrete
//! Gaussian sampling stack: both the discrete Laplace sampler
//! ([`crate::geometric`]) and the discrete Gaussian rejection step
//! ([`crate::discrete_gaussian`]) reduce to it.
//!
//! The construction avoids evaluating `exp` and then flipping a biased coin
//! against a floating-point threshold for *large* γ; instead it uses the
//! alternating-series trick: for γ ∈ [0, 1], sample `A_k ~ Bernoulli(γ/k)`
//! until the first failure at index `K`, and accept iff `K` is odd. A short
//! telescoping argument shows `Pr[K odd] = exp(-γ)`. For γ > 1 the sample
//! factors through `exp(-γ) = exp(-1)^⌊γ⌋ · exp(-(γ-⌊γ⌋))`.
//!
//! The individual coin probabilities `γ/k` are represented as `f64`; see
//! DESIGN.md §4 for why this engineering concession (relative to exact
//! rational arithmetic) is statistically irrelevant here.

use rand::Rng;

/// Sample `Bernoulli(p)` for `p ∈ [0, 1]`, clamping tiny numerical overshoot.
///
/// # Panics
/// Panics if `p` is NaN or outside `[-1e-12, 1 + 1e-12]`.
#[inline]
pub fn sample_bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!(!p.is_nan(), "Bernoulli probability must not be NaN");
    assert!(
        (-1e-12..=1.0 + 1e-12).contains(&p),
        "Bernoulli probability {p} out of range"
    );
    rng.gen_bool(p.clamp(0.0, 1.0))
}

/// Sample `Bernoulli(exp(-γ))` exactly for any `γ ≥ 0`.
///
/// # Panics
/// Panics if `γ` is negative or NaN.
pub fn sample_bernoulli_exp_neg<R: Rng + ?Sized>(rng: &mut R, gamma: f64) -> bool {
    assert!(
        gamma.is_finite() && gamma >= 0.0,
        "gamma must be finite and non-negative, got {gamma}"
    );
    if gamma <= 1.0 {
        return sample_bernoulli_exp_neg_le1(rng, gamma);
    }
    // exp(-γ) = exp(-1)^⌊γ⌋ · exp(-frac(γ)). Short-circuit on first failure.
    let whole = gamma.floor();
    let mut i = 0.0;
    while i < whole {
        if !sample_bernoulli_exp_neg_le1(rng, 1.0) {
            return false;
        }
        i += 1.0;
    }
    sample_bernoulli_exp_neg_le1(rng, gamma - whole)
}

/// The γ ∈ [0, 1] case of [`sample_bernoulli_exp_neg`] (CKS Algorithm 1).
fn sample_bernoulli_exp_neg_le1<R: Rng + ?Sized>(rng: &mut R, gamma: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&gamma));
    let mut k = 1.0f64;
    loop {
        if !sample_bernoulli(rng, gamma / k) {
            // First failure at index K = k; accept iff K is odd.
            // `k` counts 1, 2, 3, … and stays exactly representable.
            return (k as u64) % 2 == 1;
        }
        k += 1.0;
        // For γ ≤ 1 the loop terminates quickly w.h.p.; by k = 64 the
        // continuation probability is below 2^-250, so this is unreachable
        // in practice but keeps the worst case bounded.
        if k > 1e6 {
            unreachable!("Bernoulli(exp(-gamma)) sampler failed to terminate");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    /// Empirical mean of `iters` draws of Bernoulli(exp(-gamma)).
    fn empirical_rate(gamma: f64, iters: u32, seed: u64) -> f64 {
        let mut rng = rng_from_seed(seed);
        let mut hits = 0u32;
        for _ in 0..iters {
            if sample_bernoulli_exp_neg(&mut rng, gamma) {
                hits += 1;
            }
        }
        f64::from(hits) / f64::from(iters)
    }

    #[test]
    fn gamma_zero_is_always_true() {
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            assert!(sample_bernoulli_exp_neg(&mut rng, 0.0));
        }
    }

    #[test]
    fn matches_exp_for_small_gamma() {
        // 200k draws: std-err ≈ 0.0011, assert within 5 sigma.
        for (i, &gamma) in [0.1, 0.5, 0.9, 1.0].iter().enumerate() {
            let rate = empirical_rate(gamma, 200_000, 10 + i as u64);
            let expect = (-gamma).exp();
            assert!(
                (rate - expect).abs() < 0.006,
                "gamma={gamma}: rate {rate} vs exp(-gamma) {expect}"
            );
        }
    }

    #[test]
    fn matches_exp_for_large_gamma() {
        for (i, &gamma) in [1.5, 2.0, 3.7, 6.0].iter().enumerate() {
            let rate = empirical_rate(gamma, 200_000, 20 + i as u64);
            let expect = (-gamma).exp();
            assert!(
                (rate - expect).abs() < 0.006,
                "gamma={gamma}: rate {rate} vs exp(-gamma) {expect}"
            );
        }
    }

    #[test]
    fn very_large_gamma_is_almost_never_true() {
        let mut rng = rng_from_seed(3);
        let hits = (0..10_000)
            .filter(|_| sample_bernoulli_exp_neg(&mut rng, 40.0))
            .count();
        assert_eq!(hits, 0, "exp(-40) ~ 4e-18 should never fire in 1e4 draws");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_gamma_panics() {
        let mut rng = rng_from_seed(4);
        sample_bernoulli_exp_neg(&mut rng, -0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_out_of_range_panics() {
        let mut rng = rng_from_seed(5);
        sample_bernoulli(&mut rng, 1.5);
    }

    #[test]
    fn bernoulli_edge_probabilities() {
        let mut rng = rng_from_seed(6);
        assert!(!sample_bernoulli(&mut rng, 0.0));
        assert!(sample_bernoulli(&mut rng, 1.0));
        // Tiny negative / >1 within tolerance are clamped, not panicking.
        assert!(!sample_bernoulli(&mut rng, -1e-15));
        assert!(sample_bernoulli(&mut rng, 1.0 + 1e-15));
    }
}
