//! zCDP privacy budgets: the [`Rho`] type, composition, `(ε, δ)` conversion,
//! and the paper's budget-splitting rules.
//!
//! Zero-concentrated differential privacy (Definition 2.1 of the paper;
//! Bun–Steinke 2016) measures privacy loss by a single parameter ρ ≥ 0 and
//! composes additively (Theorem 2.1). Both of the paper's algorithms are
//! stated for a total budget ρ that is divided across update steps
//! (Algorithm 1: uniformly over the `T − k + 1` histogram releases) or
//! across stream counters (Algorithm 2: the Corollary B.1 weights
//! `ρ_b ∝ max(⌈log₂(T − b + 1)⌉, 1)³`).

use std::fmt;

/// A zCDP privacy budget ρ ≥ 0.
///
/// `Rho` is a validating newtype: construction rejects NaN, infinity, and
/// negative values, so downstream noise calibration can divide by it without
/// re-checking.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rho(f64);

impl Rho {
    /// Construct a budget, validating `rho` is finite and non-negative.
    pub fn new(rho: f64) -> Result<Self, BudgetError> {
        if !rho.is_finite() || rho < 0.0 {
            return Err(BudgetError::InvalidRho(rho));
        }
        Ok(Self(rho))
    }

    /// Construct a strictly positive budget (needed wherever noise scales as
    /// `1/ρ`).
    pub fn new_positive(rho: f64) -> Result<Self, BudgetError> {
        if !rho.is_finite() || rho <= 0.0 {
            return Err(BudgetError::InvalidRho(rho));
        }
        Ok(Self(rho))
    }

    /// The raw ρ value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Sequential composition (Theorem 2.1): running a ρ₁-zCDP and a ρ₂-zCDP
    /// computation on the same data is (ρ₁+ρ₂)-zCDP.
    #[must_use]
    pub fn compose(self, other: Rho) -> Rho {
        Rho(self.0 + other.0)
    }

    /// Split the budget into `parts` equal shares (Algorithm 1's per-update
    /// allocation: each of the `T − k + 1` histogram releases gets
    /// `ρ / (T − k + 1)`).
    pub fn split_uniform(self, parts: usize) -> Result<Vec<Rho>, BudgetError> {
        if parts == 0 {
            return Err(BudgetError::EmptySplit);
        }
        Ok(vec![Rho(self.0 / parts as f64); parts])
    }

    /// Split the budget proportionally to non-negative `weights`.
    ///
    /// Shares sum to the original budget exactly up to floating error; the
    /// composition test below asserts the defect is ≤ 1 ulp-scale.
    pub fn split_weighted(self, weights: &[f64]) -> Result<Vec<Rho>, BudgetError> {
        if weights.is_empty() {
            return Err(BudgetError::EmptySplit);
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(BudgetError::InvalidWeight(w));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(BudgetError::InvalidWeight(total));
        }
        Ok(weights.iter().map(|&w| Rho(self.0 * w / total)).collect())
    }

    /// The paper's Corollary B.1 split across cumulative-query thresholds
    /// `b = 1..=T`: `ρ_b ∝ max(⌈log₂(T − b + 1)⌉, 1)³`, chosen to equalise
    /// the worst-case errors of the `T` tree counters.
    pub fn split_corollary_b1(self, horizon: usize) -> Result<Vec<Rho>, BudgetError> {
        if horizon == 0 {
            return Err(BudgetError::EmptySplit);
        }
        let weights: Vec<f64> = (1..=horizon)
            .map(|b| {
                let len = (horizon - b + 1) as f64;
                let levels = len.log2().ceil().max(1.0);
                levels.powi(3)
            })
            .collect();
        self.split_weighted(&weights)
    }

    /// Convert to an `(ε, δ)`-DP guarantee: ρ-zCDP implies
    /// `(ρ + 2·√(ρ·ln(1/δ)), δ)`-DP for every δ ∈ (0, 1)
    /// (Bun–Steinke 2016, Proposition 1.3).
    pub fn to_approx_dp(self, delta: f64) -> Result<f64, BudgetError> {
        if !(0.0..1.0).contains(&delta) || delta <= 0.0 {
            return Err(BudgetError::InvalidDelta(delta));
        }
        Ok(self.0 + 2.0 * (self.0 * (1.0 / delta).ln()).sqrt())
    }

    /// The Gaussian-mechanism variance for one release of a
    /// sensitivity-`Δ` statistic under this budget: `σ² = Δ² / (2ρ)`
    /// (the paper's §2.2: "σ² = Δq²/(2ρ)" — note their `∆q/2ρ` display
    /// elides the square, as the surrounding text makes clear).
    pub fn gaussian_sigma2(self, sensitivity: f64) -> Result<f64, BudgetError> {
        if self.0 <= 0.0 {
            return Err(BudgetError::InvalidRho(self.0));
        }
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(BudgetError::InvalidSensitivity(sensitivity));
        }
        Ok(sensitivity * sensitivity / (2.0 * self.0))
    }
}

impl fmt::Display for Rho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ρ={}", self.0)
    }
}

/// Errors from budget construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// ρ was NaN, infinite, or negative (or non-positive where positivity is
    /// required).
    InvalidRho(f64),
    /// δ outside (0, 1).
    InvalidDelta(f64),
    /// A split weight was NaN, infinite, or negative, or all weights were 0.
    InvalidWeight(f64),
    /// A split into zero parts was requested.
    EmptySplit,
    /// Sensitivity was NaN, infinite, or non-positive.
    InvalidSensitivity(f64),
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::InvalidRho(r) => write!(f, "invalid zCDP budget rho={r}"),
            BudgetError::InvalidDelta(d) => write!(f, "invalid delta={d}, need delta in (0,1)"),
            BudgetError::InvalidWeight(w) => write!(f, "invalid split weight {w}"),
            BudgetError::EmptySplit => write!(f, "cannot split a budget into zero parts"),
            BudgetError::InvalidSensitivity(s) => write!(f, "invalid sensitivity {s}"),
        }
    }
}

impl std::error::Error for BudgetError {}

/// A pure differential privacy budget ε > 0.
///
/// Provided for the pure-DP variants of the mechanisms (the original
/// Dwork–Naor–Pitassi–Rothblum / Chan–Shi–Song counters used Laplace noise
/// under ε-DP; see the paper's Appendix A note). Pure ε-DP composes
/// additively and implies `ε²/2`-zCDP (Bun–Steinke 2016, Prop. 1.4), which
/// is how the pure-DP configurations plug into the zCDP ledger.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Construct a strictly positive pure-DP budget.
    pub fn new(epsilon: f64) -> Result<Self, BudgetError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(BudgetError::InvalidRho(epsilon));
        }
        Ok(Self(epsilon))
    }

    /// The raw ε value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Basic composition: ε₁-DP then ε₂-DP is (ε₁+ε₂)-DP.
    #[must_use]
    pub fn compose(self, other: Epsilon) -> Epsilon {
        Epsilon(self.0 + other.0)
    }

    /// Split into `parts` equal shares.
    pub fn split_uniform(self, parts: usize) -> Result<Vec<Epsilon>, BudgetError> {
        if parts == 0 {
            return Err(BudgetError::EmptySplit);
        }
        Ok(vec![Epsilon(self.0 / parts as f64); parts])
    }

    /// The zCDP budget this pure-DP guarantee implies: `ρ = ε²/2`.
    pub fn to_zcdp(self) -> Rho {
        Rho(self.0 * self.0 / 2.0)
    }

    /// The discrete-Laplace scale for one release of a sensitivity-`Δ`
    /// statistic under this budget: `scale = Δ/ε`.
    pub fn laplace_scale(self, sensitivity: f64) -> Result<f64, BudgetError> {
        if !sensitivity.is_finite() || sensitivity <= 0.0 {
            return Err(BudgetError::InvalidSensitivity(sensitivity));
        }
        Ok(sensitivity / self.0)
    }
}

impl fmt::Display for Epsilon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

/// A running zCDP ledger: tracks how much of a total budget has been spent.
///
/// The synthesizers use this to assert, at the end of a run, that the noise
/// they injected accounts for exactly the budget the caller granted —
/// turning the privacy proof's bookkeeping into an executable check.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: Rho,
    spent: f64,
}

impl BudgetLedger {
    /// Open a ledger with `total` budget available.
    pub fn new(total: Rho) -> Self {
        Self { total, spent: 0.0 }
    }

    /// Record a ρ-zCDP expenditure.
    ///
    /// Returns an error if the charge would exceed the total (with a 1e-9
    /// relative tolerance for float accumulation).
    pub fn charge(&mut self, rho: Rho) -> Result<(), BudgetError> {
        let next = self.spent + rho.value();
        if next > self.total.value() * (1.0 + 1e-9) + 1e-15 {
            return Err(BudgetError::InvalidRho(next));
        }
        self.spent = next;
        Ok(())
    }

    /// Budget spent so far.
    pub fn spent(&self) -> Rho {
        Rho(self.spent)
    }

    /// Budget still available.
    pub fn remaining(&self) -> Rho {
        Rho((self.total.value() - self.spent).max(0.0))
    }

    /// Total budget this ledger was opened with.
    pub fn total(&self) -> Rho {
        self.total
    }

    /// True when the full budget has been consumed (up to float tolerance).
    pub fn exhausted(&self) -> bool {
        self.spent >= self.total.value() * (1.0 - 1e-9) - 1e-15
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Rho::new(0.0).is_ok());
        assert!(Rho::new(1.5).is_ok());
        assert!(Rho::new(-0.1).is_err());
        assert!(Rho::new(f64::NAN).is_err());
        assert!(Rho::new(f64::INFINITY).is_err());
        assert!(Rho::new_positive(0.0).is_err());
    }

    #[test]
    fn composition_is_additive() {
        let a = Rho::new(0.003).unwrap();
        let b = Rho::new(0.002).unwrap();
        assert!((a.compose(b).value() - 0.005).abs() < 1e-15);
    }

    #[test]
    fn uniform_split_recomposes() {
        let rho = Rho::new(0.005).unwrap();
        let parts = rho.split_uniform(10).unwrap();
        assert_eq!(parts.len(), 10);
        let sum: f64 = parts.iter().map(|r| r.value()).sum();
        assert!((sum - 0.005).abs() < 1e-12);
    }

    #[test]
    fn weighted_split_is_proportional_and_recomposes() {
        let rho = Rho::new(1.0).unwrap();
        let parts = rho.split_weighted(&[1.0, 3.0]).unwrap();
        assert!((parts[0].value() - 0.25).abs() < 1e-12);
        assert!((parts[1].value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn corollary_b1_split_properties() {
        let rho = Rho::new(0.005).unwrap();
        let horizon = 12;
        let parts = rho.split_corollary_b1(horizon).unwrap();
        assert_eq!(parts.len(), horizon);
        let sum: f64 = parts.iter().map(|r| r.value()).sum();
        assert!((sum - 0.005).abs() < 1e-12);
        // Earlier thresholds watch longer streams (deeper trees) and must
        // receive more budget; the weights are non-increasing in b.
        for w in parts.windows(2) {
            assert!(w[0].value() >= w[1].value() - 1e-15);
        }
        // b = T has a length-1 stream → weight max(⌈log₂1⌉,1)³ = 1.
        // b = 1 has length T → weight ⌈log₂12⌉³ = 64.
        let ratio = parts[0].value() / parts[horizon - 1].value();
        assert!((ratio - 64.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn approx_dp_conversion() {
        let rho = Rho::new(0.005).unwrap();
        let eps = rho.to_approx_dp(1e-6).unwrap();
        // ε = ρ + 2√(ρ ln 1e6) ≈ 0.005 + 2·√(0.005·13.8155) ≈ 0.5308
        assert!((eps - 0.530_78).abs() < 1e-3, "eps {eps}");
        assert!(rho.to_approx_dp(0.0).is_err());
        assert!(rho.to_approx_dp(1.0).is_err());
    }

    #[test]
    fn gaussian_calibration_matches_paper() {
        // §3.1: per-update noise N_Z(0, (T-k+1)/(2ρ)) for sensitivity-1
        // counts under budget ρ/(T-k+1) each.
        let total = Rho::new(0.005).unwrap();
        let t = 12;
        let k = 3;
        let updates = t - k + 1;
        let per_step = total.split_uniform(updates).unwrap()[0];
        let sigma2 = per_step.gaussian_sigma2(1.0).unwrap();
        let expected = updates as f64 / (2.0 * 0.005);
        assert!((sigma2 - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn ledger_tracks_and_guards() {
        let mut ledger = BudgetLedger::new(Rho::new(0.01).unwrap());
        assert!(!ledger.exhausted());
        for _ in 0..10 {
            ledger.charge(Rho::new(0.001).unwrap()).unwrap();
        }
        assert!(ledger.exhausted());
        assert!(ledger.remaining().value() < 1e-12);
        assert!(ledger.charge(Rho::new(0.001).unwrap()).is_err());
    }

    #[test]
    fn split_rejects_bad_input() {
        let rho = Rho::new(1.0).unwrap();
        assert!(rho.split_uniform(0).is_err());
        assert!(rho.split_weighted(&[]).is_err());
        assert!(rho.split_weighted(&[0.0, 0.0]).is_err());
        assert!(rho.split_weighted(&[1.0, -1.0]).is_err());
        assert!(rho.split_corollary_b1(0).is_err());
    }

    #[test]
    fn display_formats() {
        let rho = Rho::new(0.25).unwrap();
        assert_eq!(format!("{rho}"), "ρ=0.25");
        let err = BudgetError::InvalidDelta(2.0);
        assert!(format!("{err}").contains("delta"));
    }

    #[test]
    fn epsilon_budget_contract() {
        assert!(Epsilon::new(0.0).is_err());
        assert!(Epsilon::new(f64::NAN).is_err());
        let e = Epsilon::new(1.0).unwrap();
        assert_eq!(format!("{e}"), "ε=1");
        // Composition and splitting.
        let total = e.compose(Epsilon::new(0.5).unwrap());
        assert!((total.value() - 1.5).abs() < 1e-15);
        let parts = e.split_uniform(4).unwrap();
        let sum: f64 = parts.iter().map(|p| p.value()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(e.split_uniform(0).is_err());
        // Conversion: ε-DP ⇒ ε²/2-zCDP.
        assert!((e.to_zcdp().value() - 0.5).abs() < 1e-15);
        // Laplace calibration.
        assert!((e.laplace_scale(1.0).unwrap() - 1.0).abs() < 1e-15);
        assert!((Epsilon::new(0.5).unwrap().laplace_scale(2.0).unwrap() - 4.0).abs() < 1e-15);
        assert!(e.laplace_scale(0.0).is_err());
    }
}
