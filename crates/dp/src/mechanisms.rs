//! Noisy-count mechanisms: the "stage 1" building block of both algorithms.
//!
//! [`NoiseDistribution`] abstracts over the two integer noise families used
//! in the continual-release literature — the discrete Gaussian (zCDP; what
//! the paper uses everywhere) and the discrete Laplace (pure ε-DP; what the
//! original Dwork et al. / Chan et al. tree counters used). Stream counters
//! and synthesizers are generic over it, which is what makes the
//! "swap in a different counter/noise" ablations of EXPERIMENTS.md possible
//! without touching algorithm code.

use crate::budget::{BudgetError, Rho};
use crate::discrete_gaussian::{tail_quantile, DiscreteGaussianSampler};
use crate::geometric::{discrete_laplace_variance, DiscreteLaplaceSampler};
use rand::Rng;

/// An integer-valued, symmetric, zero-mean noise distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseDistribution {
    /// Discrete Gaussian `N_Z(0, σ²)`.
    DiscreteGaussian {
        /// Variance parameter σ².
        sigma2: f64,
    },
    /// Discrete Laplace with `Pr[X = x] ∝ exp(-|x|/scale)`.
    DiscreteLaplace {
        /// Scale parameter (larger = noisier).
        scale: f64,
    },
    /// No noise: the identity mechanism. Used by tests and by non-private
    /// baseline runs; never by a private synthesizer.
    None,
}

impl NoiseDistribution {
    /// Discrete Gaussian noise calibrated so one release of a
    /// sensitivity-`Δ` statistic satisfies ρ-zCDP: `σ² = Δ²/(2ρ)`.
    pub fn gaussian_for_zcdp(rho: Rho, sensitivity: f64) -> Self {
        let sigma2 = rho
            .gaussian_sigma2(sensitivity)
            .expect("calibration requires positive rho and sensitivity");
        NoiseDistribution::DiscreteGaussian { sigma2 }
    }

    /// Fallible variant of [`Self::gaussian_for_zcdp`].
    pub fn try_gaussian_for_zcdp(rho: Rho, sensitivity: f64) -> Result<Self, BudgetError> {
        Ok(NoiseDistribution::DiscreteGaussian {
            sigma2: rho.gaussian_sigma2(sensitivity)?,
        })
    }

    /// Discrete Laplace noise calibrated so one release of a
    /// sensitivity-`Δ` statistic satisfies ε-DP: `scale = Δ/ε`.
    pub fn laplace_for_pure_dp(epsilon: f64, sensitivity: f64) -> Self {
        assert!(epsilon > 0.0 && sensitivity > 0.0);
        NoiseDistribution::DiscreteLaplace {
            scale: sensitivity / epsilon,
        }
    }

    /// Draw one noise value.
    ///
    /// Repeated draws from the same distribution should construct a
    /// [`NoiseSampler`] via [`Self::sampler`] once instead: this
    /// convenience form re-derives the sampling constants on every call.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        self.sampler().sample(rng)
    }

    /// Precompute a reusable sampler for this distribution.
    ///
    /// The returned sampler's [`NoiseSampler::sample`] is bit-stream-
    /// identical to [`Self::sample`], so hoisting construction out of a
    /// per-round loop never changes a seeded output.
    pub fn sampler(&self) -> NoiseSampler {
        match *self {
            NoiseDistribution::DiscreteGaussian { sigma2 } => {
                NoiseSampler::DiscreteGaussian(DiscreteGaussianSampler::new(sigma2))
            }
            NoiseDistribution::DiscreteLaplace { scale } => {
                NoiseSampler::DiscreteLaplace(DiscreteLaplaceSampler::new(scale))
            }
            NoiseDistribution::None => NoiseSampler::None,
        }
    }

    /// (An upper bound on) the variance of one draw.
    pub fn variance(&self) -> f64 {
        match *self {
            NoiseDistribution::DiscreteGaussian { sigma2 } => sigma2,
            NoiseDistribution::DiscreteLaplace { scale } => discrete_laplace_variance(scale),
            NoiseDistribution::None => 0.0,
        }
    }

    /// A deviation `λ` such that `Pr[|X| ≥ λ] ≤ β` for one draw.
    ///
    /// Gaussian: the sub-Gaussian quantile; Laplace: the exponential-tail
    /// quantile `scale·ln(1/β)` (up to the discrete +1 slack, absorbed by
    /// using `ln(2/β)`); `None`: 0.
    pub fn tail_quantile(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0);
        match *self {
            NoiseDistribution::DiscreteGaussian { sigma2 } => tail_quantile(sigma2, beta),
            NoiseDistribution::DiscreteLaplace { scale } => scale * (2.0 / beta).ln(),
            NoiseDistribution::None => 0.0,
        }
    }

    /// True when this distribution injects no randomness.
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseDistribution::None)
    }
}

/// A [`NoiseDistribution`] with its per-distribution sampling constants
/// precomputed (one-time cold start instead of per draw).
///
/// Obtained from [`NoiseDistribution::sampler`]. Two draw paths:
/// [`sample`](Self::sample) is bit-stream-identical to
/// [`NoiseDistribution::sample`]; [`fill`](Self::fill) draws the identical
/// distribution through the entropy-lean batched path (different RNG word
/// consumption — not stream-interchangeable with `sample`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseSampler {
    /// Cached discrete Gaussian sampler.
    DiscreteGaussian(DiscreteGaussianSampler),
    /// Cached discrete Laplace sampler.
    DiscreteLaplace(DiscreteLaplaceSampler),
    /// The identity mechanism: every draw is 0.
    None,
}

impl NoiseSampler {
    /// Draw one noise value (stream-identical to
    /// [`NoiseDistribution::sample`]).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        match self {
            NoiseSampler::DiscreteGaussian(s) => s.sample(rng),
            NoiseSampler::DiscreteLaplace(s) => s.sample(rng),
            NoiseSampler::None => 0,
        }
    }

    /// Fill `out` with independent draws via the fast batched path
    /// (`None` writes zeros).
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [i64]) {
        match self {
            NoiseSampler::DiscreteGaussian(s) => s.fill(rng, out),
            NoiseSampler::DiscreteLaplace(s) => s.fill(rng, out),
            NoiseSampler::None => out.fill(0),
        }
    }

    /// True when this sampler injects no randomness.
    pub fn is_none(&self) -> bool {
        matches!(self, NoiseSampler::None)
    }
}

/// Release a vector of sensitivity-`1` counts under independent noise: the
/// DP histogram primitive of Algorithm 1 stage 1.
///
/// Returns `counts[i] + noiseᵢ` with independent draws. The sampler is
/// constructed once for the whole vector.
pub fn noisy_counts<R: Rng + ?Sized>(
    rng: &mut R,
    counts: &[i64],
    noise: NoiseDistribution,
) -> Vec<i64> {
    let sampler = noise.sampler();
    counts.iter().map(|&c| c + sampler.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn gaussian_calibration() {
        let rho = Rho::new(0.5).unwrap();
        let noise = NoiseDistribution::gaussian_for_zcdp(rho, 1.0);
        match noise {
            NoiseDistribution::DiscreteGaussian { sigma2 } => {
                assert!((sigma2 - 1.0).abs() < 1e-12)
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn laplace_calibration() {
        let noise = NoiseDistribution::laplace_for_pure_dp(0.5, 1.0);
        match noise {
            NoiseDistribution::DiscreteLaplace { scale } => assert!((scale - 2.0).abs() < 1e-12),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn none_is_identity() {
        let mut rng = rng_from_seed(1);
        let counts = vec![5, -3, 0, 100];
        let out = noisy_counts(&mut rng, &counts, NoiseDistribution::None);
        assert_eq!(out, counts);
        assert_eq!(NoiseDistribution::None.variance(), 0.0);
        assert_eq!(NoiseDistribution::None.tail_quantile(0.1), 0.0);
        assert!(NoiseDistribution::None.is_none());
    }

    #[test]
    fn noisy_counts_perturb_each_entry_independently() {
        let mut rng = rng_from_seed(2);
        let counts = vec![0i64; 1000];
        let noise = NoiseDistribution::DiscreteGaussian { sigma2: 100.0 };
        let out = noisy_counts(&mut rng, &counts, noise);
        let mean: f64 = out.iter().map(|&x| x as f64).sum::<f64>() / 1000.0;
        let var: f64 = out.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / 1000.0;
        assert!(mean.abs() < 1.5, "mean {mean}");
        assert!((var - 100.0).abs() < 20.0, "var {var}");
    }

    #[test]
    fn cached_sampler_is_stream_identical_to_distribution_sample() {
        let dists = [
            NoiseDistribution::DiscreteGaussian { sigma2: 9.0 },
            NoiseDistribution::DiscreteLaplace { scale: 3.0 },
            NoiseDistribution::None,
        ];
        for d in dists {
            let sampler = d.sampler();
            let mut rng1 = rng_from_seed(40);
            let mut rng2 = rng_from_seed(40);
            for i in 0..200 {
                assert_eq!(
                    sampler.sample(&mut rng1),
                    d.sample(&mut rng2),
                    "{d:?} draw {i}"
                );
            }
        }
    }

    #[test]
    fn sampler_fill_none_is_zero_and_noise_is_not() {
        let mut rng = rng_from_seed(41);
        let mut buf = [7i64; 64];
        NoiseDistribution::None.sampler().fill(&mut rng, &mut buf);
        assert_eq!(buf, [0i64; 64]);
        assert!(NoiseDistribution::None.sampler().is_none());
        let g = NoiseDistribution::DiscreteGaussian { sigma2: 25.0 }.sampler();
        assert!(!g.is_none());
        g.fill(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        let l = NoiseDistribution::DiscreteLaplace { scale: 4.0 }.sampler();
        l.fill(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0));
    }

    #[test]
    fn tail_quantiles_are_monotone_in_beta() {
        let g = NoiseDistribution::DiscreteGaussian { sigma2: 4.0 };
        let l = NoiseDistribution::DiscreteLaplace { scale: 2.0 };
        for d in [g, l] {
            assert!(d.tail_quantile(0.001) > d.tail_quantile(0.1));
        }
    }

    #[test]
    fn laplace_empirical_tail_within_quantile() {
        let d = NoiseDistribution::DiscreteLaplace { scale: 3.0 };
        let lambda = d.tail_quantile(0.05);
        let mut rng = rng_from_seed(3);
        let n = 50_000;
        let exceed = (0..n)
            .filter(|_| d.sample(&mut rng).unsigned_abs() as f64 >= lambda)
            .count();
        assert!(
            (exceed as f64) / (n as f64) <= 0.055,
            "rate {}",
            exceed as f64 / n as f64
        );
    }
}
