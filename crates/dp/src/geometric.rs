//! Exact discrete Laplace (two-sided geometric) sampling.
//!
//! The discrete Laplace distribution with scale `t > 0`, written `Lap_Z(t)`,
//! is supported on the integers with `Pr[X = x] ∝ exp(-|x|/t)`. It is used
//! in two roles here:
//!
//! 1. as the proposal distribution inside the discrete Gaussian rejection
//!    sampler ([`crate::discrete_gaussian`]), following Canonne–Kamath–
//!    Steinke (2020, Algorithm 2); and
//! 2. as a pure-DP alternative noise distribution for the paper's
//!    mechanisms (the original tree-based counter of Dwork et al. / Chan et
//!    al. used Laplace noise; see Appendix A of the paper).
//!
//! The sampler is exact given exact `Bernoulli(exp(-γ))` draws: it never
//! evaluates the Laplace density against a floating-point uniform.

use crate::bernoulli::{sample_bernoulli, sample_bernoulli_exp_neg};
use crate::fastcoin::{laplace_magnitude_pool, uniform_bits, BitPool};
use rand::{Rng, RngCore};

/// Denominator used to represent a real Laplace scale as the rational
/// `t / RESOLUTION` (see [`sample_discrete_laplace`]).
const RESOLUTION: u64 = 1 << 16;

/// Sample from the discrete Laplace distribution `Pr[X = x] ∝ exp(-|x| / t)`
/// with integer denominator `t ≥ 1` (CKS 2020, Algorithm 2 with `s = 1`).
///
/// # Panics
/// Panics if `t == 0`.
pub fn sample_discrete_laplace_int<R: Rng + ?Sized>(rng: &mut R, t: u64) -> i64 {
    assert!(t >= 1, "discrete Laplace denominator must be >= 1");
    loop {
        // U ~ Uniform{0, …, t-1}, accepted with probability exp(-U/t):
        // together these produce the fractional part of an Exp(1) draw,
        // discretised to multiples of 1/t.
        let u = rng.gen_range(0..t);
        if !sample_bernoulli_exp_neg(rng, u as f64 / t as f64) {
            continue;
        }
        // V ~ Geometric(1 - exp(-1)): the integer part of the Exp(1) draw.
        let mut v: u64 = 0;
        while sample_bernoulli_exp_neg(rng, 1.0) {
            v += 1;
            // Pr[V ≥ 4000] = exp(-4000): unreachable, but bound the loop.
            assert!(v < 4000, "geometric tail overflow");
        }
        let magnitude = u + t * v;
        // Random sign; reject (negative, 0) so zero is not double-counted.
        let negative = sample_bernoulli(rng, 0.5);
        if negative && magnitude == 0 {
            continue;
        }
        let magnitude = i64::try_from(magnitude).expect("discrete Laplace magnitude overflow");
        return if negative { -magnitude } else { magnitude };
    }
}

/// Sample discrete Laplace noise with *real* scale `b > 0`
/// (`Pr[X = x] ∝ exp(-|x| / b)`).
///
/// Exactness requires a rational scale; we round `b` up to the nearest
/// multiple of `1/RESOLUTION` which changes the distribution by a relative
/// error below `1e-9` per point — far below any statistical resolution at
/// the paper's scales. For integer scales the sampler is exact.
pub fn sample_discrete_laplace<R: Rng + ?Sized>(rng: &mut R, scale: f64) -> i64 {
    DiscreteLaplaceSampler::new(scale).sample(rng)
}

/// A reusable real-scale discrete Laplace sampler with the rational scale
/// representation `t / RESOLUTION` derived once.
///
/// [`sample_discrete_laplace`] re-derives the denominator on every call;
/// counters that add Laplace noise every round should hold one of these.
/// The stream contract mirrors
/// [`crate::discrete_gaussian::DiscreteGaussianSampler`]:
/// [`sample`](Self::sample) is bit-stream-identical to the free function,
/// [`fill`](Self::fill) is the entropy-lean exact fast path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteLaplaceSampler {
    scale: f64,
    /// Numerator of the rational scale `t / RESOLUTION`.
    t: u64,
    /// Chunk width for the pooled uniform over `[0, t)`.
    t_bits: u32,
    t_f: f64,
}

impl DiscreteLaplaceSampler {
    /// Precompute the rational-scale constants for real scale `scale`.
    ///
    /// # Panics
    /// Panics if `scale` is not finite and strictly positive.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "discrete Laplace scale must be positive and finite, got {scale}"
        );
        // Represent the scale as t / s with s = RESOLUTION. If X ≥ 0 has
        // Pr[X = x] ∝ exp(-x/t), then Y = ⌊X/s⌋ sums s consecutive
        // geometric masses and has exactly Pr[Y = y] ∝ exp(-y·s/t) — CKS
        // Algorithm 2's divide step, exact with plain floor division.
        let t = ((scale * RESOLUTION as f64).round() as u64).max(1);
        DiscreteLaplaceSampler {
            scale,
            t,
            t_bits: uniform_bits(t),
            t_f: t as f64,
        }
    }

    /// The real scale this sampler was built for.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draw one value, bit-stream-identical to
    /// [`sample_discrete_laplace`] at the same scale.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        loop {
            let x = self.sample_magnitude(rng);
            let y = x / RESOLUTION;
            let negative = sample_bernoulli(rng, 0.5);
            if negative && y == 0 {
                continue;
            }
            let y = i64::try_from(y).expect("discrete Laplace magnitude overflow");
            return if negative { -y } else { y };
        }
    }

    /// Fill `out` with independent draws via the pooled fast path
    /// (identical distribution, different RNG word consumption). One
    /// `BitPool` is shared across the whole batch.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [i64]) {
        let mut pool = BitPool::new();
        for slot in out.iter_mut() {
            *slot = self.sample_pooled(rng, &mut pool);
        }
    }

    /// One-sided magnitude with `Pr[X = x] ∝ exp(-x/t)` on `x ≥ 0`.
    fn sample_magnitude<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = rng.gen_range(0..self.t);
            if !sample_bernoulli_exp_neg(rng, u as f64 / self.t_f) {
                continue;
            }
            let mut v: u64 = 0;
            while sample_bernoulli_exp_neg(rng, 1.0) {
                v += 1;
                assert!(v < 4000, "geometric tail overflow");
            }
            return u + self.t * v;
        }
    }

    /// One draw through the pooled-coin machinery
    /// ([`Self::sample_magnitude`] over [`laplace_magnitude_pool`]).
    #[inline]
    fn sample_pooled<R: RngCore + ?Sized>(&self, rng: &mut R, pool: &mut BitPool) -> i64 {
        loop {
            let x = laplace_magnitude_pool(rng, pool, self.t, self.t_bits, self.t_f);
            let y = x / RESOLUTION;
            let negative = pool.take(rng, 1) == 1;
            if negative && y == 0 {
                continue;
            }
            let y = i64::try_from(y).expect("discrete Laplace magnitude overflow");
            return if negative { -y } else { y };
        }
    }
}

/// Variance of `Lap_Z(t)` (integer scale): `2·exp(-1/t) / (1 - exp(-1/t))²`.
pub fn discrete_laplace_variance(scale: f64) -> f64 {
    assert!(scale > 0.0);
    let a = (-1.0 / scale).exp();
    2.0 * a / ((1.0 - a) * (1.0 - a))
}

/// The scale required for a sensitivity-`Δ` count released once per element
/// to satisfy `ε`-DP: `b = Δ/ε` (in the exponent: `exp(-|x|·ε/Δ)`).
pub fn laplace_scale_for_pure_dp(epsilon: f64, sensitivity: f64) -> f64 {
    assert!(epsilon > 0.0 && sensitivity > 0.0);
    sensitivity / epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn moments(samples: &[i64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var)
    }

    #[test]
    fn integer_scale_moments_match_theory() {
        for (seed, t) in [(1u64, 1u64), (2, 3), (3, 10)] {
            let mut rng = rng_from_seed(seed);
            let samples: Vec<i64> = (0..120_000)
                .map(|_| sample_discrete_laplace_int(&mut rng, t))
                .collect();
            let (mean, var) = moments(&samples);
            let theory = discrete_laplace_variance(t as f64);
            assert!(mean.abs() < 0.05 * (t as f64), "t={t}: mean {mean}");
            assert!(
                (var - theory).abs() / theory < 0.05,
                "t={t}: var {var} vs {theory}"
            );
        }
    }

    #[test]
    fn symmetric_distribution() {
        let mut rng = rng_from_seed(5);
        let mut pos = 0i64;
        let mut neg = 0i64;
        for _ in 0..100_000 {
            let x = sample_discrete_laplace_int(&mut rng, 4);
            match x.cmp(&0) {
                std::cmp::Ordering::Greater => pos += 1,
                std::cmp::Ordering::Less => neg += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        let frac = pos as f64 / (pos + neg) as f64;
        assert!((frac - 0.5).abs() < 0.01, "sign asymmetry: {frac}");
    }

    #[test]
    fn real_scale_variance_close_to_theory() {
        let mut rng = rng_from_seed(6);
        let scale = 2.5;
        let samples: Vec<i64> = (0..120_000)
            .map(|_| sample_discrete_laplace(&mut rng, scale))
            .collect();
        let (mean, var) = moments(&samples);
        let theory = discrete_laplace_variance(scale);
        assert!(mean.abs() < 0.1, "mean {mean}");
        // The rounding construction inflates variance slightly (< a few %).
        assert!(
            (var - theory).abs() / theory < 0.10,
            "var {var} vs theory {theory}"
        );
    }

    #[test]
    fn pure_dp_scale_formula() {
        assert!((laplace_scale_for_pure_dp(0.5, 1.0) - 2.0).abs() < 1e-12);
        assert!((laplace_scale_for_pure_dp(2.0, 3.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn zero_denominator_panics() {
        let mut rng = rng_from_seed(7);
        sample_discrete_laplace_int(&mut rng, 0);
    }

    /// The cached sampler consumes the identical RNG stream as the scalar
    /// free function, across a mix of scales sharing one RNG.
    #[test]
    fn laplace_sampler_is_stream_identical_to_scalar() {
        let scales = [0.5, 1.0, 2.5, 40.0];
        let samplers: Vec<DiscreteLaplaceSampler> = scales
            .iter()
            .map(|&s| DiscreteLaplaceSampler::new(s))
            .collect();
        let mut rng1 = rng_from_seed(8);
        let mut rng2 = rng_from_seed(8);
        for round in 0..200 {
            let idx = round % scales.len();
            let a = samplers[idx].sample(&mut rng1);
            let b = sample_discrete_laplace(&mut rng2, scales[idx]);
            assert_eq!(a, b, "round {round}, scale {}", scales[idx]);
        }
    }

    #[test]
    fn laplace_fill_moments_match_theory() {
        let scale = 2.5;
        let sampler = DiscreteLaplaceSampler::new(scale);
        let mut rng = rng_from_seed(9);
        let mut buf = vec![0i64; 120_000];
        sampler.fill(&mut rng, &mut buf);
        let (mean, var) = moments(&buf);
        let theory = discrete_laplace_variance(scale);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!(
            (var - theory).abs() / theory < 0.10,
            "var {var} vs theory {theory}"
        );
        assert!((sampler.scale() - scale).abs() < 1e-12);
    }
}
