//! Pooled-entropy bounded sampling: exact uniform draws over `[0, t)`
//! served from buffered RNG words, and the batched Fisher–Yates prefix
//! shuffle built on them.
//!
//! The vendored `rand` stand-in widens every `gen_range` to `u128` and
//! spends **two** full 64-bit ChaCha words per draw, regardless of the
//! bound. That is invisible for one draw but dominates the synthesizers'
//! update step, which performs one bounded draw per promoted/relocated
//! record (the Fisher–Yates prefix shuffles in `cumulative`,
//! `fixed_window`, and `categorical` synthesis) — at n = 10⁶ records
//! that is hundreds of thousands of RNG words per round spent on draws
//! whose bounds fit in ~20 bits.
//!
//! [`RangePool`] applies the same remedy the `fastcoin` module applied to
//! `gen_bool`: buffer one RNG word in a `BitPool` and serve each draw
//! from `⌈log₂ t⌉` pooled bits via bit-masked rejection (acceptance
//! probability `> ½` per try). The distribution is *exactly* uniform —
//! each `bits`-wide chunk is an independent uniform integer, and
//! rejection conditions it on `[0, t)` — identical to `gen_range`'s
//! widening rejection; only the mapping from raw RNG words to draws
//! differs. A length-`m` prefix shuffle drops from `2m` words to
//! `≈ m·⌈log₂ m⌉/64` words, a 10–20x entropy reduction for the group
//! sizes the update steps see.
//!
//! ## Seeded-stream note
//!
//! Migrating a call site from `gen_range` to [`RangePool`] changes the
//! site's *word consumption*, hence every downstream draw from the same
//! RNG: seeded synthesis output streams shift. The workspace-wide
//! migration (PR 8) made that change once, everywhere, with per-site
//! decision-equivalence replay tests (see the [`replay`] helpers)
//! proving the decision sequence — and therefore the output
//! distribution — is unchanged. No compatibility shim retains the old
//! word mapping.

use crate::fastcoin::{uniform_bits, uniform_pool, BitPool};
use rand::RngCore;

/// A pooled-entropy sampler for bounded uniform draws, the `gen_range`
/// analogue of the fastcoin `BitPool` fast path.
///
/// Construct one per batch of draws (the synthesizers build one per
/// update step) and thread it through every bounded draw in the batch;
/// the pool amortizes one `next_u64` across ~`64/⌈log₂ t⌉` draws.
///
/// Draws are exact: see the module docs for the argument.
#[derive(Debug)]
pub struct RangePool {
    pool: BitPool,
}

impl RangePool {
    /// An empty pool; the first draw refills from the RNG.
    pub fn new() -> Self {
        Self {
            pool: BitPool::new(),
        }
    }

    /// Exact uniform draw from `[0, t)`.
    ///
    /// `t ≤ 1` spends no entropy and returns 0 (matching the
    /// degenerate-range behaviour every shuffle site relied on).
    #[inline]
    pub fn gen_index<R: RngCore + ?Sized>(&mut self, rng: &mut R, t: usize) -> usize {
        if t <= 1 {
            return 0;
        }
        let t = t as u64;
        uniform_pool(rng, &mut self.pool, t, uniform_bits(t)) as usize
    }

    /// Fisher–Yates prefix shuffle: after the call, the first
    /// `k.min(slice.len())` elements are a uniform ordered sample (without
    /// replacement) of the whole slice, exactly as the per-site
    /// `j + gen_range(0..len - j)` loops produced — same decision
    /// distribution, pooled entropy.
    #[inline]
    pub fn partial_shuffle<R: RngCore + ?Sized>(
        &mut self,
        rng: &mut R,
        slice: &mut [u32],
        k: usize,
    ) {
        let len = slice.len();
        // The last position has a single candidate; skip its certain draw.
        let stop = k.min(len.saturating_sub(1));
        for j in 0..stop {
            let pick = j + self.gen_index(rng, len - j);
            slice.swap(j, pick);
        }
    }
}

impl Default for RangePool {
    fn default() -> Self {
        Self::new()
    }
}

/// Test-only word-stream scripting for decision-equivalence replay tests.
///
/// Hidden from docs: these helpers exist so the synthesizer crates can
/// replay a chosen decision sequence through the *real* pooled code path
/// (see the fastcoin `coin_pool` replay test for the pattern). Not a
/// supported API.
#[doc(hidden)]
pub mod replay {
    use super::uniform_bits;
    use rand::RngCore;

    /// An `RngCore` serving a precomputed word stream; panics if a path
    /// draws more words than scripted (over-consumption is a test bug).
    #[derive(Debug)]
    pub struct WordScript {
        words: Vec<u64>,
        next: usize,
    }

    impl WordScript {
        /// Script the given `next_u64` outputs, in order.
        pub fn new(words: Vec<u64>) -> Self {
            Self { words, next: 0 }
        }

        /// True once every scripted word has been served.
        pub fn exhausted(&self) -> bool {
            self.next == self.words.len()
        }

        /// Words served so far.
        pub fn consumed(&self) -> usize {
            self.next
        }
    }

    impl RngCore for WordScript {
        fn next_u32(&mut self) -> u32 {
            panic!("scripted paths draw whole words");
        }

        fn next_u64(&mut self) -> u64 {
            let word = *self
                .words
                .get(self.next)
                .expect("WordScript exhausted: path drew more words than scripted");
            self.next += 1;
            word
        }
    }

    /// Packs a chosen decision sequence into the word stream a
    /// [`super::RangePool`] (plus any interleaved direct draws) will
    /// consume, by mirroring the `BitPool` refill discipline: low bits
    /// first, a request wider than the bits remaining discards the
    /// remainder and starts a fresh word.
    #[derive(Debug, Default)]
    pub struct PoolPacker {
        words: Vec<u64>,
        /// Index into `words` of the pool's current refill word, if any.
        cur: Option<usize>,
        offset: u32,
        avail: u32,
    }

    impl PoolPacker {
        /// An empty stream with an empty pool.
        pub fn new() -> Self {
            Self::default()
        }

        /// Mark a pool boundary: the consumer constructs a fresh
        /// `RangePool`, abandoning any buffered bits (call this wherever
        /// the code under test starts a new update step).
        pub fn reset_pool(&mut self) {
            self.cur = None;
            self.offset = 0;
            self.avail = 0;
        }

        /// Pack one accepted pooled chunk: the pool's next `width`-bit
        /// take reads `value`.
        pub fn take(&mut self, value: u64, width: u32) {
            assert!((1..=63).contains(&width), "pool takes serve 1..=63 bits");
            assert!(value < (1u64 << width), "value wider than the take");
            if self.avail < width {
                self.words.push(0);
                self.cur = Some(self.words.len() - 1);
                self.offset = 0;
                self.avail = 64;
            }
            let cur = self.cur.expect("refilled above");
            self.words[cur] |= value << self.offset;
            self.offset += width;
            self.avail -= width;
        }

        /// Pack one `RangePool::gen_index(.., t)` decision: the draw
        /// reads `value` (accepted first try, since `value < t`).
        /// `t ≤ 1` packs nothing, matching the entropy-free fast path.
        pub fn uniform(&mut self, value: u64, t: u64) {
            assert!(value < t.max(1), "decision out of range");
            if t <= 1 {
                return;
            }
            self.take(value, uniform_bits(t));
        }

        /// Pack one raw `next_u64` drawn *around* the pool (e.g. a
        /// `gen_bool` or scalar `gen_range` call between pooled draws);
        /// the pool's buffered bits survive it, exactly as at runtime.
        pub fn direct(&mut self, word: u64) {
            self.words.push(word);
        }

        /// Pack the two words a vendored scalar `gen_range(0..span)` call
        /// consumes to return `value`: low word `value`, high word 0 —
        /// accepted first try for every `value < span` (the rejection
        /// zone always covers `[0, span)`).
        pub fn gen_range(&mut self, value: u64, span: u64) {
            assert!(value < span, "decision out of range");
            self.direct(value);
            self.direct(0);
        }

        /// The packed word stream.
        pub fn into_words(self) -> Vec<u64> {
            self.words
        }

        /// The packed stream as a ready-to-draw [`WordScript`].
        pub fn into_script(self) -> WordScript {
            WordScript::new(self.words)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::replay::{PoolPacker, WordScript};
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    /// Counts words drawn, delegating to a real seeded stream.
    struct CountingRng<R> {
        inner: R,
        words: u64,
    }

    impl<R: RngCore> RngCore for CountingRng<R> {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.words += 1;
            self.inner.next_u64()
        }
    }

    #[test]
    fn gen_index_enumerates_exactly_for_non_power_of_two_t() {
        // t = 5 needs 3-bit chunks. Enumerate EVERY possible first chunk
        // x ∈ [0, 8): x < 5 must be returned as-is (identity on the
        // accepted region — this is what makes the draw exactly uniform),
        // x ≥ 5 must be rejected and the retry chunk y returned.
        let t = 5usize;
        let bits = uniform_bits(t as u64);
        assert_eq!(bits, 3);
        for x in 0u64..8 {
            if x < t as u64 {
                let mut rng = WordScript::new(vec![x]);
                let mut pool = RangePool::new();
                assert_eq!(pool.gen_index(&mut rng, t), x as usize, "accept x={x}");
            } else {
                for y in 0u64..t as u64 {
                    // Chunks pack low-bits-first into one refill word.
                    let mut rng = WordScript::new(vec![x | (y << bits)]);
                    let mut pool = RangePool::new();
                    assert_eq!(
                        pool.gen_index(&mut rng, t),
                        y as usize,
                        "reject x={x}, accept y={y}"
                    );
                }
            }
        }
    }

    #[test]
    fn gen_index_decision_matches_gen_range_on_identical_decisions() {
        // The primitive replay equivalence: for a decision d < t, the
        // scalar path reads d from words [d, 0] and the pooled path reads
        // d from a packed chunk; both must return d. Sweep bounds
        // including powers of two and the shuffle-realistic range.
        let mut outer = rng_from_seed(41);
        for _ in 0..2_000 {
            let t = outer.gen_range(2u64..5_000);
            let d = outer.gen_range(0..t);
            let scalar = WordScript::new(vec![d, 0]).gen_range(0..t);
            assert_eq!(scalar, d, "scalar path must read its packed decision");
            let mut packer = PoolPacker::new();
            packer.uniform(d, t);
            let mut script = packer.into_script();
            let mut pool = RangePool::new();
            let pooled = pool.gen_index(&mut script, t as usize) as u64;
            assert!(script.exhausted());
            assert_eq!(pooled, d, "pooled path must read its packed decision");
        }
    }

    #[test]
    fn partial_shuffle_replays_the_gen_range_loop_decisions() {
        // Same decision sequence through both algorithms ⇒ identical
        // permutations: the old per-site loop applied directly, the new
        // pooled loop through the real partial_shuffle.
        let mut outer = rng_from_seed(42);
        for trial in 0..200 {
            let len = 1 + (trial % 40) as usize;
            let k = outer.gen_range(0..=len);
            let decisions: Vec<u64> = (0..k.min(len.saturating_sub(1)))
                .map(|j| outer.gen_range(0..(len - j) as u64))
                .collect();

            // Old path: j + gen_range(0..len - j), applied in place.
            let mut old: Vec<u32> = (0..len as u32).collect();
            for (j, &d) in decisions.iter().enumerate() {
                old.swap(j, j + d as usize);
            }

            // New path: the packed stream through the real shuffle.
            let mut packer = PoolPacker::new();
            for (j, &d) in decisions.iter().enumerate() {
                packer.uniform(d, (len - j) as u64);
            }
            let mut script = packer.into_script();
            let mut new: Vec<u32> = (0..len as u32).collect();
            let mut pool = RangePool::new();
            pool.partial_shuffle(&mut script, &mut new, k);
            assert!(script.exhausted(), "len={len} k={k}");
            assert_eq!(old, new, "len={len} k={k}");
        }
    }

    #[test]
    fn gen_index_bounds_and_frequency() {
        let mut rng = rng_from_seed(43);
        let mut pool = RangePool::new();
        for &t in &[2usize, 3, 5, 6, 7, 12, 100] {
            let n = 120_000usize;
            let mut counts = vec![0u32; t];
            for _ in 0..n {
                counts[pool.gen_index(&mut rng, t)] += 1;
            }
            let expect = n as f64 / t as f64;
            // 5σ binomial band: deterministic seed, so this never flakes,
            // but it scales correctly with t (wider bands for small
            // per-value expectations).
            let tol = 5.0 * (expect * (1.0 - 1.0 / t as f64)).sqrt();
            for (v, &c) in counts.iter().enumerate() {
                let dev = (f64::from(c) - expect).abs();
                assert!(dev < tol, "t={t} value {v}: count {c} vs {expect}");
            }
        }
    }

    #[test]
    fn partial_shuffle_prefix_is_a_uniform_sample() {
        // Selection frequency: every element lands in the k-prefix with
        // probability k/len.
        let mut rng = rng_from_seed(44);
        let (len, k, trials) = (10usize, 3usize, 120_000usize);
        let mut pool = RangePool::new();
        let mut hits = vec![0u32; len];
        for _ in 0..trials {
            let mut ids: Vec<u32> = (0..len as u32).collect();
            pool.partial_shuffle(&mut rng, &mut ids, k);
            for &id in &ids[..k] {
                hits[id as usize] += 1;
            }
        }
        let expect = trials as f64 * k as f64 / len as f64;
        for (id, &h) in hits.iter().enumerate() {
            let dev = (f64::from(h) - expect).abs() / expect;
            assert!(dev < 0.03, "id {id}: {h} vs {expect}");
        }
    }

    #[test]
    fn pooled_shuffle_spends_an_order_of_magnitude_fewer_words() {
        // The whole point: the old loop spends 2 words per pick; the pool
        // ~⌈log₂ len⌉·retries/64. The economy grows as bounds shrink:
        // ~7x at len 4096 (12-bit picks), ~14x at len 256 (8-bit picks).
        for (len, min_economy) in [(4_096usize, 7u64), (256, 12)] {
            let mut old_rng = CountingRng {
                inner: rng_from_seed(45),
                words: 0,
            };
            let mut ids: Vec<u32> = (0..len as u32).collect();
            for j in 0..len - 1 {
                let pick = j + old_rng.gen_range(0..len - j);
                ids.swap(j, pick);
            }
            let old_words = old_rng.words;

            let mut new_rng = CountingRng {
                inner: rng_from_seed(45),
                words: 0,
            };
            let mut ids: Vec<u32> = (0..len as u32).collect();
            let mut pool = RangePool::new();
            pool.partial_shuffle(&mut new_rng, &mut ids, len);
            let new_words = new_rng.words;

            assert_eq!(old_words, 2 * (len as u64 - 1));
            assert!(
                new_words * min_economy <= old_words,
                "len={len}: expected ≥{min_economy}x entropy economy, \
                 got {old_words} vs {new_words}"
            );
        }
    }

    #[test]
    fn degenerate_bounds_spend_no_entropy() {
        struct Panicking;
        impl RngCore for Panicking {
            fn next_u32(&mut self) -> u32 {
                panic!("entropy spent on a certain draw");
            }
            fn next_u64(&mut self) -> u64 {
                panic!("entropy spent on a certain draw");
            }
        }
        let mut pool = RangePool::new();
        assert_eq!(pool.gen_index(&mut Panicking, 0), 0);
        assert_eq!(pool.gen_index(&mut Panicking, 1), 0);
        pool.partial_shuffle(&mut Panicking, &mut [], 3);
        pool.partial_shuffle(&mut Panicking, &mut [7], 1);
    }
}
