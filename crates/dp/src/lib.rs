//! Differential-privacy primitives for `longsynth`.
//!
//! This crate is the lowest substrate of the workspace: exact integer-valued
//! noise samplers and zero-concentrated differential privacy (zCDP)
//! accounting, as used by the synthesizers of
//! *Continual Release of Differentially Private Synthetic Data from
//! Longitudinal Data Collections* (Bun, Gaboardi, Neunhoeffer, Zhang;
//! PODS 2024).
//!
//! # Contents
//!
//! * [`rng`] — deterministic, forkable randomness so that every repetition,
//!   histogram bin, and stream counter draws from an independent stream.
//! * [`bernoulli`] — exact `Bernoulli(exp(-γ))` sampling
//!   (Canonne–Kamath–Steinke, NeurIPS 2020).
//! * [`geometric`] — exact discrete Laplace (two-sided geometric) sampling.
//! * [`discrete_gaussian`] — exact discrete Gaussian `N_Z(0, σ²)` sampling
//!   by rejection from the discrete Laplace, plus moment/tail facts.
//! * [`fastrange`] — pooled-entropy exact bounded sampling
//!   ([`fastrange::RangePool`]) and the batched Fisher–Yates prefix
//!   shuffle the synthesizers' update steps run on.
//! * [`budget`] — the [`budget::Rho`] zCDP budget type, composition,
//!   `(ε, δ)` conversion, and the paper's budget splitters (uniform and the
//!   Corollary B.1 weighting across cumulative-query thresholds).
//! * [`mechanisms`] — the noisy-count building block ("stage 1" of both
//!   algorithms): integer noise calibrated to a sensitivity and a budget.
//! * [`tail`] — sub-Gaussian tail arithmetic, the Theorem 3.2 error
//!   expression `λ(ρ, T, k, β)`, and the padding rule `npad`.
//!
//! # Example
//!
//! ```
//! use longsynth_dp::budget::Rho;
//! use longsynth_dp::mechanisms::NoiseDistribution;
//! use longsynth_dp::rng::rng_from_seed;
//!
//! let rho = Rho::new(0.005).unwrap();
//! // Discrete Gaussian calibrated so that releasing one sensitivity-1 count
//! // satisfies rho-zCDP.
//! let noise = NoiseDistribution::gaussian_for_zcdp(rho, 1.0);
//! let mut rng = rng_from_seed(7);
//! let private_count = 1234 + noise.sample(&mut rng);
//! let _ = private_count;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod bernoulli;
pub mod budget;
pub mod discrete_gaussian;
mod fastcoin;
pub mod fastrange;
pub mod geometric;
pub mod mechanisms;
pub mod rng;
pub mod tail;

pub use budget::Rho;
pub use discrete_gaussian::DiscreteGaussianSampler;
pub use fastrange::RangePool;
pub use geometric::DiscreteLaplaceSampler;
pub use mechanisms::{NoiseDistribution, NoiseSampler};
pub use rng::{rng_from_seed, RngFork};
