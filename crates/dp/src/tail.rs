//! Executable forms of the paper's error bounds and the padding rule.
//!
//! These functions are the "theoretical bound" lines in Figures 3–4 and the
//! reference values for the theory-vs-measured tables in EXPERIMENTS.md.
//! Keeping them in the DP crate (rather than the experiment harness) lets
//! the synthesizers themselves pick `npad` and lets unit tests check the
//! formulas in isolation.
//!
//! Notation (paper §3): horizon `T`, window width `k`, budget ρ,
//! failure probability β, `R = T − k + 1` update steps.

use crate::budget::Rho;

/// Parameters of a fixed-window synthesis run, bundled because every bound
/// below takes the same four values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedWindowParams {
    /// Time horizon `T` (number of reporting periods).
    pub horizon: usize,
    /// Window width `k ∈ {1, …, T}`.
    pub window: usize,
    /// Total zCDP budget ρ for the whole run.
    pub rho: Rho,
}

impl FixedWindowParams {
    /// Validated constructor: requires `1 ≤ k ≤ T` and ρ > 0.
    pub fn new(horizon: usize, window: usize, rho: Rho) -> Result<Self, ParamError> {
        if horizon == 0 {
            return Err(ParamError::ZeroHorizon);
        }
        if window == 0 || window > horizon {
            return Err(ParamError::BadWindow { window, horizon });
        }
        if rho.value() <= 0.0 {
            return Err(ParamError::NonPositiveRho(rho.value()));
        }
        Ok(Self {
            horizon,
            window,
            rho,
        })
    }

    /// Number of update steps `R = T − k + 1`.
    pub fn update_steps(&self) -> usize {
        self.horizon - self.window + 1
    }

    /// Number of histogram bins `2^k`.
    ///
    /// # Panics
    /// Panics if `k ≥ 63` (far beyond any practical window; the paper uses
    /// k = 3).
    pub fn bins(&self) -> usize {
        assert!(self.window < 63, "window width too large for 2^k bins");
        1usize << self.window
    }

    /// Per-bin noise variance of the stage-1 histograms:
    /// `σ² = (T − k + 1) / (2ρ)` (§3.1).
    pub fn per_step_sigma2(&self) -> f64 {
        self.update_steps() as f64 / (2.0 * self.rho.value())
    }
}

/// Errors from bound-parameter validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamError {
    /// `T = 0`.
    ZeroHorizon,
    /// `k = 0` or `k > T`.
    BadWindow {
        /// Offending window width.
        window: usize,
        /// Horizon it was checked against.
        horizon: usize,
    },
    /// ρ ≤ 0 where positive budget is required.
    NonPositiveRho(f64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::ZeroHorizon => write!(f, "time horizon must be at least 1"),
            ParamError::BadWindow { window, horizon } => {
                write!(
                    f,
                    "window width {window} must satisfy 1 <= k <= T = {horizon}"
                )
            }
            ParamError::NonPositiveRho(r) => write!(f, "rho must be positive, got {r}"),
        }
    }
}

impl std::error::Error for ParamError {}

/// The Theorem 3.2 high-probability error bound
/// `λ = (√((T−k+1)/ρ) + 1/√2) · √(ln(2^k (T−k+1) / β))`.
///
/// With probability ≥ 1 − β, *every* synthetic bin count satisfies
/// `|pᵗ_s − (Cᵗ_s + npad)| ≤ λ` simultaneously over all `2^k (T−k+1)`
/// (bin, step) pairs.
pub fn theorem_3_2_lambda(params: &FixedWindowParams, beta: f64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0, "beta must lie in (0,1)");
    let r = params.update_steps() as f64;
    let bins = params.bins() as f64;
    let log_term = (bins * r / beta).ln();
    ((r / params.rho.value()).sqrt() + std::f64::consts::FRAC_1_SQRT_2) * log_term.sqrt()
}

/// The padding rule: Theorem 3.2 states the algorithm succeeds whenever
/// `npad ≥ λ`, so the recommended padding is `⌈λ⌉`.
pub fn recommended_npad(params: &FixedWindowParams, beta: f64) -> u64 {
    theorem_3_2_lambda(params, beta).ceil() as u64
}

/// The simpler §3.1 padding heuristic
/// `npad = √((T−k+1)/ρ · ln(2^k (T−k+1) / β))` (pre-Theorem-3.2 display).
///
/// Slightly smaller than [`recommended_npad`]; exposed for the
/// `ablation_padding` bench, which compares failure rates under both rules.
pub fn heuristic_npad(params: &FixedWindowParams, beta: f64) -> u64 {
    assert!(beta > 0.0 && beta < 1.0);
    let r = params.update_steps() as f64;
    let bins = params.bins() as f64;
    (r / params.rho.value() * (bins * r / beta).ln())
        .sqrt()
        .ceil() as u64
}

/// Corollary 3.3's *debiased* maximum relative error bound: after an analyst
/// subtracts `npad` from each bin count and divides by the true `n`,
/// `max_{s,t} |(pᵗ_s − npad) − Cᵗ_s| / n ≤ λ / n`.
pub fn corollary_3_3_debiased_bound(params: &FixedWindowParams, beta: f64, n: usize) -> f64 {
    assert!(n > 0);
    theorem_3_2_lambda(params, beta) / n as f64
}

/// Tree-counter error bound for one counter over a length-`len` stream with
/// budget ρ_b and `L = max(⌈log₂ len⌉, 1)` levels (Theorem A.2 /
/// Corollary B.1's per-counter term):
/// `|S̃ᵗ − Sᵗ| ≤ L · √(L/ρ_b · ln(1/β))` for all `t` simultaneously.
pub fn tree_counter_bound(stream_len: usize, rho_b: Rho, beta: f64) -> f64 {
    assert!(stream_len >= 1);
    assert!(beta > 0.0 && beta < 1.0);
    assert!(rho_b.value() > 0.0);
    let levels = (stream_len as f64).log2().ceil().max(1.0);
    levels * (levels / rho_b.value() * (1.0 / beta).ln()).sqrt()
}

/// Corollary B.1: Algorithm 2 with the weighted budget split is
/// `(α*, Tβ)`-accurate with
/// `α* = (1/n) · √( Σ_b max(⌈log₂(T−b+1)⌉,1)³ / ρ · ln(1/β) )`.
pub fn corollary_b1_alpha(horizon: usize, rho: Rho, beta: f64, n: usize) -> f64 {
    assert!(horizon >= 1 && n > 0);
    assert!(beta > 0.0 && beta < 1.0);
    let weight_sum: f64 = (1..=horizon)
        .map(|b| {
            let len = (horizon - b + 1) as f64;
            len.log2().ceil().max(1.0).powi(3)
        })
        .sum();
    (weight_sum / rho.value() * (1.0 / beta).ln()).sqrt() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_params() -> FixedWindowParams {
        // The SIPP experiment: T = 12, k = 3, ρ = 0.005.
        FixedWindowParams::new(12, 3, Rho::new(0.005).unwrap()).unwrap()
    }

    #[test]
    fn validation_rejects_bad_params() {
        let rho = Rho::new(0.005).unwrap();
        assert_eq!(
            FixedWindowParams::new(0, 1, rho),
            Err(ParamError::ZeroHorizon)
        );
        assert!(matches!(
            FixedWindowParams::new(12, 0, rho),
            Err(ParamError::BadWindow { .. })
        ));
        assert!(matches!(
            FixedWindowParams::new(12, 13, rho),
            Err(ParamError::BadWindow { .. })
        ));
        assert!(matches!(
            FixedWindowParams::new(12, 3, Rho::new(0.0).unwrap()),
            Err(ParamError::NonPositiveRho(_))
        ));
    }

    #[test]
    fn derived_quantities() {
        let p = paper_params();
        assert_eq!(p.update_steps(), 10);
        assert_eq!(p.bins(), 8);
        // σ² = 10 / (2 · 0.005) = 1000.
        assert!((p.per_step_sigma2() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn lambda_matches_hand_computation() {
        let p = paper_params();
        let beta = 0.05;
        // λ = (√(10/0.005) + 1/√2) · √(ln(8·10/0.05))
        let expect =
            ((10.0f64 / 0.005).sqrt() + 1.0 / 2.0f64.sqrt()) * (8.0f64 * 10.0 / 0.05).ln().sqrt();
        let got = theorem_3_2_lambda(&p, beta);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
        // Sanity: ~ (44.72 + 0.707)·√7.38 ≈ 123.4
        assert!((got - 123.4).abs() < 1.0, "unexpected magnitude {got}");
    }

    #[test]
    fn npad_rules_ordered() {
        let p = paper_params();
        for &beta in &[0.01, 0.05, 0.2] {
            let rec = recommended_npad(&p, beta);
            let heur = heuristic_npad(&p, beta);
            // The theorem rule adds the 1/√2 rounding-noise term, so it is
            // never smaller.
            assert!(rec >= heur, "beta={beta}: {rec} < {heur}");
            // And both shrink as beta grows.
        }
        assert!(recommended_npad(&p, 0.01) > recommended_npad(&p, 0.2));
    }

    #[test]
    fn debiased_bound_scales_inversely_with_n() {
        let p = paper_params();
        let b1 = corollary_3_3_debiased_bound(&p, 0.05, 10_000);
        let b2 = corollary_3_3_debiased_bound(&p, 0.05, 20_000);
        assert!((b1 / b2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_monotone_in_parameters() {
        let rho = Rho::new(0.005).unwrap();
        let base = FixedWindowParams::new(12, 3, rho).unwrap();
        let longer = FixedWindowParams::new(24, 3, rho).unwrap();
        let richer = FixedWindowParams::new(12, 3, Rho::new(0.05).unwrap()).unwrap();
        let beta = 0.05;
        assert!(theorem_3_2_lambda(&longer, beta) > theorem_3_2_lambda(&base, beta));
        assert!(theorem_3_2_lambda(&richer, beta) < theorem_3_2_lambda(&base, beta));
        // Widening k at fixed T *reduces* λ slightly: the √((T−k+1)/ρ) factor
        // dominates the extra k·ln 2 inside the log. Check that direction too
        // so the formula's shape is pinned down.
        let wider = FixedWindowParams::new(12, 5, rho).unwrap();
        assert!(theorem_3_2_lambda(&wider, beta) < theorem_3_2_lambda(&base, beta));
    }

    #[test]
    fn tree_counter_bound_magnitude() {
        // T = 12 stream, full budget 0.005, beta = 0.05:
        // L = 4, bound = 4·√(4/0.005·ln 20) ≈ 4·√2396 ≈ 195.8
        let b = tree_counter_bound(12, Rho::new(0.005).unwrap(), 0.05);
        assert!((b - 195.8).abs() < 1.0, "bound {b}");
        // Length-1 stream: L = 1.
        let b1 = tree_counter_bound(1, Rho::new(0.005).unwrap(), 0.05);
        assert!(b1 < b);
    }

    #[test]
    fn corollary_b1_alpha_magnitude() {
        // T = 12: weights are ⌈log₂(12..1)⌉³ clamped at 1:
        // lengths 12..=1 → levels 4,4,4,4,4(len≥9?)… compute directly.
        let alpha = corollary_b1_alpha(12, Rho::new(0.005).unwrap(), 0.05, 23_374);
        assert!(alpha > 0.0 && alpha < 1.0);
        // Doubling n halves alpha.
        let alpha2 = corollary_b1_alpha(12, Rho::new(0.005).unwrap(), 0.05, 2 * 23_374);
        assert!((alpha / alpha2 - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn lambda_rejects_bad_beta() {
        theorem_3_2_lambda(&paper_params(), 1.5);
    }
}
