//! Exact discrete Gaussian sampling and facts about `N_Z(0, σ²)`.
//!
//! The discrete Gaussian with scale σ (Definition 2.2 of the paper) is
//! supported on the integers with `Pr[X = x] ∝ exp(-x²/(2σ²))`. Both of the
//! paper's algorithms add this noise — Algorithm 1 to histogram bins,
//! Algorithm 2/3 to tree-counter nodes — because zCDP composes tightly over
//! Gaussian noise (Theorem 2.1) and integer noise keeps the downstream
//! consistency arithmetic exact.
//!
//! Sampling follows Canonne–Kamath–Steinke (NeurIPS 2020, Algorithm 3):
//! rejection from a discrete Laplace proposal with integer scale
//! `t = ⌊σ⌋ + 1`, accepting with probability
//! `exp(-(|Y| - σ²/t)² / (2σ²))`. The acceptance rate is bounded below by a
//! constant (≈ 0.64 for large σ), so sampling is O(1) expected time.

use crate::bernoulli::sample_bernoulli_exp_neg;
use crate::geometric::sample_discrete_laplace_int;
use rand::Rng;

/// Sample from the discrete Gaussian `N_Z(0, σ²)`.
///
/// ```
/// use longsynth_dp::discrete_gaussian::sample_discrete_gaussian;
/// use longsynth_dp::rng::rng_from_seed;
///
/// let mut rng = rng_from_seed(1);
/// let draws: Vec<i64> = (0..1000).map(|_| sample_discrete_gaussian(&mut rng, 4.0)).collect();
/// let mean = draws.iter().sum::<i64>() as f64 / 1000.0;
/// assert!(mean.abs() < 0.5); // zero-mean, σ = 2
/// ```
///
/// # Panics
/// Panics if `sigma2` is not finite and strictly positive.
pub fn sample_discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma2: f64) -> i64 {
    assert!(
        sigma2.is_finite() && sigma2 > 0.0,
        "discrete Gaussian variance must be positive and finite, got {sigma2}"
    );
    let sigma = sigma2.sqrt();
    let t = sigma.floor() as u64 + 1;
    let t_f = t as f64;
    loop {
        let y = sample_discrete_laplace_int(rng, t);
        let y_abs = y.unsigned_abs() as f64;
        let diff = y_abs - sigma2 / t_f;
        let gamma = diff * diff / (2.0 * sigma2);
        if sample_bernoulli_exp_neg(rng, gamma) {
            return y;
        }
    }
}

/// Fill `out` with independent `N_Z(0, σ²)` draws.
pub fn sample_discrete_gaussian_vec<R: Rng + ?Sized>(rng: &mut R, sigma2: f64, out: &mut [i64]) {
    for slot in out.iter_mut() {
        *slot = sample_discrete_gaussian(rng, sigma2);
    }
}

/// An upper bound on the variance of `N_Z(0, σ²)`.
///
/// CKS 2020 (Corollary 9) show `Var[N_Z(0, σ²)] ≤ σ²`, which is the fact
/// the paper's accuracy proofs use ("The variance of N_Z(0,σ²) is at most
/// σ²").
pub fn variance_upper_bound(sigma2: f64) -> f64 {
    sigma2
}

/// Sub-Gaussian tail bound: `Pr[|X| ≥ λ] ≤ 2·exp(-λ²/(2σ²))`.
///
/// The discrete Gaussian is σ-sub-Gaussian (CKS 2020, Proposition 22 /
/// the paper's §3.1 padding analysis uses exactly this form).
pub fn tail_probability(sigma2: f64, lambda: f64) -> f64 {
    assert!(sigma2 > 0.0 && lambda >= 0.0);
    (2.0 * (-lambda * lambda / (2.0 * sigma2)).exp()).min(1.0)
}

/// The smallest λ with `2·exp(-λ²/(2σ²)) ≤ β`, i.e. the deviation that a
/// single draw exceeds with probability at most β.
pub fn tail_quantile(sigma2: f64, beta: f64) -> f64 {
    assert!(sigma2 > 0.0, "variance must be positive");
    assert!((0.0..1.0).contains(&beta) && beta > 0.0, "beta in (0,1)");
    (2.0 * sigma2 * (2.0 / beta).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn sample_moments(sigma2: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = rng_from_seed(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_discrete_gaussian(&mut rng, sigma2) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn moments_match_theory_across_scales() {
        // For σ² ≳ 1 the discrete Gaussian variance is within ~1e-9 of σ²,
        // so an empirical check against σ² with sampling slack is valid.
        for (seed, sigma2) in [(11u64, 0.5), (12, 1.0), (13, 4.0), (14, 25.0), (15, 400.0)] {
            let n = 60_000;
            let (mean, var) = sample_moments(sigma2, n, seed);
            let sd = sigma2.sqrt();
            // Mean: std-err = σ/√n; allow 5 sigma.
            assert!(
                mean.abs() < 5.0 * sd / (n as f64).sqrt() + 0.01,
                "sigma2={sigma2}: mean {mean}"
            );
            // Variance of the empirical variance ≈ 2σ⁴/n; allow ~6%.
            let expected = if sigma2 >= 1.0 {
                sigma2
            } else {
                // Small σ: discrete variance is strictly below σ²; just
                // check the upper bound.
                assert!(var <= sigma2 * 1.05, "sigma2={sigma2}: var {var}");
                continue;
            };
            assert!(
                (var - expected).abs() / expected < 0.06,
                "sigma2={sigma2}: var {var} vs {expected}"
            );
        }
    }

    #[test]
    fn symmetric_sign() {
        let mut rng = rng_from_seed(20);
        let (mut pos, mut neg) = (0u32, 0u32);
        for _ in 0..100_000 {
            match sample_discrete_gaussian(&mut rng, 9.0).cmp(&0) {
                std::cmp::Ordering::Greater => pos += 1,
                std::cmp::Ordering::Less => neg += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        let frac = f64::from(pos) / f64::from(pos + neg);
        assert!((frac - 0.5).abs() < 0.01, "sign fraction {frac}");
    }

    #[test]
    fn empirical_tail_within_bound() {
        let sigma2 = 16.0;
        let lambda = tail_quantile(sigma2, 0.01);
        let mut rng = rng_from_seed(21);
        let n = 100_000;
        let exceed = (0..n)
            .filter(|_| sample_discrete_gaussian(&mut rng, sigma2).unsigned_abs() as f64 >= lambda)
            .count();
        // Bound says ≤ 1%; empirical should respect it (with slack for
        // sampling error on a ~1% event).
        assert!(
            (exceed as f64) / (n as f64) < 0.013,
            "tail rate {} above bound",
            exceed as f64 / n as f64
        );
    }

    #[test]
    fn tail_quantile_inverts_probability() {
        for &beta in &[0.5, 0.1, 1e-3, 1e-9] {
            let lambda = tail_quantile(3.0, beta);
            let p = tail_probability(3.0, lambda);
            assert!((p - beta).abs() / beta < 1e-9, "beta={beta} p={p}");
        }
    }

    #[test]
    fn integer_support_is_obvious_but_draws_vary() {
        let mut rng = rng_from_seed(22);
        let draws: Vec<i64> = (0..100)
            .map(|_| sample_discrete_gaussian(&mut rng, 100.0))
            .collect();
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() > 10, "σ=10 should give many distinct values");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_variance_panics() {
        let mut rng = rng_from_seed(23);
        sample_discrete_gaussian(&mut rng, 0.0);
    }

    #[test]
    fn vec_fill_matches_sequential() {
        let mut rng1 = rng_from_seed(24);
        let mut rng2 = rng_from_seed(24);
        let mut buf = [0i64; 32];
        sample_discrete_gaussian_vec(&mut rng1, 2.0, &mut buf);
        let seq: Vec<i64> = (0..32)
            .map(|_| sample_discrete_gaussian(&mut rng2, 2.0))
            .collect();
        assert_eq!(buf.to_vec(), seq);
    }
}
