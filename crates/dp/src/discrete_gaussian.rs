//! Exact discrete Gaussian sampling and facts about `N_Z(0, σ²)`.
//!
//! The discrete Gaussian with scale σ (Definition 2.2 of the paper) is
//! supported on the integers with `Pr[X = x] ∝ exp(-x²/(2σ²))`. Both of the
//! paper's algorithms add this noise — Algorithm 1 to histogram bins,
//! Algorithm 2/3 to tree-counter nodes — because zCDP composes tightly over
//! Gaussian noise (Theorem 2.1) and integer noise keeps the downstream
//! consistency arithmetic exact.
//!
//! Sampling follows Canonne–Kamath–Steinke (NeurIPS 2020, Algorithm 3):
//! rejection from a discrete Laplace proposal with integer scale
//! `t = ⌊σ⌋ + 1`, accepting with probability
//! `exp(-(|Y| - σ²/t)² / (2σ²))`. The acceptance rate is bounded below by a
//! constant (≈ 0.64 for large σ), so sampling is O(1) expected time.

use crate::bernoulli::sample_bernoulli_exp_neg;
use crate::fastcoin::{bernoulli_exp_neg_pool, laplace_magnitude_pool, uniform_bits, BitPool};
use crate::geometric::sample_discrete_laplace_int;
use rand::{Rng, RngCore};

/// A reusable `N_Z(0, σ²)` sampler with the per-σ² constants precomputed.
///
/// [`sample_discrete_gaussian`] re-derives `t = ⌊σ⌋ + 1`, `σ²/t`, and `2σ²`
/// on every call; when a synthesizer noises k bins per round for T rounds at
/// the same variance, that is k·T cold starts. Constructing a sampler once
/// hoists the derivation, and the engine's per-round noising becomes one
/// sampler reuse.
///
/// Two draw paths, with different stream contracts:
///
/// * [`sample`](Self::sample) is **bit-stream-identical** to
///   [`sample_discrete_gaussian`]: the same RNG words are consumed and the
///   same value returned, so replacing a scalar call site with a cached
///   sampler never changes a seeded output.
/// * [`fill`](Self::fill) draws from **exactly the same distribution** but
///   through the pooled-bit path of the internal `fastcoin` module, consuming roughly
///   an order of magnitude fewer RNG words per draw (one shared
///   `BitPool` amortizes word generation across the whole batch). Use it
///   for bulk noising where no historical stream is pinned; it is *not*
///   stream-interchangeable with `sample`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteGaussianSampler {
    sigma2: f64,
    /// Discrete-Laplace proposal denominator `t = ⌊σ⌋ + 1`.
    t: u64,
    /// Chunk width for the pooled uniform over `[0, t)`.
    t_bits: u32,
    t_f: f64,
    /// `σ²/t`, the center of the acceptance kernel.
    offset: f64,
    /// `2σ²`, the acceptance kernel denominator.
    two_sigma2: f64,
}

impl DiscreteGaussianSampler {
    /// Precompute the sampling constants for variance `sigma2`.
    ///
    /// # Panics
    /// Panics if `sigma2` is not finite and strictly positive.
    pub fn new(sigma2: f64) -> Self {
        assert!(
            sigma2.is_finite() && sigma2 > 0.0,
            "discrete Gaussian variance must be positive and finite, got {sigma2}"
        );
        let sigma = sigma2.sqrt();
        let t = sigma.floor() as u64 + 1;
        let t_f = t as f64;
        DiscreteGaussianSampler {
            sigma2,
            t,
            t_bits: uniform_bits(t),
            t_f,
            offset: sigma2 / t_f,
            two_sigma2: 2.0 * sigma2,
        }
    }

    /// The variance σ² this sampler was built for.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Draw one value, bit-stream-identical to
    /// [`sample_discrete_gaussian`] at the same σ².
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        loop {
            let y = sample_discrete_laplace_int(rng, self.t);
            let y_abs = y.unsigned_abs() as f64;
            let diff = y_abs - self.offset;
            let gamma = diff * diff / self.two_sigma2;
            if sample_bernoulli_exp_neg(rng, gamma) {
                return y;
            }
        }
    }

    /// Fill `out` with independent draws via the pooled fast path.
    ///
    /// Identical distribution to [`sample`](Self::sample), different RNG
    /// word consumption (see the type-level docs). One `BitPool` is
    /// shared across the whole batch, so per-draw entropy overhead
    /// amortizes toward the information-theoretic floor.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [i64]) {
        let mut pool = BitPool::new();
        for slot in out.iter_mut() {
            *slot = self.sample_pooled(rng, &mut pool);
        }
    }

    /// One draw through the pooled-coin machinery: the CKS rejection loop
    /// with the internal `fastcoin` module primitives replacing `gen_range`/`gen_bool`.
    #[inline]
    fn sample_pooled<R: RngCore + ?Sized>(&self, rng: &mut R, pool: &mut BitPool) -> i64 {
        loop {
            let y = laplace_int_pooled(rng, pool, self.t, self.t_bits, self.t_f);
            let y_abs = y.unsigned_abs() as f64;
            let diff = y_abs - self.offset;
            let gamma = diff * diff / self.two_sigma2;
            if bernoulli_exp_neg_pool(rng, pool, gamma) {
                return y;
            }
        }
    }
}

/// The two-sided discrete-Laplace proposal (CKS Algorithm 2, `s = 1`) over
/// the pooled primitives — same distribution as
/// [`sample_discrete_laplace_int`], lean word consumption.
#[inline]
fn laplace_int_pooled<R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &mut BitPool,
    t: u64,
    t_bits: u32,
    t_f: f64,
) -> i64 {
    loop {
        let magnitude = laplace_magnitude_pool(rng, pool, t, t_bits, t_f);
        let negative = pool.take(rng, 1) == 1;
        if negative && magnitude == 0 {
            continue;
        }
        let magnitude = i64::try_from(magnitude).expect("discrete Laplace magnitude overflow");
        return if negative { -magnitude } else { magnitude };
    }
}

/// Sample from the discrete Gaussian `N_Z(0, σ²)`.
///
/// One-shot form of [`DiscreteGaussianSampler`]: repeated draws at the same
/// σ² should construct a sampler once instead.
///
/// ```
/// use longsynth_dp::discrete_gaussian::sample_discrete_gaussian;
/// use longsynth_dp::rng::rng_from_seed;
///
/// let mut rng = rng_from_seed(1);
/// let draws: Vec<i64> = (0..1000).map(|_| sample_discrete_gaussian(&mut rng, 4.0)).collect();
/// let mean = draws.iter().sum::<i64>() as f64 / 1000.0;
/// assert!(mean.abs() < 0.5); // zero-mean, σ = 2
/// ```
///
/// # Panics
/// Panics if `sigma2` is not finite and strictly positive.
pub fn sample_discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma2: f64) -> i64 {
    DiscreteGaussianSampler::new(sigma2).sample(rng)
}

/// Fill `out` with independent `N_Z(0, σ²)` draws, bit-stream-identical to
/// looping [`sample_discrete_gaussian`] but with the per-σ² constants
/// derived once.
pub fn sample_discrete_gaussian_vec<R: Rng + ?Sized>(rng: &mut R, sigma2: f64, out: &mut [i64]) {
    let sampler = DiscreteGaussianSampler::new(sigma2);
    for slot in out.iter_mut() {
        *slot = sampler.sample(rng);
    }
}

/// An upper bound on the variance of `N_Z(0, σ²)`.
///
/// CKS 2020 (Corollary 9) show `Var[N_Z(0, σ²)] ≤ σ²`, which is the fact
/// the paper's accuracy proofs use ("The variance of N_Z(0,σ²) is at most
/// σ²").
pub fn variance_upper_bound(sigma2: f64) -> f64 {
    sigma2
}

/// Sub-Gaussian tail bound: `Pr[|X| ≥ λ] ≤ 2·exp(-λ²/(2σ²))`.
///
/// The discrete Gaussian is σ-sub-Gaussian (CKS 2020, Proposition 22 /
/// the paper's §3.1 padding analysis uses exactly this form).
pub fn tail_probability(sigma2: f64, lambda: f64) -> f64 {
    assert!(sigma2 > 0.0 && lambda >= 0.0);
    (2.0 * (-lambda * lambda / (2.0 * sigma2)).exp()).min(1.0)
}

/// The smallest λ with `2·exp(-λ²/(2σ²)) ≤ β`, i.e. the deviation that a
/// single draw exceeds with probability at most β.
pub fn tail_quantile(sigma2: f64, beta: f64) -> f64 {
    assert!(sigma2 > 0.0, "variance must be positive");
    assert!((0.0..1.0).contains(&beta) && beta > 0.0, "beta in (0,1)");
    (2.0 * sigma2 * (2.0 / beta).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn sample_moments(sigma2: f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = rng_from_seed(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = sample_discrete_gaussian(&mut rng, sigma2) as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn moments_match_theory_across_scales() {
        // For σ² ≳ 1 the discrete Gaussian variance is within ~1e-9 of σ²,
        // so an empirical check against σ² with sampling slack is valid.
        for (seed, sigma2) in [(11u64, 0.5), (12, 1.0), (13, 4.0), (14, 25.0), (15, 400.0)] {
            let n = 60_000;
            let (mean, var) = sample_moments(sigma2, n, seed);
            let sd = sigma2.sqrt();
            // Mean: std-err = σ/√n; allow 5 sigma.
            assert!(
                mean.abs() < 5.0 * sd / (n as f64).sqrt() + 0.01,
                "sigma2={sigma2}: mean {mean}"
            );
            // Variance of the empirical variance ≈ 2σ⁴/n; allow ~6%.
            let expected = if sigma2 >= 1.0 {
                sigma2
            } else {
                // Small σ: discrete variance is strictly below σ²; just
                // check the upper bound.
                assert!(var <= sigma2 * 1.05, "sigma2={sigma2}: var {var}");
                continue;
            };
            assert!(
                (var - expected).abs() / expected < 0.06,
                "sigma2={sigma2}: var {var} vs {expected}"
            );
        }
    }

    #[test]
    fn symmetric_sign() {
        let mut rng = rng_from_seed(20);
        let (mut pos, mut neg) = (0u32, 0u32);
        for _ in 0..100_000 {
            match sample_discrete_gaussian(&mut rng, 9.0).cmp(&0) {
                std::cmp::Ordering::Greater => pos += 1,
                std::cmp::Ordering::Less => neg += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        let frac = f64::from(pos) / f64::from(pos + neg);
        assert!((frac - 0.5).abs() < 0.01, "sign fraction {frac}");
    }

    #[test]
    fn empirical_tail_within_bound() {
        let sigma2 = 16.0;
        let lambda = tail_quantile(sigma2, 0.01);
        let mut rng = rng_from_seed(21);
        let n = 100_000;
        let exceed = (0..n)
            .filter(|_| sample_discrete_gaussian(&mut rng, sigma2).unsigned_abs() as f64 >= lambda)
            .count();
        // Bound says ≤ 1%; empirical should respect it (with slack for
        // sampling error on a ~1% event).
        assert!(
            (exceed as f64) / (n as f64) < 0.013,
            "tail rate {} above bound",
            exceed as f64 / n as f64
        );
    }

    #[test]
    fn tail_quantile_inverts_probability() {
        for &beta in &[0.5, 0.1, 1e-3, 1e-9] {
            let lambda = tail_quantile(3.0, beta);
            let p = tail_probability(3.0, lambda);
            assert!((p - beta).abs() / beta < 1e-9, "beta={beta} p={p}");
        }
    }

    #[test]
    fn integer_support_is_obvious_but_draws_vary() {
        let mut rng = rng_from_seed(22);
        let draws: Vec<i64> = (0..100)
            .map(|_| sample_discrete_gaussian(&mut rng, 100.0))
            .collect();
        let distinct: std::collections::HashSet<_> = draws.iter().collect();
        assert!(distinct.len() > 10, "σ=10 should give many distinct values");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_variance_panics() {
        let mut rng = rng_from_seed(23);
        sample_discrete_gaussian(&mut rng, 0.0);
    }

    #[test]
    fn vec_fill_matches_sequential() {
        let mut rng1 = rng_from_seed(24);
        let mut rng2 = rng_from_seed(24);
        let mut buf = [0i64; 32];
        sample_discrete_gaussian_vec(&mut rng1, 2.0, &mut buf);
        let seq: Vec<i64> = (0..32)
            .map(|_| sample_discrete_gaussian(&mut rng2, 2.0))
            .collect();
        assert_eq!(buf.to_vec(), seq);
    }

    /// The cached sampler must consume the identical RNG stream as the
    /// scalar function: interleaving draws from one shared RNG across many
    /// σ² values must reproduce the scalar sequence exactly.
    #[test]
    fn sampler_is_stream_identical_to_scalar() {
        let sigma2s = [0.3, 1.0, 2.0, 7.5, 100.0, 1e6];
        let samplers: Vec<DiscreteGaussianSampler> = sigma2s
            .iter()
            .map(|&s2| DiscreteGaussianSampler::new(s2))
            .collect();
        let mut rng1 = rng_from_seed(30);
        let mut rng2 = rng_from_seed(30);
        for round in 0..200 {
            let idx = round % sigma2s.len();
            let a = samplers[idx].sample(&mut rng1);
            let b = sample_discrete_gaussian(&mut rng2, sigma2s[idx]);
            assert_eq!(a, b, "round {round}, sigma2 {}", sigma2s[idx]);
        }
    }

    /// Reusing one sampler across many draws matches constructing a fresh
    /// sampler per draw: construction has no sampling side effects.
    #[test]
    fn sampler_reuse_matches_fresh_construction() {
        let mut rng1 = rng_from_seed(31);
        let mut rng2 = rng_from_seed(31);
        let reused = DiscreteGaussianSampler::new(42.0);
        for i in 0..500 {
            let a = reused.sample(&mut rng1);
            let b = DiscreteGaussianSampler::new(42.0).sample(&mut rng2);
            assert_eq!(a, b, "draw {i}");
        }
    }

    #[test]
    fn fill_moments_match_theory_across_scales() {
        for (seed, sigma2) in [(41u64, 1.0), (42, 4.0), (43, 25.0), (44, 400.0)] {
            let sampler = DiscreteGaussianSampler::new(sigma2);
            let mut rng = rng_from_seed(seed);
            let mut buf = vec![0i64; 60_000];
            sampler.fill(&mut rng, &mut buf);
            let n = buf.len() as f64;
            let mean = buf.iter().map(|&x| x as f64).sum::<f64>() / n;
            let var = buf.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
            let sd = sigma2.sqrt();
            assert!(
                mean.abs() < 5.0 * sd / n.sqrt() + 0.01,
                "sigma2={sigma2}: mean {mean}"
            );
            assert!(
                (var - sigma2).abs() / sigma2 < 0.06,
                "sigma2={sigma2}: var {var} vs {sigma2}"
            );
        }
    }

    #[test]
    fn fill_sign_symmetry_and_tail() {
        let sigma2 = 16.0;
        let sampler = DiscreteGaussianSampler::new(sigma2);
        let mut rng = rng_from_seed(45);
        let mut buf = vec![0i64; 100_000];
        sampler.fill(&mut rng, &mut buf);
        let (mut pos, mut neg) = (0u32, 0u32);
        for &x in &buf {
            match x.cmp(&0) {
                std::cmp::Ordering::Greater => pos += 1,
                std::cmp::Ordering::Less => neg += 1,
                std::cmp::Ordering::Equal => {}
            }
        }
        let frac = f64::from(pos) / f64::from(pos + neg);
        assert!((frac - 0.5).abs() < 0.01, "sign fraction {frac}");
        let lambda = tail_quantile(sigma2, 0.01);
        let exceed = buf
            .iter()
            .filter(|x| x.unsigned_abs() as f64 >= lambda)
            .count();
        assert!(
            (exceed as f64) / (buf.len() as f64) < 0.013,
            "tail rate {}",
            exceed as f64 / buf.len() as f64
        );
    }

    /// The fast path and the scalar path agree distributionally: compare
    /// per-value frequencies at a small σ² where every bucket is populated.
    #[test]
    fn fill_distribution_matches_scalar_per_value() {
        let sigma2 = 2.0;
        let n = 200_000usize;
        let sampler = DiscreteGaussianSampler::new(sigma2);
        let mut fast_buf = vec![0i64; n];
        sampler.fill(&mut rng_from_seed(46), &mut fast_buf);
        let mut rng = rng_from_seed(47);
        let slow_buf: Vec<i64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let hist = |buf: &[i64]| {
            let mut h = std::collections::HashMap::new();
            for &x in buf {
                *h.entry(x.clamp(-5, 5)).or_insert(0usize) += 1;
            }
            h
        };
        let hf = hist(&fast_buf);
        let hs = hist(&slow_buf);
        for v in -5i64..=5 {
            let f = *hf.get(&v).unwrap_or(&0) as f64 / n as f64;
            let s = *hs.get(&v).unwrap_or(&0) as f64 / n as f64;
            // Each bucket has mass ≥ ~0.2% at σ² = 2; allow 4-sigma-ish
            // binomial slack on the difference of two empirical rates.
            let slack = 6.0 * ((f + s).max(0.001) / n as f64).sqrt();
            assert!((f - s).abs() < slack, "value {v}: fast {f} vs scalar {s}");
        }
    }
}
