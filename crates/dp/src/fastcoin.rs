//! Entropy-lean exact Bernoulli coins for the batched sampling fast path.
//!
//! The vendored `rand` stand-in spends 64 bits of ChaCha output on every
//! `gen_bool` (a full 53-bit significand comparison) and 128 bits on every
//! `gen_range` (widening to `u128`). Those costs are invisible for a single
//! draw but dominate the discrete-Gaussian rejection sampler, which flips
//! many coins per output: profiling the CKS stack shows RNG word generation
//! and per-coin overhead are the hot path, not the floating-point
//! arithmetic around it.
//!
//! This module provides *exact* replacements built around a [`BitPool`]
//! that buffers one 64-bit RNG word and serves coins a few bits at a time:
//!
//! * [`coin_pool`] — `Bernoulli(p)` as an integer comparison
//!   `x < ⌈p·2⁵³⌉` over a lazily-extended 53-bit uniform `x`. An 8-bit
//!   probe against the top byte of the threshold decides the coin except
//!   on an exact tie (probability `2⁻⁸`), where 45 more bits resolve it —
//!   so the expected cost is ~8 bits instead of a 64-bit word. The
//!   decision is *bit-for-bit* the same function of the 53 uniform bits as
//!   `gen_bool`'s `x·2⁻⁵³ < p` (the threshold `p·2⁵³` is exact:
//!   multiplying by a power of two never rounds), so the distribution is
//!   identical — only the mapping from raw RNG words to draws differs.
//! * [`uniform_pool`] — uniform over `[0, t)` by rejection on exactly
//!   `⌈log₂ t⌉` pooled bits per try, instead of the 128-bit widening path.
//! * [`bernoulli_exp_neg_pool`] — the CKS alternating-series
//!   `Bernoulli(exp(-γ))` sampler over [`coin_pool`], with the `γ = 1`
//!   coin thresholds served from a precomputed table (the geometric tail
//!   of every discrete-Laplace draw flips those same coins).
//! * [`laplace_magnitude_pool`] — the one-sided discrete-Laplace magnitude
//!   `Pr[X = x] ∝ exp(-x/t)` (CKS Algorithm 2), the shared proposal core
//!   of both samplers' fill paths.
//!
//! Everything here is `pub(crate)`: the public API surface is the sampler
//! types in [`crate::discrete_gaussian`] and [`crate::geometric`], whose
//! `fill` paths route through this module. The scalar `sample` paths
//! intentionally do *not*: they stay bit-stream-identical to the historical
//! per-call samplers so that every seeded synthesis output in the workspace
//! is unchanged.

use rand::RngCore;

/// `2⁵³`, the lattice size of the `gen_bool` comparison.
const COIN_ONE: u64 = 1 << 53;

/// `⌈½·2⁵³⌉`: thresholds equal to this are decided by a single fair bit.
const COIN_HALF: u64 = 1 << 52;

/// The acceptance threshold for [`coin_pool`]: `Bernoulli(p)` succeeds iff
/// a uniform 53-bit integer is `< coin_threshold(p)`.
///
/// `p·2⁵³` is computed exactly (power-of-two multiply), and the
/// truncate-and-bump ceiling makes the integer comparison `x < T`
/// equivalent to the real comparison `x·2⁻⁵³ < p` for every lattice point
/// `x`. Written without `f64::ceil` so baseline x86-64 builds (no SSE4.1
/// `roundsd`) stay call-free on the per-coin path.
#[inline]
pub(crate) const fn coin_threshold(p: f64) -> u64 {
    debug_assert!(0.0 <= p && p <= 1.0, "coin probability out of range");
    let m = p * COIN_ONE as f64;
    let t = m as u64;
    t + ((t as f64) < m) as u64
}

/// Thresholds `⌈(1/k)·2⁵³⌉` for the `γ = 1` alternating series, `k = 1..`.
/// Beyond the table the series has probability `< 1/32!` of still running;
/// the sampler falls back to computing the threshold inline.
const EXP1_THRESHOLDS: [u64; 32] = {
    let mut tab = [0u64; 32];
    let mut k = 0usize;
    while k < 32 {
        tab[k] = coin_threshold(1.0 / (k + 1) as f64);
        k += 1;
    }
    tab
};

/// A buffer over the RNG word stream that serves draws a few bits at a
/// time, amortizing one `next_u64` across many coins.
///
/// Constructed once per `fill` call and threaded through every draw in the
/// batch — this is where the "vectorized" fill path gets its entropy
/// economy: a full discrete-Gaussian draw consumes ~2 words through the
/// pool versus ~40 through the `gen_bool`/`gen_range` path.
///
/// A request larger than the bits remaining discards the remainder and
/// refills; every served chunk is therefore a fresh independent uniform,
/// which is all the exactness arguments need.
#[derive(Debug)]
pub(crate) struct BitPool {
    bits: u64,
    avail: u32,
}

impl BitPool {
    /// An empty pool; the first take refills from the RNG.
    pub(crate) fn new() -> Self {
        BitPool { bits: 0, avail: 0 }
    }

    /// Serve `n` uniform bits (`1 ≤ n ≤ 63`) as the low bits of the return
    /// value.
    #[inline]
    pub(crate) fn take<R: RngCore + ?Sized>(&mut self, rng: &mut R, n: u32) -> u64 {
        debug_assert!((1..=63).contains(&n), "BitPool::take supports 1..=63 bits");
        if self.avail < n {
            self.bits = rng.next_u64();
            self.avail = 64;
        }
        let out = self.bits & ((1u64 << n) - 1);
        self.bits >>= n;
        self.avail -= n;
        out
    }
}

/// Flip `Bernoulli(p)` where `threshold = coin_threshold(p)`.
///
/// Certain coins (`p = 0`, `p = 1`) spend no entropy (matching
/// `gen_bool`), `p = ½`-class thresholds spend one bit, and everything
/// else probes 8 bits against the threshold's top byte, resolving the
/// remaining 45 bits only on an exact tie. Exactly equidistributed with
/// `Rng::gen_bool(p)`.
#[inline]
pub(crate) fn coin_pool<R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &mut BitPool,
    threshold: u64,
) -> bool {
    if threshold >= COIN_ONE {
        return true;
    }
    if threshold == 0 {
        return false;
    }
    if threshold == COIN_HALF {
        return pool.take(rng, 1) == 0;
    }
    let t_hi = threshold >> 45;
    let x_hi = pool.take(rng, 8);
    if x_hi != t_hi {
        return x_hi < t_hi;
    }
    let x_lo = pool.take(rng, 45);
    x_lo < (threshold & ((1 << 45) - 1))
}

/// The bit width a [`uniform_pool`] draw over `[0, t)` must request:
/// `⌈log₂ t⌉`, precomputed once per sampler.
#[inline]
pub(crate) fn uniform_bits(t: u64) -> u32 {
    debug_assert!(t >= 1);
    if t <= 1 {
        1
    } else {
        64 - (t - 1).leading_zeros()
    }
}

/// Uniform draw from `[0, t)` by rejection on `bits`-wide pooled chunks
/// (`bits` from [`uniform_bits`]; acceptance rate `> ½` per try).
///
/// `t ≥ 2⁶³` falls back to whole-word rejection, which [`BitPool::take`]
/// cannot serve; no sampler in the workspace gets near that scale.
#[inline]
pub(crate) fn uniform_pool<R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &mut BitPool,
    t: u64,
    bits: u32,
) -> u64 {
    debug_assert!(t >= 1, "uniform_pool requires t >= 1");
    debug_assert!(t == 1 || bits == uniform_bits(t));
    if t == 1 {
        return 0;
    }
    if bits >= 64 {
        loop {
            let x = rng.next_u64();
            if x < t {
                return x;
            }
        }
    }
    loop {
        let x = pool.take(rng, bits);
        if x < t {
            return x;
        }
    }
}

/// `Bernoulli(exp(-γ))` for any `γ ≥ 0` over the pooled [`coin_pool`].
///
/// Same alternating-series construction as
/// [`crate::bernoulli::sample_bernoulli_exp_neg`] — identical coin
/// probabilities `γ/k`, hence the identical output distribution — but each
/// coin costs ~8 bits instead of 64.
pub(crate) fn bernoulli_exp_neg_pool<R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &mut BitPool,
    gamma: f64,
) -> bool {
    debug_assert!(gamma.is_finite() && gamma >= 0.0);
    if gamma < 1.0 {
        return series_le1_pool(rng, pool, gamma);
    }
    if gamma == 1.0 {
        return series_one_pool(rng, pool);
    }
    // exp(-γ) = exp(-1)^⌊γ⌋ · exp(-(γ - ⌊γ⌋)); `as u64` is ⌊γ⌋ for
    // positive finite γ (saturating far beyond any reachable magnitude).
    let whole = gamma as u64;
    for _ in 0..whole {
        if !series_one_pool(rng, pool) {
            return false;
        }
    }
    series_le1_pool(rng, pool, gamma - whole as f64)
}

/// The `γ ∈ [0, 1)` case: flip coins `Bernoulli(γ/k)` for `k = 1, 2, ...`
/// until the first failure; accept iff its index is odd. The `k = 1` coin
/// needs no division.
fn series_le1_pool<R: RngCore + ?Sized>(rng: &mut R, pool: &mut BitPool, gamma: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&gamma));
    if !coin_pool(rng, pool, coin_threshold(gamma)) {
        return true;
    }
    let mut k = 2u64;
    loop {
        if !coin_pool(rng, pool, coin_threshold(gamma / k as f64)) {
            return k & 1 == 1;
        }
        k += 1;
        if k > 1_000_000 {
            unreachable!("Bernoulli(exp(-gamma)) sampler failed to terminate");
        }
    }
}

/// The `γ = 1` series over the precomputed [`EXP1_THRESHOLDS`]. The
/// `k = 1` coin is certain (probability `1/1`) and spends nothing, so the
/// cascade starts at `k = 2`.
fn series_one_pool<R: RngCore + ?Sized>(rng: &mut R, pool: &mut BitPool) -> bool {
    let mut k = 2u64;
    loop {
        let threshold = match EXP1_THRESHOLDS.get(k as usize - 1) {
            Some(&t) => t,
            None => coin_threshold(1.0 / k as f64),
        };
        if !coin_pool(rng, pool, threshold) {
            return k & 1 == 1;
        }
        k += 1;
    }
}

/// One-sided discrete-Laplace magnitude `Pr[X = x] ∝ exp(-x/t)` on
/// `x ≥ 0` (CKS Algorithm 2 core) over the pooled primitives — the
/// proposal both fill paths share. Same distribution as the scalar
/// `gen_range` + `sample_bernoulli_exp_neg` construction.
pub(crate) fn laplace_magnitude_pool<R: RngCore + ?Sized>(
    rng: &mut R,
    pool: &mut BitPool,
    t: u64,
    t_bits: u32,
    t_f: f64,
) -> u64 {
    loop {
        let u = uniform_pool(rng, pool, t, t_bits);
        // Bernoulli(exp(-0)) is certain; skipping it spends nothing either
        // way.
        if u != 0 && !series_le1_pool(rng, pool, u as f64 / t_f) {
            continue;
        }
        let mut v: u64 = 0;
        while series_one_pool(rng, pool) {
            v += 1;
            assert!(v < 4000, "geometric tail overflow");
        }
        return u + t * v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use rand::Rng;

    /// Replays a fixed 53-bit lattice point `x` as both the `gen_bool`
    /// word stream (one `next_u64` holding the top 53 bits) and the pooled
    /// coin word stream (one `next_u64` laid out so the pool's low-bits
    ///-first takes reproduce `x`'s probe order), to compare decisions on
    /// identical uniform bits.
    struct Replay53 {
        word: u64,
        calls: u32,
    }
    impl RngCore for Replay53 {
        fn next_u32(&mut self) -> u32 {
            panic!("these paths draw whole words")
        }
        fn next_u64(&mut self) -> u64 {
            self.calls += 1;
            assert_eq!(self.calls, 1, "exactly one word per coin");
            self.word
        }
    }

    /// The pool word that makes [`coin_pool`] read lattice point `x` for a
    /// given threshold: the fair-bit shortcut reads 1 bit, everything else
    /// reads the top byte first, then the low 45 bits.
    fn pool_word_for(x: u64, threshold: u64) -> u64 {
        if threshold == COIN_HALF {
            // take(1): low bit is the complement comparison x < 2^52 ⇔
            // top lattice bit clear.
            x >> 52
        } else {
            // take(8) serves x's top byte, take(45) the rest.
            ((x & ((1 << 45) - 1)) << 8) | (x >> 45)
        }
    }

    #[test]
    fn coin_pool_decision_matches_gen_bool_on_identical_bits() {
        // Sweep probabilities and lattice points, including exact boundary
        // hits where x·2⁻⁵³ == p.
        let mut outer = rng_from_seed(99);
        let probs = [0.0, 1e-17, 0.25, 0.3, 0.5, 1.0 / 3.0, 0.999_999, 1.0];
        for &p in &probs {
            let threshold = coin_threshold(p);
            for trial in 0..2_000u64 {
                let x = if trial == 0 {
                    threshold.min(COIN_ONE - 1)
                } else if trial == 1 {
                    threshold.saturating_sub(1)
                } else {
                    outer.next_u64() >> 11
                };
                let slow = Replay53 {
                    // gen_bool keeps the top 53 bits of its word.
                    word: x << 11,
                    calls: 0,
                }
                .gen_bool(p);
                let mut pool = BitPool::new();
                let fast = coin_pool(
                    &mut Replay53 {
                        word: pool_word_for(x, threshold),
                        calls: 0,
                    },
                    &mut pool,
                    threshold,
                );
                assert_eq!(slow, fast, "p={p} x={x}");
            }
        }
    }

    #[test]
    fn coin_threshold_is_exact_ceiling() {
        let mut rng = rng_from_seed(4);
        for _ in 0..10_000 {
            let p = rng.gen_range(0.0..1.0);
            let reference = (p * COIN_ONE as f64).ceil() as u64;
            assert_eq!(coin_threshold(p), reference, "p={p}");
        }
        assert_eq!(coin_threshold(0.0), 0);
        assert_eq!(coin_threshold(1.0), COIN_ONE);
        assert_eq!(coin_threshold(0.5), COIN_HALF);
    }

    #[test]
    fn exp1_table_matches_inline_thresholds() {
        for k in 1..=32u64 {
            assert_eq!(
                EXP1_THRESHOLDS[k as usize - 1],
                coin_threshold(1.0 / k as f64),
                "k={k}"
            );
        }
    }

    #[test]
    fn coin_certain_outcomes_spend_no_entropy() {
        struct Panicking;
        impl RngCore for Panicking {
            fn next_u32(&mut self) -> u32 {
                panic!("entropy spent on a certain coin")
            }
            fn next_u64(&mut self) -> u64 {
                panic!("entropy spent on a certain coin")
            }
        }
        let mut pool = BitPool::new();
        assert!(coin_pool(&mut Panicking, &mut pool, coin_threshold(1.0)));
        assert!(!coin_pool(&mut Panicking, &mut pool, coin_threshold(0.0)));
    }

    #[test]
    fn coin_frequency_tracks_probability() {
        let mut rng = rng_from_seed(7);
        let mut pool = BitPool::new();
        for &p in &[0.1, 0.5, 0.9] {
            let t = coin_threshold(p);
            let hits = (0..200_000)
                .filter(|_| coin_pool(&mut rng, &mut pool, t))
                .count();
            let rate = hits as f64 / 200_000.0;
            assert!((rate - p).abs() < 0.005, "p={p} rate={rate}");
        }
    }

    #[test]
    fn uniform_pool_bounds_and_coverage() {
        let mut rng = rng_from_seed(8);
        let mut pool = BitPool::new();
        for &t in &[1u64, 2, 3, 7, 8, 100, (1 << 34) + 5] {
            let bits = uniform_bits(t);
            let mut seen_max = 0;
            for _ in 0..20_000 {
                let x = uniform_pool(&mut rng, &mut pool, t, bits);
                assert!(x < t, "t={t} x={x}");
                seen_max = seen_max.max(x);
            }
            if t > 1 {
                assert!(seen_max >= t / 2, "t={t}: draws look truncated");
            }
        }
    }

    #[test]
    fn uniform_pool_is_unbiased_for_small_t() {
        let mut rng = rng_from_seed(9);
        let mut pool = BitPool::new();
        let t = 5u64;
        let bits = uniform_bits(t);
        let mut counts = [0u32; 5];
        let n = 250_000;
        for _ in 0..n {
            counts[uniform_pool(&mut rng, &mut pool, t, bits) as usize] += 1;
        }
        let expect = n as f64 / t as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.02, "value {v}: count {c} vs {expect}");
        }
    }

    #[test]
    fn uniform_bits_covers_every_shape() {
        assert_eq!(uniform_bits(1), 1);
        assert_eq!(uniform_bits(2), 1);
        assert_eq!(uniform_bits(3), 2);
        assert_eq!(uniform_bits(8), 3);
        assert_eq!(uniform_bits(9), 4);
        assert_eq!(uniform_bits(u64::MAX), 64);
    }

    #[test]
    fn pooled_exp_neg_matches_exp() {
        let mut rng = rng_from_seed(10);
        let mut pool = BitPool::new();
        for &gamma in &[0.1, 0.5, 1.0, 2.3, 4.0] {
            let hits = (0..200_000)
                .filter(|_| bernoulli_exp_neg_pool(&mut rng, &mut pool, gamma))
                .count();
            let rate = hits as f64 / 200_000.0;
            let expect = (-gamma).exp();
            assert!(
                (rate - expect).abs() < 0.006,
                "gamma={gamma}: rate {rate} vs {expect}"
            );
        }
    }

    #[test]
    fn laplace_magnitude_pool_matches_geometric_mass() {
        // t = 3: Pr[X = x] = (1 - e^{-1/3}) e^{-x/3}; check the head.
        let mut rng = rng_from_seed(11);
        let mut pool = BitPool::new();
        let (t, t_bits, t_f) = (3u64, uniform_bits(3), 3.0f64);
        let n = 300_000usize;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            let x = laplace_magnitude_pool(&mut rng, &mut pool, t, t_bits, t_f);
            if (x as usize) < counts.len() {
                counts[x as usize] += 1;
            }
        }
        let norm = 1.0 - (-1.0f64 / 3.0).exp();
        for (x, &c) in counts.iter().enumerate() {
            let expect = norm * (-(x as f64) / 3.0).exp();
            let rate = c as f64 / n as f64;
            assert!(
                (rate - expect).abs() < 0.005,
                "x={x}: rate {rate} vs {expect}"
            );
        }
    }
}
