//! Property-based tests for the DP primitives.
//!
//! These check structural invariants (determinism, budget conservation,
//! bound monotonicity) over randomized parameter ranges. Distributional
//! correctness is covered by the statistical unit tests inside each module.

use longsynth_dp::bernoulli::sample_bernoulli_exp_neg;
use longsynth_dp::budget::Rho;
use longsynth_dp::discrete_gaussian::{sample_discrete_gaussian, tail_probability, tail_quantile};
use longsynth_dp::geometric::sample_discrete_laplace_int;
use longsynth_dp::mechanisms::NoiseDistribution;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_dp::tail::{
    corollary_3_3_debiased_bound, recommended_npad, theorem_3_2_lambda, FixedWindowParams,
};
use proptest::prelude::*;

proptest! {
    /// The same seed replays the same discrete Gaussian stream: the whole
    /// experiment harness's reproducibility rests on this.
    #[test]
    fn gaussian_sampler_is_deterministic(seed in any::<u64>(), sigma2 in 0.1f64..1000.0) {
        let mut a = rng_from_seed(seed);
        let mut b = rng_from_seed(seed);
        for _ in 0..8 {
            prop_assert_eq!(
                sample_discrete_gaussian(&mut a, sigma2),
                sample_discrete_gaussian(&mut b, sigma2)
            );
        }
    }

    /// Forked child streams are independent of the label order in which they
    /// are created.
    #[test]
    fn fork_children_order_independent(master in any::<u64>(), l1 in 0u64..1000, l2 in 0u64..1000) {
        prop_assume!(l1 != l2);
        let fork = RngFork::new(master);
        use rand::Rng;
        let a_then_b = {
            let x: u64 = fork.child(l1).gen();
            let y: u64 = fork.child(l2).gen();
            (x, y)
        };
        let b_then_a = {
            let y: u64 = fork.child(l2).gen();
            let x: u64 = fork.child(l1).gen();
            (x, y)
        };
        prop_assert_eq!(a_then_b, b_then_a);
    }

    /// Bernoulli(exp(-0)) is always true; the sampler never panics on the
    /// full finite non-negative range.
    #[test]
    fn bernoulli_exp_total_on_domain(seed in any::<u64>(), gamma in 0.0f64..50.0) {
        let mut rng = rng_from_seed(seed);
        let _ = sample_bernoulli_exp_neg(&mut rng, gamma);
    }

    /// Discrete Laplace magnitudes are symmetric in distribution: the
    /// sampler never returns "negative zero" paths that bias the sign.
    /// (Structural check: output type is a plain i64 and zero is reachable.)
    #[test]
    fn laplace_int_outputs_bounded_magnitude(seed in any::<u64>(), t in 1u64..50) {
        let mut rng = rng_from_seed(seed);
        for _ in 0..32 {
            let x = sample_discrete_laplace_int(&mut rng, t);
            // 4000·t is the hard loop bound inside the sampler.
            prop_assert!(x.unsigned_abs() < 4001 * t);
        }
    }

    /// Splitting a budget always recomposes to the original (Theorem 2.1
    /// run in reverse), for both uniform and Corollary B.1 splits.
    #[test]
    fn budget_splits_recompose(rho in 1e-6f64..10.0, parts in 1usize..64) {
        let budget = Rho::new(rho).unwrap();
        let uniform = budget.split_uniform(parts).unwrap();
        let sum: f64 = uniform.iter().map(|r| r.value()).sum();
        prop_assert!((sum - rho).abs() <= 1e-9 * rho);

        let b1 = budget.split_corollary_b1(parts).unwrap();
        let sum: f64 = b1.iter().map(|r| r.value()).sum();
        prop_assert!((sum - rho).abs() <= 1e-9 * rho);
        // Cor. B.1 weights are non-increasing in b.
        for w in b1.windows(2) {
            prop_assert!(w[0].value() >= w[1].value() - 1e-12 * rho);
        }
    }

    /// λ (Thm 3.2) is positive, finite, and npad = ⌈λ⌉ dominates it.
    #[test]
    fn lambda_and_npad_are_consistent(
        horizon in 2usize..64,
        window_off in 0usize..8,
        rho in 1e-4f64..1.0,
        beta in 1e-6f64..0.5,
    ) {
        let window = (window_off % horizon).max(1).min(horizon).min(10);
        let params = FixedWindowParams::new(horizon, window, Rho::new(rho).unwrap()).unwrap();
        let lambda = theorem_3_2_lambda(&params, beta);
        prop_assert!(lambda.is_finite() && lambda > 0.0);
        let npad = recommended_npad(&params, beta);
        prop_assert!(npad as f64 >= lambda);
        prop_assert!((npad as f64) < lambda + 1.0);
        // The debiased bound is exactly λ/n.
        let n = 1000;
        let debiased = corollary_3_3_debiased_bound(&params, beta, n);
        prop_assert!((debiased - lambda / n as f64).abs() < 1e-12);
    }

    /// Gaussian tail quantile inverts the tail probability on its domain.
    #[test]
    fn tail_quantile_round_trips(sigma2 in 0.01f64..1e4, beta in 1e-9f64..0.9) {
        let lambda = tail_quantile(sigma2, beta);
        let p = tail_probability(sigma2, lambda);
        prop_assert!((p - beta).abs() <= 1e-9 * beta.max(1e-9));
    }

    /// Noise distributions: variance non-negative, tail quantile decreasing
    /// in beta, sampling total.
    #[test]
    fn noise_distribution_contract(seed in any::<u64>(), sigma2 in 0.1f64..100.0, scale in 0.1f64..100.0) {
        let mut rng = rng_from_seed(seed);
        for dist in [
            NoiseDistribution::DiscreteGaussian { sigma2 },
            NoiseDistribution::DiscreteLaplace { scale },
            NoiseDistribution::None,
        ] {
            prop_assert!(dist.variance() >= 0.0);
            let _ = dist.sample(&mut rng);
            if !dist.is_none() {
                prop_assert!(dist.tail_quantile(0.01) >= dist.tail_quantile(0.1));
            }
        }
    }
}
