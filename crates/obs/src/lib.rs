//! Observability layer for the longsynth serving stack: a lock-light
//! metrics registry, scoped span timers, and a privacy-budget audit
//! ledger — with Prometheus-text and JSONL exporters. Zero external
//! dependencies (std only): the workspace builds offline against vendored
//! stand-ins, so `tracing`/`prometheus` are not available, and nothing
//! here needs them.
//!
//! # Design
//!
//! - **Handles are cheap and shared.** [`Counter`], [`Gauge`], and
//!   [`Histogram`] are `Arc`-backed clones of registry-owned state; the
//!   hot path touches only atomics (relaxed ordering — metrics are
//!   monitoring data, not synchronization). The registry's interior map
//!   is locked only at registration and export time.
//! - **Histograms are fixed-bucket.** Bucket upper bounds are chosen at
//!   registration (see [`LATENCY_MS_BUCKETS`]); observation is a linear
//!   scan over ≤ ~16 bounds plus two atomic adds. Quantiles (p50/p95/p99)
//!   are read out by linear interpolation within the covering bucket —
//!   the standard Prometheus-style estimate, documented as such.
//! - **Spans are drop-guards.** [`Histogram::start_span`] returns a
//!   [`SpanTimer`] that records elapsed milliseconds when dropped, so a
//!   scope is timed by binding the guard.
//! - **The audit ledger is append-only.** Every zCDP budget spend is
//!   recorded as a [`BudgetEvent`] carrying the round, the level
//!   (per-cohort vs population), the cohort id, the marginal ρ, and the
//!   cumulative spend after the event. [`BudgetLedger::replay`] folds the
//!   log back into per-cohort and population totals using *exactly* the
//!   same composition the engine's `EngineBudget` uses (parallel max over
//!   cohorts, sequential add of the population level), so replay equality
//!   is bit-exact, not approximate.
//!
//! Everything is construction-time optional for the instrumented crates:
//! an engine, pool, or query service without an attached registry runs
//! the identical uninstrumented code path.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod export;
mod ingest;
mod ledger;
mod metrics;

pub use export::{parse_prometheus_text, PromParseError, PromSample};
pub use ingest::IngestMetrics;
pub use ledger::{BudgetEvent, BudgetLedger, BudgetLevel, LedgerReplay};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, SpanTimer, LATENCY_MS_BUCKETS,
};
