//! Metrics registry: atomic counters, gauges, fixed-bucket latency
//! histograms with quantile readout, and drop-guard span timers.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::export;

/// Default latency bucket upper bounds, in **milliseconds**. Spans the
/// sub-10µs cache-hit regime through multi-second full-dataset rounds;
/// the implicit final bucket is `+Inf`.
pub const LATENCY_MS_BUCKETS: [f64; 15] = [
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
];

/// A monotonically increasing counter (resettable only for cache-clear
/// style lifecycle events, mirroring the pre-registry `AtomicU64`s it
/// replaces).
#[derive(Clone, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Self {
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero. Exists so promoted cache counters keep their
    /// historical `clear_cache` semantics; ordinary metrics never call it.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A gauge: a signed value that can move both ways (queue depths,
/// snapshot sizes).
#[derive(Clone, Debug)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    fn new() -> Self {
        Self {
            value: Arc::new(AtomicI64::new(0)),
        }
    }

    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Finite bucket upper bounds, ascending; the implicit last bucket
    /// is `+Inf`.
    bounds: Vec<f64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values as `f64` bits, maintained with a CAS loop
    /// (observation rates here are ~per-round, far below contention).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (latencies in
/// milliseconds by convention — encode the unit in the metric name).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bucket bounds must be strictly ascending"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a [`Duration`] in milliseconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64() * 1e3);
    }

    /// Start a scoped span; elapsed milliseconds are recorded when the
    /// returned guard drops.
    pub fn start_span(&self) -> SpanTimer {
        SpanTimer {
            histogram: self.clone(),
            started: Instant::now(),
        }
    }

    /// Consistent-enough point-in-time readout (counts are relaxed
    /// atomics; exact consistency is not needed for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        let buckets: Vec<u64> = inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets,
            count: inner.count.load(Ordering::Relaxed),
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Drop-guard returned by [`Histogram::start_span`]; records the elapsed
/// wall time into the histogram when dropped.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    started: Instant,
}

impl SpanTimer {
    /// Stop the span now (equivalent to dropping it).
    pub fn stop(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.started.elapsed());
    }
}

/// Point-in-time readout of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Finite bucket upper bounds (the final `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Prometheus-style quantile estimate: find the bucket containing the
    /// `q`-quantile rank and interpolate linearly within it. Returns 0.0
    /// for an empty histogram; the overflow bucket reports its lower
    /// bound (the largest finite bound).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
            if seen + n >= rank {
                if i == self.bounds.len() {
                    return lo;
                }
                let hi = self.bounds[i];
                if n == 0 {
                    return hi;
                }
                let into = (rank - seen) as f64 / n as f64;
                return lo + (hi - lo) * into;
            }
            seen += n;
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared, thread-safe registry of named metrics. Cloning shares the
/// underlying state; handles returned by the `counter`/`gauge`/
/// `histogram` accessors stay live after the registry is dropped.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
        "metric names must be non-empty [a-z0-9_]: {name:?}"
    );
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(Counter::new)
            .clone()
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(Gauge::new)
            .clone()
    }

    /// Get or register the histogram `name` with the given finite bucket
    /// upper bounds (ignored if the name already exists).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        check_name(name);
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// Get or register the histogram `name` with the default latency
    /// buckets ([`LATENCY_MS_BUCKETS`]).
    pub fn latency_histogram(&self, name: &str) -> Histogram {
        self.histogram(name, &LATENCY_MS_BUCKETS)
    }

    /// Sorted `(name, value)` readout of all counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect()
    }

    /// Sorted `(name, value)` readout of all gauges.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect()
    }

    /// Sorted `(name, snapshot)` readout of all histograms.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        inner
            .histograms
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect()
    }

    /// Render every metric in the Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        export::prometheus_text(self)
    }

    /// Write every metric as one JSON object per line. Event schema is
    /// documented in `docs/OBSERVABILITY.md`.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        export::write_metrics_jsonl(self, w)
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name returns the same underlying counter.
        assert_eq!(reg.counter("requests_total").get(), 5);
        c.reset();
        assert_eq!(reg.counter("requests_total").get(), 0);

        let g = reg.gauge("queue_depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-7);
        assert_eq!(reg.gauge("queue_depth").get(), -7);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_ms", &[1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets, vec![2, 1, 1, 1]);
        assert!((snap.sum - 556.2).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q_ms", &[10.0, 20.0, 40.0]);
        // 100 observations uniformly in the first bucket.
        for _ in 0..100 {
            h.observe(5.0);
        }
        let snap = h.snapshot();
        // Every rank falls in [0, 10]; p99 interpolates near the top.
        assert!(snap.p50() > 0.0 && snap.p50() <= 10.0);
        assert!(snap.p99() <= 10.0);
        assert_eq!(snap.quantile(1.0), 10.0);

        // Overflow bucket reports the largest finite bound.
        let h2 = reg.histogram("q2_ms", &[10.0, 20.0, 40.0]);
        h2.observe(1e9);
        assert_eq!(h2.snapshot().p50(), 40.0);

        // Empty histogram reports zero.
        let h3 = reg.histogram("q3_ms", &[10.0]);
        assert_eq!(h3.snapshot().p95(), 0.0);
    }

    #[test]
    fn span_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        let h = reg.latency_histogram("span_ms");
        {
            let _span = h.start_span();
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 1.0, "span recorded {} ms", snap.sum);
    }

    #[test]
    fn handles_are_shared_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared_total");
        let h = reg.histogram("shared_ms", &[1.0]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.5);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert!((snap.sum - 2000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "metric names")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().counter("Bad-Name");
    }
}
