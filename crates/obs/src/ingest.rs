//! Ingest-tier instrumentation: one pre-registered handle bundle for the
//! event-time ingestion pipeline (`crates/ingest`).
//!
//! The ingest crate depends on `longsynth-obs` (not the other way
//! around), so the metric *names* and handle wiring live here next to the
//! registry while the update sites live in the queue/binner hot paths.
//! Everything follows the workspace's construction-time-optional
//! convention: an ingest tier without an attached [`IngestMetrics`] runs
//! the identical uninstrumented code path.
//!
//! Metric inventory (all exported through the usual JSONL / Prometheus
//! paths; see `docs/OBSERVABILITY.md`):
//!
//! | name | kind | meaning |
//! |---|---|---|
//! | `ingest_events_total` | counter | events accepted by the binner (late events included) |
//! | `ingest_late_events_total` | counter | events that missed ≥ 1 already-sealed window |
//! | `ingest_rounds_sealed_total` | counter | windows sealed into per-round inputs |
//! | `ingest_queue_depth` | gauge | current bounded-queue depth (events) |
//! | `ingest_queue_peak_depth` | gauge | high-water mark of the queue depth — the backpressure witness |
//! | `ingest_watermark_lag_ms` | gauge | max event time seen − low watermark, at last seal sweep |
//! | `ingest_seal_ms` | histogram | wall time from a window's first absorbed event to its seal |

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Cheap, cloneable bundle of the ingest tier's metric handles.
///
/// Construct once per pipeline with [`IngestMetrics::new`] and hand clones
/// to the queue and the binner; every handle is an `Arc`-backed atomic, so
/// updates from producer threads and the sealing consumer never contend on
/// the registry lock.
#[derive(Clone)]
pub struct IngestMetrics {
    /// Events accepted by the binner, including ones counted late.
    pub events_total: Counter,
    /// Events that arrived after at least one of their covering windows
    /// had already sealed (or before the stream origin `t0`).
    pub late_events_total: Counter,
    /// Windows sealed into per-round synthesizer inputs.
    pub rounds_sealed_total: Counter,
    /// Current depth of the bounded ingest queue.
    pub queue_depth: Gauge,
    /// High-water mark of [`IngestMetrics::queue_depth`]; never exceeds
    /// the configured queue capacity while backpressure holds.
    pub queue_peak_depth: Gauge,
    /// `max event time seen − low watermark` (ms) at the last seal sweep.
    pub watermark_lag_ms: Gauge,
    /// Seal latency: wall milliseconds from a window's first absorbed
    /// event to its seal, on the shared [`crate::LATENCY_MS_BUCKETS`].
    pub seal_ms: Histogram,
}

impl IngestMetrics {
    /// Registers (or re-attaches to) the `ingest_*` family in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        Self {
            events_total: registry.counter("ingest_events_total"),
            late_events_total: registry.counter("ingest_late_events_total"),
            rounds_sealed_total: registry.counter("ingest_rounds_sealed_total"),
            queue_depth: registry.gauge("ingest_queue_depth"),
            queue_peak_depth: registry.gauge("ingest_queue_peak_depth"),
            watermark_lag_ms: registry.gauge("ingest_watermark_lag_ms"),
            seal_ms: registry.latency_histogram("ingest_seal_ms"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_full_ingest_family() {
        let registry = MetricsRegistry::new();
        let m = IngestMetrics::new(&registry);
        m.events_total.add(10);
        m.late_events_total.inc();
        m.rounds_sealed_total.inc();
        m.queue_depth.set(3);
        m.queue_peak_depth.set(7);
        m.watermark_lag_ms.set(1500);
        m.seal_ms.observe(0.2);

        let counters = registry.counters();
        let get = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("ingest_events_total"), 10);
        assert_eq!(get("ingest_late_events_total"), 1);
        assert_eq!(get("ingest_rounds_sealed_total"), 1);

        let gauges = registry.gauges();
        assert!(gauges
            .iter()
            .any(|(n, v)| n == "ingest_queue_peak_depth" && *v == 7));
        assert!(gauges
            .iter()
            .any(|(n, v)| n == "ingest_watermark_lag_ms" && *v == 1500));

        let histograms = registry.histograms();
        let (_, snap) = histograms
            .iter()
            .find(|(n, _)| n == "ingest_seal_ms")
            .unwrap();
        assert_eq!(snap.count, 1);
    }

    #[test]
    fn new_twice_shares_handles() {
        let registry = MetricsRegistry::new();
        let a = IngestMetrics::new(&registry);
        let b = IngestMetrics::new(&registry);
        a.events_total.add(2);
        b.events_total.add(3);
        assert_eq!(a.events_total.get(), 5);
    }
}
