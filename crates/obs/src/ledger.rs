//! Privacy-budget audit ledger: an append-only log of zCDP budget
//! spends, replayable into the exact totals the engine's budget
//! accounting reports.
//!
//! Each [`BudgetEvent`] records one marginal spend — the round it
//! happened in, the release level it funded (per-cohort vs population),
//! the cohort it is attributed to, the marginal ρ, and the cumulative
//! spend of that ledger line *after* the event. Replay takes the last
//! cumulative value per line (immune to floating-point re-summation
//! drift) and composes them the way `EngineBudget` does: parallel
//! composition (max) across disjoint cohorts, sequential composition
//! (add) with the population level. That makes replay-equality checks
//! bit-exact: the ledger is an audit trail of the engine's own numbers,
//! not an independent approximation of them.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::export::json_f64;

/// Which release level a budget spend funded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetLevel {
    /// A per-cohort (shard-level) release: parallel composition across
    /// disjoint cohorts.
    Cohort,
    /// The population-level release (shared-noise policies): sequential
    /// composition with every cohort's own spend.
    Population,
}

impl BudgetLevel {
    /// Stable string form used by the JSONL exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            BudgetLevel::Cohort => "cohort",
            BudgetLevel::Population => "population",
        }
    }
}

/// One budget spend, as appended by the engine after a round commits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetEvent {
    /// Global engine round the spend happened in.
    pub round: usize,
    /// Release level the spend funded.
    pub level: BudgetLevel,
    /// Cohort id for [`BudgetLevel::Cohort`] events, `None` for the
    /// population level.
    pub cohort: Option<usize>,
    /// Marginal ρ spent by this event.
    pub rho: f64,
    /// Cumulative ρ of this ledger line (this cohort, or the population
    /// level) after the event — the engine's own accounting value.
    pub spent_after: f64,
}

/// Append-only, thread-safe budget event log. Cloning shares the log.
#[derive(Clone, Debug, Default)]
pub struct BudgetLedger {
    events: Arc<Mutex<Vec<BudgetEvent>>>,
}

impl BudgetLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event. Panics (debug builds) if the event would move a
    /// ledger line backwards — budgets only ever grow.
    pub fn record(&self, event: BudgetEvent) {
        debug_assert!(event.rho >= 0.0, "budget spends are non-negative");
        let mut events = self.events.lock().expect("budget ledger poisoned");
        events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("budget ledger poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the full event log, in append order.
    pub fn events(&self) -> Vec<BudgetEvent> {
        self.events.lock().expect("budget ledger poisoned").clone()
    }

    /// Fold the log into cumulative per-line totals (last `spent_after`
    /// per cohort / population line).
    pub fn replay(&self) -> LedgerReplay {
        let events = self.events.lock().expect("budget ledger poisoned");
        let mut cohorts: BTreeMap<usize, f64> = BTreeMap::new();
        let mut population = 0.0f64;
        for event in events.iter() {
            match event.level {
                BudgetLevel::Cohort => {
                    let id = event.cohort.expect("cohort-level events carry a cohort id");
                    cohorts.insert(id, event.spent_after);
                }
                BudgetLevel::Population => population = event.spent_after,
            }
        }
        LedgerReplay {
            cohorts,
            population,
        }
    }

    /// Write the event log as one JSON object per line (schema in
    /// `docs/OBSERVABILITY.md`).
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let events = self.events.lock().expect("budget ledger poisoned");
        for e in events.iter() {
            let cohort = match e.cohort {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            };
            writeln!(
                w,
                "{{\"type\":\"budget_event\",\"round\":{},\"level\":\"{}\",\"cohort\":{},\"rho\":{},\"spent_after\":{}}}",
                e.round,
                e.level.as_str(),
                cohort,
                json_f64(e.rho),
                json_f64(e.spent_after),
            )?;
        }
        Ok(())
    }
}

/// Result of [`BudgetLedger::replay`]: cumulative spends per ledger line,
/// composable exactly like `EngineBudget`.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerReplay {
    cohorts: BTreeMap<usize, f64>,
    population: f64,
}

impl LedgerReplay {
    /// Cumulative spend of cohort `id` (0.0 when it never spent).
    pub fn cohort(&self, id: usize) -> f64 {
        self.cohorts.get(&id).copied().unwrap_or(0.0)
    }

    /// Cohort ids that appear in the ledger, ascending.
    pub fn cohort_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.cohorts.keys().copied()
    }

    /// Parallel composition across disjoint cohorts: `max_c spent_c`,
    /// the same fold `EngineBudget::cohort_spent` performs (strictly
    /// greater replaces, 0.0 seed — identical f64 result on the same
    /// inputs).
    pub fn cohort_spent(&self) -> f64 {
        self.cohorts
            .values()
            .fold(0.0f64, |a, &b| if b > a { b } else { a })
    }

    /// Cumulative population-level spend (0.0 without one).
    pub fn population_spent(&self) -> f64 {
        self.population
    }

    /// Total user-level spend: cohort level composed sequentially with
    /// the population level — one f64 add, matching
    /// `EngineBudget::spent`.
    pub fn spent(&self) -> f64 {
        self.cohort_spent() + self.population_spent()
    }

    /// Worst-case lifetime spend of any individual; coincides with
    /// [`spent`](Self::spent) exactly as in `EngineBudget`.
    pub fn max_lifetime_spend(&self) -> f64 {
        self.spent()
    }

    /// The per-individual cap invariant, with the same 1e-9 slack
    /// `EngineBudget::within_cap` applies.
    pub fn within_cap(&self, cap: f64) -> bool {
        self.max_lifetime_spend() <= cap + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: usize, cohort: Option<usize>, rho: f64, spent_after: f64) -> BudgetEvent {
        BudgetEvent {
            round,
            level: if cohort.is_some() {
                BudgetLevel::Cohort
            } else {
                BudgetLevel::Population
            },
            cohort,
            rho,
            spent_after,
        }
    }

    #[test]
    fn replay_takes_last_cumulative_value_per_line() {
        let ledger = BudgetLedger::new();
        ledger.record(event(0, Some(0), 0.001, 0.001));
        ledger.record(event(0, Some(1), 0.002, 0.002));
        ledger.record(event(1, Some(0), 0.001, 0.002));
        ledger.record(event(0, None, 0.004, 0.004));
        ledger.record(event(1, None, 0.004, 0.008));

        let replay = ledger.replay();
        assert_eq!(replay.cohort(0), 0.002);
        assert_eq!(replay.cohort(1), 0.002);
        assert_eq!(replay.cohort(7), 0.0);
        assert_eq!(replay.cohort_spent(), 0.002);
        assert_eq!(replay.population_spent(), 0.008);
        assert_eq!(replay.spent(), 0.002 + 0.008);
        assert_eq!(replay.max_lifetime_spend(), replay.spent());
        assert!(replay.within_cap(0.01));
        assert!(!replay.within_cap(0.009));
    }

    #[test]
    fn empty_ledger_replays_to_zero() {
        let replay = BudgetLedger::new().replay();
        assert_eq!(replay.spent(), 0.0);
        assert!(replay.within_cap(0.0));
    }

    #[test]
    fn jsonl_lines_carry_the_full_schema() {
        let ledger = BudgetLedger::new();
        ledger.record(event(3, Some(2), 0.0005, 0.0015));
        ledger.record(event(3, None, 0.25, 0.75));
        let mut out = Vec::new();
        ledger.write_jsonl(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"budget_event\",\"round\":3,\"level\":\"cohort\",\"cohort\":2,\"rho\":0.0005,\"spent_after\":0.0015}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"budget_event\",\"round\":3,\"level\":\"population\",\"cohort\":null,\"rho\":0.25,\"spent_after\":0.75}"
        );
    }

    #[test]
    fn ledger_clones_share_the_log() {
        let ledger = BudgetLedger::new();
        let shared = ledger.clone();
        shared.record(event(0, Some(0), 0.1, 0.1));
        assert_eq!(ledger.len(), 1);
    }
}
