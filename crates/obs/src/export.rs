//! Exporters: Prometheus text exposition format and a JSONL event
//! stream — plus a small Prometheus-text parser used by the golden
//! format tests (and by anything that wants to scrape our own dump).

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{self, Write};

use crate::metrics::MetricsRegistry;

/// Format a finite f64 as a JSON-safe number literal (Rust's `Display`
/// for f64 never emits exponent notation, so the output is valid JSON).
pub(crate) fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "metric values are finite");
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Render every metric in `registry` in the Prometheus text exposition
/// format: a `# TYPE` line per metric, histogram `_bucket`/`_sum`/
/// `_count` series with `le` labels, cumulative bucket counts.
pub(crate) fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counters() {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauges() {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, snap) in registry.histograms() {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &count) in snap.buckets.iter().enumerate() {
            cumulative += count;
            if i < snap.bounds.len() {
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    snap.bounds[i]
                );
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
        let _ = writeln!(out, "{name}_sum {}", json_f64(snap.sum));
        let _ = writeln!(out, "{name}_count {}", snap.count);
    }
    out
}

/// Write every metric in `registry` as one JSON object per line.
pub(crate) fn write_metrics_jsonl<W: Write>(
    registry: &MetricsRegistry,
    w: &mut W,
) -> io::Result<()> {
    for (name, value) in registry.counters() {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}"
        )?;
    }
    for (name, value) in registry.gauges() {
        writeln!(
            w,
            "{{\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}"
        )?;
    }
    for (name, snap) in registry.histograms() {
        let mut buckets = String::new();
        for (i, &count) in snap.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let le = if i < snap.bounds.len() {
                json_f64(snap.bounds[i])
            } else {
                "\"+Inf\"".to_string()
            };
            let _ = write!(buckets, "{{\"le\":{le},\"count\":{count}}}");
        }
        writeln!(
            w,
            "{{\"type\":\"histogram\",\"name\":\"{name}\",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{buckets}]}}",
            snap.count,
            json_f64(snap.sum),
            json_f64(snap.p50()),
            json_f64(snap.p95()),
            json_f64(snap.p99()),
        )?;
    }
    Ok(())
}

/// One sample line parsed out of a Prometheus text dump.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric (series) name, e.g. `engine_round_ms_bucket`.
    pub name: String,
    /// Raw label block without braces (empty when unlabelled), e.g.
    /// `le="0.5"`.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

/// Why a Prometheus text dump failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub enum PromParseError {
    /// A line matched neither a comment nor `name[{labels}] value`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line.
        text: String,
    },
    /// The same `(name, labels)` series appeared twice.
    Duplicate {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated series.
        series: String,
    },
    /// A sample appeared with no preceding `# TYPE` line declaring its
    /// family.
    UndeclaredType {
        /// 1-based line number.
        line: usize,
        /// The sample's metric name.
        name: String,
    },
}

impl std::fmt::Display for PromParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PromParseError::Malformed { line, text } => {
                write!(f, "line {line}: malformed sample {text:?}")
            }
            PromParseError::Duplicate { line, series } => {
                write!(f, "line {line}: duplicate series {series:?}")
            }
            PromParseError::UndeclaredType { line, name } => {
                write!(f, "line {line}: sample {name:?} has no # TYPE declaration")
            }
        }
    }
}

impl std::error::Error for PromParseError {}

/// Parse (and thereby validate) a Prometheus text dump: every
/// non-comment line must be `name[{labels}] value`, every sample must
/// belong to a family declared by a preceding `# TYPE` line, and no
/// `(name, labels)` series may repeat.
pub fn parse_prometheus_text(text: &str) -> Result<Vec<PromSample>, PromParseError> {
    let mut samples = Vec::new();
    let mut declared: BTreeSet<String> = BTreeSet::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("TYPE") {
                if let Some(name) = parts.next() {
                    declared.insert(name.to_string());
                }
            }
            continue;
        }
        let (series, value_str) =
            trimmed
                .rsplit_once(' ')
                .ok_or_else(|| PromParseError::Malformed {
                    line,
                    text: trimmed.to_string(),
                })?;
        let value = value_str
            .parse::<f64>()
            .map_err(|_| PromParseError::Malformed {
                line,
                text: trimmed.to_string(),
            })?;
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| PromParseError::Malformed {
                        line,
                        text: trimmed.to_string(),
                    })?;
                (name.to_string(), labels.to_string())
            }
            None => (series.to_string(), String::new()),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| declared.contains(*f))
            .map(str::to_string)
            .unwrap_or_else(|| name.clone());
        if !declared.contains(&family) {
            return Err(PromParseError::UndeclaredType { line, name });
        }
        if !seen.insert(series.to_string()) {
            return Err(PromParseError::Duplicate {
                line,
                series: series.to_string(),
            });
        }
        samples.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_rejects_malformed_duplicate_and_undeclared() {
        assert!(matches!(
            parse_prometheus_text("just_a_name_no_value\n"),
            Err(PromParseError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_prometheus_text("# TYPE a counter\na 1\na 2\n"),
            Err(PromParseError::Duplicate { line: 3, .. })
        ));
        assert!(matches!(
            parse_prometheus_text("orphan 1\n"),
            Err(PromParseError::UndeclaredType { line: 1, .. })
        ));
        assert!(matches!(
            parse_prometheus_text("# TYPE a counter\na not_a_number\n"),
            Err(PromParseError::Malformed { line: 2, .. })
        ));
    }

    #[test]
    fn parser_accepts_labelled_series() {
        let samples = parse_prometheus_text(
            "# TYPE h histogram\nh_bucket{le=\"0.5\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1.25\nh_count 5\n",
        )
        .unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].name, "h_bucket");
        assert_eq!(samples[0].labels, "le=\"0.5\"");
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[2].value, 1.25);
    }
}
