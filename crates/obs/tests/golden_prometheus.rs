//! Golden format tests: the Prometheus text dump produced by a
//! populated registry must parse cleanly (TYPE-declared families,
//! `name[{labels}] value` samples, no duplicate series), and the JSONL
//! stream must be one well-formed JSON object per line.

use std::collections::BTreeSet;

use longsynth_obs::{
    parse_prometheus_text, BudgetEvent, BudgetLedger, BudgetLevel, MetricsRegistry,
};

fn populated_registry() -> MetricsRegistry {
    let reg = MetricsRegistry::new();
    reg.counter("engine_rounds_total").add(12);
    reg.counter("serve_cache_hits_total").add(340);
    reg.counter("serve_cache_misses_total").add(17);
    reg.counter("pool_worker_panics"); // present but zero
    reg.gauge("pool_queue_depth").set(3);
    reg.gauge("serve_snapshot_bytes").set(18_432);
    let h = reg.latency_histogram("engine_round_ms");
    for v in [0.02, 0.8, 3.5, 19.0, 19.5, 21.0, 2000.0] {
        h.observe(v);
    }
    reg
}

#[test]
fn prometheus_dump_parses_with_no_duplicates() {
    let reg = populated_registry();
    let text = reg.prometheus_text();
    let samples = parse_prometheus_text(&text).expect("dump must parse");

    // Every registered metric surfaces at least one sample.
    let names: BTreeSet<&str> = samples.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "engine_rounds_total",
        "serve_cache_hits_total",
        "serve_cache_misses_total",
        "pool_worker_panics",
        "pool_queue_depth",
        "serve_snapshot_bytes",
        "engine_round_ms_bucket",
        "engine_round_ms_sum",
        "engine_round_ms_count",
    ] {
        assert!(names.contains(expected), "missing series {expected}");
    }

    // Histogram buckets are cumulative and end at +Inf == _count.
    let buckets: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "engine_round_ms_bucket")
        .collect();
    assert!(buckets.windows(2).all(|w| w[0].value <= w[1].value));
    let inf = buckets.last().expect("has +Inf bucket");
    assert_eq!(inf.labels, "le=\"+Inf\"");
    let count = samples
        .iter()
        .find(|s| s.name == "engine_round_ms_count")
        .unwrap();
    assert_eq!(inf.value, count.value);
    assert_eq!(count.value, 7.0);
}

#[test]
fn empty_registry_dump_parses_to_no_samples() {
    let samples = parse_prometheus_text(&MetricsRegistry::new().prometheus_text()).unwrap();
    assert!(samples.is_empty());
}

#[test]
fn jsonl_stream_is_one_object_per_line() {
    let reg = populated_registry();
    let ledger = BudgetLedger::new();
    ledger.record(BudgetEvent {
        round: 0,
        level: BudgetLevel::Cohort,
        cohort: Some(0),
        rho: 0.0005,
        spent_after: 0.0005,
    });
    let mut out = Vec::new();
    reg.write_jsonl(&mut out).unwrap();
    ledger.write_jsonl(&mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        // Minimal structural validation without a JSON dependency: the
        // vendored-serde_json round-trip lives in the CLI (`stats`) and
        // its CI smoke step; here we pin the framing invariants.
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"type\":\""), "line: {line}");
    }
    assert!(text
        .lines()
        .any(|l| l.contains("\"type\":\"budget_event\"")));
    assert!(text.lines().any(|l| l.contains("\"type\":\"histogram\"")));
}
