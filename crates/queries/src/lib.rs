//! The paper's two query classes, as executable objects.
//!
//! §2.1 of the paper defines counting queries `q : X^t → {0,1}` extended to
//! datasets by averaging. `longsynth` works with two families:
//!
//! * **Fixed time window queries** ([`window`]): for a window width `k` and
//!   pattern `s ∈ {0,1}^k`, `q_s^t(x) = 1[(x_{t-k+1}, …, x_t) = s]`. The
//!   per-`t` histogram over all `2^k` patterns is the object Algorithm 1
//!   preserves; arbitrary *linear combinations* of patterns (e.g. "in
//!   poverty at least two consecutive months this quarter") come for free.
//! * **Cumulative time queries** ([`cumulative`]): `c_b^t(x) =
//!   1[x_1 + … + x_t ≥ b]` — the fraction of individuals with Hamming
//!   weight at least `b`, for every threshold `b` simultaneously, which
//!   Algorithm 2 preserves.
//!
//! [`pattern`] provides the bit-pattern index type shared by both, and
//! [`accuracy`] the `(α, β)`-accuracy bookkeeping used by tests and the
//! experiment harness.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod cumulative;
pub mod pattern;
pub mod window;

pub use accuracy::{active_weighted_mean, AccuracyComparison, ErrorSummary, LabeledAccuracy};
pub use pattern::Pattern;
pub use window::{window_histogram, WindowQuery};
