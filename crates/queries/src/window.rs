//! Fixed time window queries (paper §2.1, §3, §5).
//!
//! The primitive statistic is the **window histogram**: at round `t` with
//! width `k`, the count `C_s^t` of individuals whose last-`k`-rounds window
//! equals each pattern `s`. Algorithm 1 preserves this histogram privately;
//! any query expressible as a linear combination of patterns of width
//! `k' ≤ k` is then answerable with *no additional privacy cost* — the
//! property §5 demonstrates with the four quarterly poverty queries.

use crate::pattern::Pattern;
use longsynth_data::LongitudinalDataset;

/// The exact window histogram `(C_s^t)_{s ∈ {0,1}^k}` of `data` at round
/// `t` (0-based; requires `t + 1 ≥ k`), indexed by pattern code.
pub fn window_histogram(data: &LongitudinalDataset, t: usize, k: usize) -> Vec<u64> {
    assert!(
        (1..=Pattern::MAX_WIDTH).contains(&k),
        "invalid window width {k}"
    );
    assert!(t < data.rounds(), "round {t} not yet recorded");
    assert!(t + 1 >= k, "window underflows at t={t}, k={k}");
    let mut histogram = vec![0u64; Pattern::count(k)];
    for i in 0..data.individuals() {
        histogram[data.suffix_pattern(i, t, k) as usize] += 1;
    }
    histogram
}

/// A linear query over width-`k'` window patterns:
/// `q^t(D) = (1/n) Σ_i w[s(i, t)]` where `s(i, t)` is individual `i`'s
/// window pattern at round `t`.
///
/// ```
/// use longsynth_queries::window::WindowQuery;
/// use longsynth_data::generators::all_ones;
///
/// // "In state 1 at least 2 of the last 3 rounds".
/// let q = WindowQuery::at_least_m_ones(3, 2);
/// let panel = all_ones(100, 5);
/// assert_eq!(q.evaluate_true(&panel, 4), 1.0);
/// assert_eq!(q.support_size(), 4); // patterns 011, 101, 110, 111
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQuery {
    width: usize,
    weights: Vec<f64>,
    name: String,
}

impl WindowQuery {
    /// A custom query from explicit per-pattern weights (length `2^width`).
    ///
    /// # Panics
    /// Panics if `weights.len() != 2^width` or any weight is non-finite.
    pub fn custom(width: usize, weights: Vec<f64>, name: impl Into<String>) -> Self {
        assert!((1..=Pattern::MAX_WIDTH).contains(&width));
        assert_eq!(weights.len(), Pattern::count(width), "weight vector size");
        assert!(
            weights.iter().all(|w| w.is_finite()),
            "weights must be finite"
        );
        Self {
            width,
            weights,
            name: name.into(),
        }
    }

    /// Indicator of a single pattern: the paper's `q_s^t`.
    pub fn pattern(s: Pattern) -> Self {
        let mut weights = vec![0.0; Pattern::count(s.width())];
        weights[s.code() as usize] = 1.0;
        Self {
            width: s.width(),
            weights,
            name: format!("pattern={s}"),
        }
    }

    /// Fraction with **at least `m` ones** in the window — e.g. "in poverty
    /// for at least one/two month(s) of the quarter" (Fig. 1, first two
    /// series, with `k = 3`, `m = 1, 2`).
    pub fn at_least_m_ones(width: usize, m: u32) -> Self {
        Self::from_predicate(width, |p| p.weight() >= m, format!("≥{m} ones of {width}"))
    }

    /// Fraction with **at least `m` consecutive ones** — "in poverty at
    /// least two consecutive months" (Fig. 1, third series, `m = 2`).
    pub fn at_least_m_consecutive_ones(width: usize, m: u32) -> Self {
        Self::from_predicate(
            width,
            |p| p.max_ones_run() >= m,
            format!("≥{m} consecutive ones of {width}"),
        )
    }

    /// Fraction with **all ones** — "in poverty all three months" (Fig. 1,
    /// fourth series).
    pub fn all_ones(width: usize) -> Self {
        Self::from_predicate(
            width,
            |p| p.weight() as usize == width,
            format!("all {width} ones"),
        )
    }

    /// Build from a pattern predicate (weight 1 where the predicate holds).
    pub fn from_predicate<F: Fn(Pattern) -> bool>(
        width: usize,
        predicate: F,
        name: impl Into<String>,
    ) -> Self {
        let weights = Pattern::all(width)
            .map(|p| f64::from(u8::from(predicate(p))))
            .collect();
        Self {
            width,
            weights,
            name: name.into(),
        }
    }

    /// Query width `k'`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Human-readable name (used in experiment reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-pattern weights, indexed by code.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of patterns with non-zero weight (the "support size" that
    /// determines the debiasing offset `npad · |supp(q)|`).
    pub fn support_size(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0.0).count()
    }

    /// ℓ₂ norm of the weight vector (the `‖w‖₂` in the paper's linear-query
    /// error bound `Õ(2^k ‖w‖₂ √T / n)`).
    pub fn weight_l2_norm(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Lift to a wider window `k ≥ k'`: a width-`k'` query evaluated at
    /// round `t` depends only on the last `k'` bits of the width-`k`
    /// window, so its weights replicate across the prepended bits. After
    /// lifting, the query can be answered from a width-`k` histogram.
    pub fn lift_to_width(&self, k: usize) -> WindowQuery {
        assert!(k >= self.width, "cannot lift to a narrower window");
        assert!(k <= Pattern::MAX_WIDTH);
        let weights = Pattern::all(k)
            .map(|p| self.weights[p.suffix(self.width).code() as usize])
            .collect();
        WindowQuery {
            width: k,
            weights,
            name: self.name.clone(),
        }
    }

    /// Evaluate against an explicit width-matching histogram of counts,
    /// normalising by `denominator` (the dataset size).
    pub fn evaluate_histogram(&self, histogram: &[f64], denominator: f64) -> f64 {
        assert_eq!(
            histogram.len(),
            self.weights.len(),
            "histogram width mismatch"
        );
        assert!(denominator > 0.0);
        let total: f64 = self.weights.iter().zip(histogram).map(|(w, c)| w * c).sum();
        total / denominator
    }

    /// Ground-truth value on the real dataset at round `t` (a fraction of
    /// `n`).
    pub fn evaluate_true(&self, data: &LongitudinalDataset, t: usize) -> f64 {
        let histogram = window_histogram(data, t, self.width);
        let histogram: Vec<f64> = histogram.iter().map(|&c| c as f64).collect();
        self.evaluate_histogram(&histogram, data.individuals() as f64)
    }
}

/// The paper's §5 quarterly query battery (for window width `k`): at least
/// one month, at least two months, at least two *consecutive* months, and
/// all months in poverty.
pub fn quarterly_battery(width: usize) -> Vec<WindowQuery> {
    vec![
        WindowQuery::at_least_m_ones(width, 1),
        WindowQuery::at_least_m_ones(width, 2),
        WindowQuery::at_least_m_consecutive_ones(width, 2),
        WindowQuery::all_ones(width),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_data::BitStream;

    /// 4 people, 4 rounds:
    ///   p0: 1 1 1 0
    ///   p1: 0 1 1 1
    ///   p2: 0 0 0 0
    ///   p3: 1 0 1 1
    fn sample() -> LongitudinalDataset {
        let rows: Vec<BitStream> = [
            [true, true, true, false],
            [false, true, true, true],
            [false, false, false, false],
            [true, false, true, true],
        ]
        .iter()
        .map(|bits| bits.iter().copied().collect())
        .collect();
        LongitudinalDataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn histogram_counts_patterns() {
        let d = sample();
        // Windows at t=2, k=3: p0=111(7), p1=011(3), p2=000(0), p3=101(5).
        let h = window_histogram(&d, 2, 3);
        assert_eq!(h.iter().sum::<u64>(), 4);
        assert_eq!(h[7], 1);
        assert_eq!(h[3], 1);
        assert_eq!(h[0], 1);
        assert_eq!(h[5], 1);
        // Windows at t=3, k=3: p0=110(6), p1=111(7), p2=000(0), p3=011(3).
        let h = window_histogram(&d, 3, 3);
        assert_eq!(h[6], 1);
        assert_eq!(h[7], 1);
        assert_eq!(h[0], 1);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn quarterly_battery_ground_truth() {
        let d = sample();
        let battery = quarterly_battery(3);
        // At t=2 (patterns 111, 011, 000, 101):
        // ≥1 one: 3/4; ≥2 ones: 3/4; ≥2 consecutive: 2/4 (111, 011); all: 1/4.
        let values: Vec<f64> = battery.iter().map(|q| q.evaluate_true(&d, 2)).collect();
        assert_eq!(values, vec![0.75, 0.75, 0.5, 0.25]);
    }

    #[test]
    fn support_sizes_for_k3() {
        let battery = quarterly_battery(3);
        // ≥1 one: 7 patterns; ≥2 ones: 4 (011,101,110,111);
        // ≥2 consecutive: 3 (011,110,111); all: 1.
        let sizes: Vec<usize> = battery.iter().map(WindowQuery::support_size).collect();
        assert_eq!(sizes, vec![7, 4, 3, 1]);
    }

    #[test]
    fn lifting_preserves_value() {
        let d = sample();
        // A width-2 query answered directly and via lifting to width 3
        // must agree wherever both windows exist (t ≥ 2).
        let narrow = WindowQuery::at_least_m_ones(2, 2);
        let lifted = narrow.lift_to_width(3);
        for t in 2..4 {
            let direct = narrow.evaluate_true(&d, t);
            let via_hist = {
                let h: Vec<f64> = window_histogram(&d, t, 3)
                    .iter()
                    .map(|&c| c as f64)
                    .collect();
                lifted.evaluate_histogram(&h, 4.0)
            };
            assert!(
                (direct - via_hist).abs() < 1e-12,
                "t={t}: {direct} vs {via_hist}"
            );
        }
    }

    #[test]
    fn lifting_multiplies_support() {
        let q = WindowQuery::all_ones(2);
        assert_eq!(q.support_size(), 1);
        let lifted = q.lift_to_width(4);
        // Each width-2 pattern lifts to 2^(4-2) = 4 width-4 patterns.
        assert_eq!(lifted.support_size(), 4);
        assert_eq!(lifted.width(), 4);
    }

    #[test]
    fn pattern_query_is_indicator() {
        let d = sample();
        let q = WindowQuery::pattern(Pattern::parse("111"));
        assert_eq!(q.evaluate_true(&d, 2), 0.25);
        assert_eq!(q.support_size(), 1);
        assert_eq!(q.weight_l2_norm(), 1.0);
    }

    #[test]
    fn custom_query_weights() {
        // Expected number of poverty months in the window, as a weighted
        // query: weight = pattern weight.
        let weights: Vec<f64> = Pattern::all(3).map(|p| f64::from(p.weight())).collect();
        let q = WindowQuery::custom(3, weights, "expected months");
        let d = sample();
        // t=2 windows: 111(3) + 011(2) + 000(0) + 101(2) = 7; /4 = 1.75.
        assert!((q.evaluate_true(&d, 2) - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight vector size")]
    fn custom_rejects_wrong_length() {
        WindowQuery::custom(3, vec![1.0; 4], "bad");
    }

    #[test]
    #[should_panic(expected = "narrower")]
    fn lift_rejects_narrowing() {
        WindowQuery::all_ones(3).lift_to_width(2);
    }

    #[test]
    fn names_are_informative() {
        assert!(WindowQuery::at_least_m_ones(3, 2).name().contains('2'));
        assert!(WindowQuery::all_ones(3).name().contains("all"));
    }
}
