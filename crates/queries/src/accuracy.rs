//! `(α, β)`-accuracy bookkeeping (paper §2.1).
//!
//! A synthetic data generator is `(α, β)`-accurate for a query class when,
//! with probability ≥ 1 − β over its coins, *every* query at *every* round
//! is within additive error α. The experiment harness measures the
//! empirical counterpart: per-repetition worst-case errors, then quantiles
//! across repetitions.

/// Summary statistics of a set of absolute errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Maximum absolute error (the α in `(α, β)`-accuracy).
    pub max: f64,
    /// Mean absolute error.
    pub mean: f64,
    /// Root-mean-square error.
    pub rmse: f64,
}

impl ErrorSummary {
    /// Summarise absolute errors of `estimates` against `truth`.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn from_pairs(estimates: &[f64], truth: &[f64]) -> Self {
        assert_eq!(estimates.len(), truth.len(), "length mismatch");
        assert!(!estimates.is_empty(), "cannot summarise zero errors");
        let abs: Vec<f64> = estimates
            .iter()
            .zip(truth)
            .map(|(e, t)| (e - t).abs())
            .collect();
        Self::from_abs_errors(&abs)
    }

    /// Summarise a slice of already-absolute errors.
    pub fn from_abs_errors(abs: &[f64]) -> Self {
        assert!(!abs.is_empty(), "cannot summarise zero errors");
        let n = abs.len() as f64;
        let max = abs.iter().cloned().fold(0.0, f64::max);
        let mean = abs.iter().sum::<f64>() / n;
        let rmse = (abs.iter().map(|e| e * e).sum::<f64>() / n).sqrt();
        Self { max, mean, rmse }
    }

    /// True when the worst-case error is within `alpha`.
    pub fn within(&self, alpha: f64) -> bool {
        self.max <= alpha
    }
}

/// One labelled configuration's accuracy in a side-by-side comparison —
/// typically an aggregation policy (`per-shard`, `shared`) at some shard
/// count, summarised over a battery of population-level queries.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledAccuracy {
    /// What produced these errors (e.g. `"shared, 4 shards"`).
    pub label: String,
    /// The error summary over the query battery.
    pub summary: ErrorSummary,
}

/// A policy-aware accuracy comparison: one named baseline (canonically the
/// unsharded / 1-shard run) and any number of alternatives, each reported
/// with its mean-absolute-error ratio to the baseline.
///
/// This is how the aggregation-policy claim is made measurable: per-shard
/// noise sits near `√shards ×` the baseline's population-query error,
/// shared noise near `√(1/population_share) ×` regardless of shard count.
/// The CLI's per-policy error summaries, the `aggregation_accuracy` bench,
/// and the engine's statistical acceptance test all render one of these.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyComparison {
    baseline: LabeledAccuracy,
    alternatives: Vec<LabeledAccuracy>,
}

impl AccuracyComparison {
    /// Start a comparison against `baseline`.
    pub fn against(label: impl Into<String>, summary: ErrorSummary) -> Self {
        Self {
            baseline: LabeledAccuracy {
                label: label.into(),
                summary,
            },
            alternatives: Vec::new(),
        }
    }

    /// Add one alternative configuration.
    pub fn add(&mut self, label: impl Into<String>, summary: ErrorSummary) {
        self.alternatives.push(LabeledAccuracy {
            label: label.into(),
            summary,
        });
    }

    /// The baseline row.
    pub fn baseline(&self) -> &LabeledAccuracy {
        &self.baseline
    }

    /// The alternative rows, in insertion order.
    pub fn alternatives(&self) -> &[LabeledAccuracy] {
        &self.alternatives
    }

    /// Mean-absolute-error ratio of the alternative at `label` to the
    /// baseline (`None` if no such row).
    pub fn mean_ratio(&self, label: &str) -> Option<f64> {
        self.alternatives
            .iter()
            .find(|row| row.label == label)
            .map(|row| row.summary.mean / self.baseline.summary.mean)
    }

    /// The error summary recorded under `label` (baseline included), or
    /// `None` if no such row — how paired comparisons (e.g. the
    /// `panel_churn` bench's windowed-shared vs per-shard arms at one
    /// churn level) read back their sides.
    pub fn summary(&self, label: &str) -> Option<&ErrorSummary> {
        if self.baseline.label == label {
            return Some(&self.baseline.summary);
        }
        self.alternatives
            .iter()
            .find(|row| row.label == label)
            .map(|row| &row.summary)
    }

    /// Every row as `(label, summary, mean-ratio-to-baseline)` — baseline
    /// first with ratio 1.
    pub fn rows(&self) -> Vec<(&str, &ErrorSummary, f64)> {
        let mut rows = vec![(self.baseline.label.as_str(), &self.baseline.summary, 1.0)];
        rows.extend(self.alternatives.iter().map(|row| {
            (
                row.label.as_str(),
                &row.summary,
                row.summary.mean / self.baseline.summary.mean,
            )
        }));
        rows
    }
}

impl std::fmt::Display for AccuracyComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let width = self
            .rows()
            .iter()
            .map(|(label, _, _)| label.len())
            .max()
            .unwrap_or(0);
        for (index, (label, summary, ratio)) in self.rows().into_iter().enumerate() {
            if index > 0 {
                writeln!(f)?;
            }
            write!(
                f,
                "{label:width$}  mae={:.6}  max={:.6}  x{ratio:.3} vs baseline",
                summary.mean, summary.max
            )?;
        }
        Ok(())
    }
}

/// Combine per-cohort query answers into a population-level answer over a
/// dynamic panel's **active set**: the size-weighted mean of the cohort
/// fractions, `Σ_c aᵢ·nᵢ / Σ_c nᵢ`.
///
/// For fraction-valued queries (window indicators, cumulative thresholds)
/// this equals the answer computed over the pooled records of the covering
/// cohorts — counts add across disjoint cohorts. Rotating panels answer
/// population queries this way because their "merged panel" is ragged:
/// record `i` at round `t` and round `t+1` may be different individuals,
/// so only the per-cohort panels are longitudinally meaningful.
///
/// Returns `None` when no cohort covers the query (empty input) or the
/// covering cohorts are all empty.
pub fn active_weighted_mean(parts: impl IntoIterator<Item = (f64, usize)>) -> Option<f64> {
    let mut numerator = 0.0;
    let mut denominator = 0usize;
    for (answer, size) in parts {
        numerator += answer * size as f64;
        denominator += size;
    }
    if denominator == 0 {
        None
    } else {
        Some(numerator / denominator as f64)
    }
}

/// Empirical `(α, β)` check: given per-repetition worst-case errors, the
/// fraction of repetitions exceeding `alpha` — an estimate of β.
pub fn empirical_failure_rate(worst_case_errors: &[f64], alpha: f64) -> f64 {
    assert!(!worst_case_errors.is_empty());
    worst_case_errors.iter().filter(|&&e| e > alpha).count() as f64 / worst_case_errors.len() as f64
}

/// The `q`-th quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation —
/// the experiment harness plots medians and the 2.5/97.5 percentiles, as the
/// paper's Figures 3–4 do.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile order out of range");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let idx = q * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_from_pairs() {
        let s = ErrorSummary::from_pairs(&[1.0, 2.0, 3.5], &[1.5, 2.0, 3.0]);
        assert!((s.max - 0.5).abs() < 1e-12);
        assert!((s.mean - (0.5 + 0.0 + 0.5) / 3.0).abs() < 1e-12);
        let expected_rmse = ((0.25 + 0.0 + 0.25) / 3.0f64).sqrt();
        assert!((s.rmse - expected_rmse).abs() < 1e-12);
        assert!(s.within(0.5));
        assert!(!s.within(0.49));
    }

    #[test]
    fn rmse_at_least_mean_at_most_max() {
        let abs = [0.1, 0.4, 0.9, 0.2];
        let s = ErrorSummary::from_abs_errors(&abs);
        assert!(s.mean <= s.rmse + 1e-12);
        assert!(s.rmse <= s.max + 1e-12);
    }

    #[test]
    fn failure_rate_counts_exceedances() {
        let worst = [0.1, 0.2, 0.3, 0.4];
        assert_eq!(empirical_failure_rate(&worst, 0.25), 0.5);
        assert_eq!(empirical_failure_rate(&worst, 1.0), 0.0);
        assert_eq!(empirical_failure_rate(&worst, 0.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Unsorted input is handled.
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        // Single element.
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn comparison_reports_ratios_against_the_baseline() {
        let baseline = ErrorSummary::from_abs_errors(&[0.01, 0.03]);
        let mut comparison = AccuracyComparison::against("1 shard", baseline);
        comparison.add(
            "per-shard, 4 shards",
            ErrorSummary::from_abs_errors(&[0.02, 0.06]),
        );
        comparison.add(
            "shared, 4 shards",
            ErrorSummary::from_abs_errors(&[0.011, 0.033]),
        );
        assert!((comparison.mean_ratio("per-shard, 4 shards").unwrap() - 2.0).abs() < 1e-12);
        assert!((comparison.mean_ratio("shared, 4 shards").unwrap() - 1.1).abs() < 1e-12);
        assert!(comparison.mean_ratio("nonexistent").is_none());
        // Summaries read back by label, baseline included.
        assert_eq!(comparison.summary("1 shard").unwrap(), &baseline);
        assert!((comparison.summary("shared, 4 shards").unwrap().mean - 0.022).abs() < 1e-12);
        assert!(comparison.summary("nonexistent").is_none());
        let rows = comparison.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, "1 shard");
        assert!((rows[0].2 - 1.0).abs() < 1e-12);
        let text = comparison.to_string();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("x2.000 vs baseline"), "{text}");
        assert_eq!(comparison.baseline().label, "1 shard");
        assert_eq!(comparison.alternatives().len(), 2);
    }

    #[test]
    fn weighted_mean_pools_cohort_fractions() {
        // Cohorts of 10 and 30 with fractions 0.5 and 0.25: the pooled
        // population fraction is (5 + 7.5) / 40.
        let pooled = active_weighted_mean([(0.5, 10), (0.25, 30)]).unwrap();
        assert!((pooled - 12.5 / 40.0).abs() < 1e-12);
        // A single covering cohort passes through (up to fp rounding).
        assert!((active_weighted_mean([(0.7, 12)]).unwrap() - 0.7).abs() < 1e-12);
        // No covering cohorts (or only empty ones) has no answer.
        assert!(active_weighted_mean([]).is_none());
        assert!(active_weighted_mean([(0.3, 0)]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pairs_require_equal_lengths() {
        ErrorSummary::from_pairs(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_rejects_empty() {
        quantile(&[], 0.5);
    }
}
