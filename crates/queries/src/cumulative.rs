//! Cumulative time queries (paper §2.1, §4).
//!
//! The primitive statistic is the vector of **threshold counts**
//! `S_b^t = #{i : x_i^1 + … + x_i^t ≥ b}` for every `b = 0..=t` — e.g.
//! "households in poverty for at least `b` of the first `t` months".
//! Algorithm 2 preserves all of them simultaneously.

use longsynth_data::LongitudinalDataset;

/// All threshold counts `(S_0^t, …, S_t^t)` at round `t` (0-based round:
/// `t` rounds have elapsed after index `t`, so `b` ranges to `t + 1` bits of
/// history — we report `b = 0..=t+1` exclusive upper `t+1`).
///
/// Returned vector has length `t + 2`: entry `b` is `S_b`, with `S_0 = n`
/// always and `S_{t+1} = #{all-ones histories}` included for convenience.
pub fn cumulative_counts(data: &LongitudinalDataset, t: usize) -> Vec<u64> {
    assert!(t < data.rounds(), "round {t} not yet recorded");
    let rounds_elapsed = t + 1;
    let mut by_weight = vec![0u64; rounds_elapsed + 1];
    for i in 0..data.individuals() {
        by_weight[data.prefix_weight(i, t)] += 1;
    }
    // Suffix-sum: S_b = Σ_{w ≥ b} #{weight = w}.
    let mut counts = vec![0u64; rounds_elapsed + 1];
    let mut acc = 0u64;
    for b in (0..=rounds_elapsed).rev() {
        acc += by_weight[b];
        counts[b] = acc;
    }
    counts
}

/// The paper's query `c_b^t`: the *fraction* of individuals with Hamming
/// weight at least `b` after round `t`.
pub fn cumulative_fraction(data: &LongitudinalDataset, t: usize, b: usize) -> f64 {
    let counts = cumulative_counts(data, t);
    let count = counts.get(b).copied().unwrap_or(0);
    count as f64 / data.individuals() as f64
}

/// Exact-weight counts `#{i : weight = b}` at round `t`, derived as
/// `S_b − S_{b+1}` (the identity Algorithm 2's record-extension step relies
/// on).
pub fn exact_weight_counts(data: &LongitudinalDataset, t: usize) -> Vec<u64> {
    let counts = cumulative_counts(data, t);
    counts
        .windows(2)
        .map(|w| w[0] - w[1])
        .chain(std::iter::once(*counts.last().expect("non-empty")))
        .collect()
}

/// The per-round increment stream fed to stream counter `b` (Algorithm 2):
/// `z_b^t = #{i : weight before round t is b−1, and x_i^t = 1}` — the
/// number of individuals *crossing* threshold `b` at round `t`.
///
/// Rounds are 0-based; `b ≥ 1`.
pub fn threshold_increment(data: &LongitudinalDataset, t: usize, b: usize) -> u64 {
    assert!(b >= 1, "threshold increments are defined for b >= 1");
    assert!(t < data.rounds());
    let mut z = 0u64;
    for i in 0..data.individuals() {
        if !data.value(i, t) {
            continue;
        }
        let before = if t == 0 {
            0
        } else {
            data.prefix_weight(i, t - 1)
        };
        if before == b - 1 {
            z += 1;
        }
    }
    z
}

/// How many individuals crossed threshold `b` during the round interval
/// `(t1, t2]` (0-based, `t1 < t2`): `S_b^{t2} − S_b^{t1}`.
///
/// This is the time-window statistic our cumulative machinery answers
/// exactly (each term is a cumulative query); the paper's §1.1 sketches a
/// related reduction for the `CountOcc` queries of Ghazi et al. — see
/// DESIGN.md for how our formulation differs from that shorthand.
pub fn threshold_crossings(data: &LongitudinalDataset, t1: usize, t2: usize, b: usize) -> u64 {
    assert!(t1 < t2, "need t1 < t2");
    let s2 = cumulative_counts(data, t2);
    let s1 = cumulative_counts(data, t1);
    let at_t2 = s2.get(b).copied().unwrap_or(0);
    let at_t1 = s1.get(b).copied().unwrap_or(0);
    at_t2 - at_t1
}

/// Validity predicate for a (possibly privatized) threshold-count matrix:
/// entry `[t][b]` must be non-increasing in `b` (weights ≥ b+1 imply ≥ b),
/// non-decreasing in `t` (weights only grow), and satisfy the Lipschitz
/// cross-constraint `S_b^t ≤ S_{b-1}^{t-1}` (a weight-`b` history at `t`
/// had weight ≥ b−1 at `t−1`). These are the two monotonicity constraints
/// §4.1 enforces.
pub fn is_valid_threshold_matrix(matrix: &[Vec<i64>]) -> bool {
    for (t, row) in matrix.iter().enumerate() {
        for b in 1..row.len() {
            if row[b] > row[b - 1] {
                return false; // increasing in b
            }
        }
        if t > 0 {
            let prev = &matrix[t - 1];
            for b in 0..row.len().min(prev.len()) {
                if row[b] < prev[b] {
                    return false; // decreasing in t
                }
            }
            for b in 1..row.len() {
                if b - 1 < prev.len() && row[b] > prev[b - 1] {
                    return false; // Lipschitz cross-constraint
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_data::BitStream;

    /// 4 people, 3 rounds:
    ///   p0: 1 1 1   (weights 1,2,3)
    ///   p1: 0 1 0   (weights 0,1,1)
    ///   p2: 0 0 0   (weights 0,0,0)
    ///   p3: 1 0 1   (weights 1,1,2)
    fn sample() -> LongitudinalDataset {
        let rows: Vec<BitStream> = [
            [true, true, true],
            [false, true, false],
            [false, false, false],
            [true, false, true],
        ]
        .iter()
        .map(|bits| bits.iter().copied().collect())
        .collect();
        LongitudinalDataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn counts_at_each_round() {
        let d = sample();
        // t=0: weights (1,0,0,1) → S_0=4, S_1=2.
        assert_eq!(cumulative_counts(&d, 0), vec![4, 2]);
        // t=1: weights (2,1,0,1) → S_0=4, S_1=3, S_2=1.
        assert_eq!(cumulative_counts(&d, 1), vec![4, 3, 1]);
        // t=2: weights (3,1,0,2) → S_0=4, S_1=3, S_2=2, S_3=1.
        assert_eq!(cumulative_counts(&d, 2), vec![4, 3, 2, 1]);
    }

    #[test]
    fn fractions_normalise() {
        let d = sample();
        assert_eq!(cumulative_fraction(&d, 2, 2), 0.5);
        assert_eq!(cumulative_fraction(&d, 2, 0), 1.0);
        // Threshold beyond history length: zero.
        assert_eq!(cumulative_fraction(&d, 2, 7), 0.0);
    }

    #[test]
    fn exact_weights_partition_population() {
        let d = sample();
        // t=2 weights (3,1,0,2): counts by weight 0..=3 = [1,1,1,1].
        let exact = exact_weight_counts(&d, 2);
        assert_eq!(exact, vec![1, 1, 1, 1]);
        assert_eq!(exact.iter().sum::<u64>(), 4);
    }

    #[test]
    fn increments_telescope_to_counts() {
        let d = sample();
        // S_b^t must equal Σ_{r ≤ t} z_b^r for every b ≥ 1 (the stream
        // representation Algorithm 2 relies on).
        for b in 1..=3usize {
            let mut acc = 0u64;
            for t in 0..3 {
                acc += threshold_increment(&d, t, b);
                let s = cumulative_counts(&d, t);
                assert_eq!(acc, s.get(b).copied().unwrap_or(0), "b={b}, t={t}");
            }
        }
    }

    #[test]
    fn each_individual_contributes_at_most_one_increment_per_threshold() {
        // The sensitivity argument: per b, an individual crosses b at most
        // once over the whole horizon.
        let d = sample();
        for b in 1..=3usize {
            let total: u64 = (0..3).map(|t| threshold_increment(&d, t, b)).sum();
            assert!(total <= 4, "b={b}: total {total} exceeds population");
        }
    }

    #[test]
    fn crossings_between_rounds() {
        let d = sample();
        // S_2 went 0 (t=0) → 1 (t=1) → 2 (t=2).
        assert_eq!(threshold_crossings(&d, 0, 1, 2), 1);
        assert_eq!(threshold_crossings(&d, 0, 2, 2), 2);
        assert_eq!(threshold_crossings(&d, 1, 2, 2), 1);
    }

    #[test]
    fn true_matrix_is_valid() {
        let d = sample();
        let matrix: Vec<Vec<i64>> = (0..3)
            .map(|t| cumulative_counts(&d, t).iter().map(|&c| c as i64).collect())
            .collect();
        assert!(is_valid_threshold_matrix(&matrix));
    }

    #[test]
    fn validity_detects_violations() {
        // Increasing in b.
        assert!(!is_valid_threshold_matrix(&[vec![4, 5]]));
        // Decreasing in t.
        assert!(!is_valid_threshold_matrix(&[vec![4, 3], vec![4, 2]]));
        // Lipschitz: S_2^1 > S_1^0.
        assert!(!is_valid_threshold_matrix(&[vec![4, 1, 0], vec![4, 2, 2]]));
        // A conforming matrix passes.
        assert!(is_valid_threshold_matrix(&[vec![4, 1, 0], vec![4, 2, 1]]));
    }

    #[test]
    #[should_panic(expected = "b >= 1")]
    fn increment_rejects_b0() {
        threshold_increment(&sample(), 0, 0);
    }
}
