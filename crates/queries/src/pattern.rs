//! [`Pattern`]: a `k`-bit window pattern `s ∈ {0,1}^k`.
//!
//! Patterns index histogram bins. The encoding is big-endian in time — the
//! *oldest* bit of the window is the most significant — matching
//! `LongitudinalDataset::suffix_pattern`. Under this encoding the paper's
//! two pattern surgeries become cheap bit operations:
//!
//! * the overlap `z` carried from one window to the next (drop the oldest
//!   bit): `code mod 2^(k-1)`;
//! * appending the new round's bit `c` ("`zc`"): `2·z + c`;
//! * prepending a bit `c` ("`cz`"): `c·2^(k-1) + z`.

use std::fmt;

/// A window pattern `s ∈ {0,1}^width`. `width = 0` (the empty pattern) is
/// allowed: it is the overlap object for `k = 1` synthesizers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pattern {
    code: u32,
    width: u8,
}

impl Pattern {
    /// Maximum supported width (histogram sizes are `2^width`).
    pub const MAX_WIDTH: usize = 24;

    /// Construct from an integer code and width.
    ///
    /// # Panics
    /// Panics if `width > 24` or `code` has bits above `width`.
    pub fn new(code: u32, width: usize) -> Self {
        assert!(width <= Self::MAX_WIDTH, "pattern width {width} too large");
        assert!(
            width == 32 || code < (1u32 << width),
            "code {code} does not fit in width {width}"
        );
        Self {
            code,
            width: width as u8,
        }
    }

    /// The empty pattern (width 0).
    pub fn empty() -> Self {
        Self { code: 0, width: 0 }
    }

    /// Parse from a bit string like `"011"` (oldest bit first).
    ///
    /// # Panics
    /// Panics on characters other than '0'/'1' or on over-long strings.
    pub fn parse(s: &str) -> Self {
        assert!(s.len() <= Self::MAX_WIDTH, "pattern string too long");
        let mut code = 0u32;
        for ch in s.chars() {
            code = (code << 1)
                | match ch {
                    '0' => 0,
                    '1' => 1,
                    other => panic!("invalid pattern character {other:?}"),
                };
        }
        Self {
            code,
            width: s.len() as u8,
        }
    }

    /// Integer code (big-endian in time).
    #[inline]
    pub fn code(self) -> u32 {
        self.code
    }

    /// Width `k`.
    #[inline]
    pub fn width(self) -> usize {
        self.width as usize
    }

    /// All `2^width` patterns of a width, in code order.
    pub fn all(width: usize) -> impl Iterator<Item = Pattern> {
        assert!(width <= Self::MAX_WIDTH);
        (0..(1u32 << width)).map(move |code| Pattern {
            code,
            width: width as u8,
        })
    }

    /// Number of patterns of a width (`2^width`).
    pub fn count(width: usize) -> usize {
        assert!(width <= Self::MAX_WIDTH);
        1usize << width
    }

    /// The bit at position `i` (0 = oldest).
    #[inline]
    pub fn bit(self, i: usize) -> bool {
        assert!(i < self.width(), "bit index out of range");
        (self.code >> (self.width() - 1 - i)) & 1 == 1
    }

    /// Hamming weight of the pattern.
    #[inline]
    pub fn weight(self) -> u32 {
        self.code.count_ones()
    }

    /// Length of the longest run of consecutive 1-bits.
    pub fn max_ones_run(self) -> u32 {
        let mut best = 0u32;
        let mut current = 0u32;
        for i in 0..self.width() {
            if self.bit(i) {
                current += 1;
                best = best.max(current);
            } else {
                current = 0;
            }
        }
        best
    }

    /// The overlap carried into the next window: drop the oldest bit
    /// (`s = cz ↦ z`).
    ///
    /// # Panics
    /// Panics on the empty pattern.
    #[inline]
    pub fn drop_oldest(self) -> Pattern {
        assert!(self.width > 0, "cannot shrink the empty pattern");
        let w = self.width - 1;
        Pattern {
            code: self.code & ((1u32 << w) - 1),
            width: w,
        }
    }

    /// Append the new round's bit: `z ↦ zc`.
    #[inline]
    pub fn append(self, bit: bool) -> Pattern {
        assert!(
            self.width() < Self::MAX_WIDTH,
            "pattern would exceed max width"
        );
        Pattern {
            code: (self.code << 1) | u32::from(bit),
            width: self.width + 1,
        }
    }

    /// Prepend a bit at the oldest position: `z ↦ cz`.
    #[inline]
    pub fn prepend(self, bit: bool) -> Pattern {
        assert!(
            self.width() < Self::MAX_WIDTH,
            "pattern would exceed max width"
        );
        Pattern {
            code: (u32::from(bit) << self.width()) | self.code,
            width: self.width + 1,
        }
    }

    /// The newest (most recent) bit.
    #[inline]
    pub fn newest_bit(self) -> bool {
        assert!(self.width > 0);
        self.code & 1 == 1
    }

    /// The suffix of the last `k` bits (most recent `k` rounds).
    pub fn suffix(self, k: usize) -> Pattern {
        assert!(k <= self.width());
        Pattern {
            code: self.code & ((1u32 << k) - 1),
            width: k as u8,
        }
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern(\"{self}\")")
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width == 0 {
            return write!(f, "ε");
        }
        for i in 0..self.width() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "1", "011", "1101", "00000000"] {
            assert_eq!(Pattern::parse(s).to_string(), s);
        }
        assert_eq!(Pattern::empty().to_string(), "ε");
    }

    #[test]
    fn encoding_is_big_endian_in_time() {
        let p = Pattern::parse("011");
        assert_eq!(p.code(), 0b011);
        assert!(!p.bit(0)); // oldest
        assert!(p.bit(1));
        assert!(p.bit(2)); // newest
        assert!(p.newest_bit());
    }

    #[test]
    fn enumeration_covers_all_codes() {
        let all: Vec<Pattern> = Pattern::all(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(Pattern::count(3), 8);
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.code(), i as u32);
            assert_eq!(p.width(), 3);
        }
    }

    #[test]
    fn weight_and_runs() {
        assert_eq!(Pattern::parse("0110").weight(), 2);
        assert_eq!(Pattern::parse("0110").max_ones_run(), 2);
        assert_eq!(Pattern::parse("1011").max_ones_run(), 2);
        assert_eq!(Pattern::parse("111").max_ones_run(), 3);
        assert_eq!(Pattern::parse("000").max_ones_run(), 0);
        assert_eq!(Pattern::empty().max_ones_run(), 0);
    }

    #[test]
    fn window_surgeries_compose() {
        // s = 101; overlap z = 01; appending 1 gives 011; prepending 1 to z
        // gives 101 back.
        let s = Pattern::parse("101");
        let z = s.drop_oldest();
        assert_eq!(z, Pattern::parse("01"));
        assert_eq!(z.append(true), Pattern::parse("011"));
        assert_eq!(z.prepend(true), Pattern::parse("101"));
        assert_eq!(z.prepend(false), Pattern::parse("001"));
        // The paper's consistency bookkeeping: the windows "0z" and "1z"
        // share overlap z with "z0" and "z1".
        for w in Pattern::all(3) {
            let overlap = w.drop_oldest();
            assert!(overlap == w.drop_oldest());
            assert_eq!(overlap.width(), 2);
        }
    }

    #[test]
    fn k1_uses_empty_overlap() {
        let one = Pattern::parse("1");
        let z = one.drop_oldest();
        assert_eq!(z, Pattern::empty());
        assert_eq!(z.append(true), Pattern::parse("1"));
        assert_eq!(z.append(false), Pattern::parse("0"));
    }

    #[test]
    fn suffix_takes_most_recent_bits() {
        let p = Pattern::parse("1101");
        assert_eq!(p.suffix(2), Pattern::parse("01"));
        assert_eq!(p.suffix(4), p);
        assert_eq!(p.suffix(0), Pattern::empty());
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_code_rejected() {
        Pattern::new(8, 3);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oversized_width_rejected() {
        Pattern::new(0, 25);
    }

    #[test]
    fn ordering_follows_codes() {
        let mut v: Vec<Pattern> = Pattern::all(2).collect();
        v.reverse();
        v.sort();
        assert_eq!(v.first().unwrap().code(), 0);
        assert_eq!(v.last().unwrap().code(), 3);
    }
}
