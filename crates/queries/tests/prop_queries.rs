//! Property-based tests for the query classes.

use longsynth_data::generators::{iid_bernoulli, two_state_markov, MarkovParams};
use longsynth_dp::rng::rng_from_seed;
use longsynth_queries::cumulative::{
    cumulative_counts, exact_weight_counts, is_valid_threshold_matrix, threshold_increment,
};
use longsynth_queries::pattern::Pattern;
use longsynth_queries::window::{quarterly_battery, window_histogram, WindowQuery};
use proptest::prelude::*;

fn random_panel(seed: u64, n: usize, t: usize) -> longsynth_data::LongitudinalDataset {
    iid_bernoulli(&mut rng_from_seed(seed), n, t, 0.4)
}

proptest! {
    /// Window histograms partition the population at every round.
    #[test]
    fn histograms_partition(seed in any::<u64>(), n in 1usize..60, t in 3usize..10, k in 1usize..4) {
        let d = random_panel(seed, n, t);
        for round in (k - 1)..t {
            let h = window_histogram(&d, round, k);
            prop_assert_eq!(h.len(), 1usize << k);
            prop_assert_eq!(h.iter().sum::<u64>(), n as u64);
        }
    }

    /// Consecutive window histograms satisfy the paper's §3.1 overlap
    /// identity on the *true* data: C^t_{0z} + C^t_{1z} = C^{t+1}_{z0} +
    /// C^{t+1}_{z1} for every overlap z.
    #[test]
    fn true_histograms_satisfy_consistency(seed in any::<u64>(), n in 1usize..60, t in 4usize..10) {
        let k = 3usize;
        let d = random_panel(seed, n, t);
        for round in (k - 1)..(t - 1) {
            let now = window_histogram(&d, round, k);
            let next = window_histogram(&d, round + 1, k);
            for z in Pattern::all(k - 1) {
                let ending_in_z =
                    now[z.prepend(false).code() as usize] + now[z.prepend(true).code() as usize];
                let starting_with_z =
                    next[z.append(false).code() as usize] + next[z.append(true).code() as usize];
                prop_assert_eq!(ending_in_z, starting_with_z, "z={} round={}", z, round);
            }
        }
    }

    /// Every battery query value lies in [0, 1] and the battery is ordered:
    /// ≥1 month ⊇ ≥2 months ⊇ all months, and ≥2 months ⊇ ≥2 consecutive.
    #[test]
    fn battery_is_ordered(seed in any::<u64>(), n in 1usize..80, t in 3usize..8) {
        let d = random_panel(seed, n, t);
        let battery = quarterly_battery(3);
        for round in 2..t {
            let v: Vec<f64> = battery.iter().map(|q| q.evaluate_true(&d, round)).collect();
            for &x in &v {
                prop_assert!((0.0..=1.0).contains(&x));
            }
            prop_assert!(v[0] >= v[1]);
            prop_assert!(v[1] >= v[2]);
            prop_assert!(v[2] >= v[3]);
        }
    }

    /// Lifting a query to a wider window never changes its value.
    #[test]
    fn lifting_is_value_preserving(
        seed in any::<u64>(), n in 1usize..50, t in 5usize..9,
        narrow in 1usize..3,
    ) {
        let wide = 4usize;
        let d = random_panel(seed, n, t);
        let q = WindowQuery::at_least_m_ones(narrow, 1);
        let lifted = q.lift_to_width(wide);
        for round in (wide - 1)..t {
            let direct = q.evaluate_true(&d, round);
            let h: Vec<f64> = window_histogram(&d, round, wide).iter().map(|&c| c as f64).collect();
            let via = lifted.evaluate_histogram(&h, n as f64);
            prop_assert!((direct - via).abs() < 1e-10, "round {}: {} vs {}", round, direct, via);
        }
    }

    /// Cumulative counts: S_0 = n, non-increasing in b, non-decreasing in t,
    /// and valid as a threshold matrix; exact weights partition n.
    #[test]
    fn cumulative_structure(seed in any::<u64>(), n in 1usize..60, t in 1usize..12) {
        let d = two_state_markov(
            &mut rng_from_seed(seed), n, t,
            MarkovParams { initial_one: 0.3, stay_one: 0.8, enter_one: 0.1 },
        );
        let matrix: Vec<Vec<i64>> = (0..t)
            .map(|round| cumulative_counts(&d, round).iter().map(|&c| c as i64).collect())
            .collect();
        for row in &matrix {
            prop_assert_eq!(row[0], n as i64);
        }
        prop_assert!(is_valid_threshold_matrix(&matrix));
        for round in 0..t {
            let exact = exact_weight_counts(&d, round);
            prop_assert_eq!(exact.iter().sum::<u64>(), n as u64);
        }
    }

    /// The increment streams telescope to the threshold counts — the
    /// representation S_b^t = Σ_{r≤t} z_b^r that Algorithm 2 is built on —
    /// and each stream sums to at most n (sensitivity 1 per individual).
    #[test]
    fn increments_telescope(seed in any::<u64>(), n in 1usize..40, t in 1usize..10) {
        let d = random_panel(seed, n, t);
        for b in 1..=t {
            let mut acc = 0u64;
            for round in 0..t {
                acc += threshold_increment(&d, round, b);
                let s = cumulative_counts(&d, round);
                prop_assert_eq!(acc, s.get(b).copied().unwrap_or(0));
            }
            prop_assert!(acc <= n as u64);
        }
    }

    /// Pattern surgeries: append ∘ drop_oldest enumerates exactly the
    /// successor windows, and prepend ∘ drop_oldest the predecessor windows.
    #[test]
    fn pattern_surgery_bijections(width in 1usize..10) {
        // Every width-k pattern has exactly two possible successors and
        // two possible predecessors, and successor sets partition.
        let mut successor_count = vec![0usize; 1usize << width];
        for p in Pattern::all(width) {
            let z = p.drop_oldest();
            for bit in [false, true] {
                successor_count[z.append(bit).code() as usize] += 1;
            }
        }
        // Each pattern is the successor of exactly two patterns (0z and 1z).
        for (code, &c) in successor_count.iter().enumerate() {
            prop_assert_eq!(c, 2, "code {}", code);
        }
    }
}
