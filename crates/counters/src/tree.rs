//! The binary-tree aggregation mechanism — the paper's Algorithm 3.
//!
//! The implementation follows the paper's register formulation exactly:
//! registers `α_0, …, α_{L-1}` hold exact sums of dyadic blocks, and noisy
//! twins `α̃_j` are refreshed whenever a register is rewritten. At step `t`
//! (1-based) with lowest set bit `i = min{j : Bin_j(t) ≠ 0}`:
//!
//! 1. `α_i ← Σ_{j<i} α_j + zᵗ` (merge the completed sub-blocks),
//! 2. zero `α_j, α̃_j` for `j < i`,
//! 3. `α̃_i ← α_i + N_Z(0, σ²)`,
//! 4. output `S̃ᵗ = Σ_{j: Bin_j(t)=1} α̃_j`.
//!
//! Every stream element enters at most `L = ⌊log₂ T⌋ + 1` released register
//! values over the run, so per-node noise `σ² = L/(2ρ)` gives ρ-zCDP by
//! composition (Theorem A.1). Every prefix sum is a sum of at most
//! `popcount(t) ≤ L` noisy registers, giving the `O(√(log T)·σ)` error of
//! Theorem A.2.

use crate::{tree_levels, StreamCounter};
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::{NoiseDistribution, NoiseSampler};
use longsynth_dp::rng::StdDpRng;
use rand::Rng;

/// Binary-tree (register) stream counter. See module docs.
///
/// ```
/// use longsynth_counters::{tree::TreeCounter, StreamCounter};
/// use longsynth_dp::{budget::Rho, rng::rng_from_seed};
///
/// let mut counter = TreeCounter::for_zcdp(365, Rho::new(1.0).unwrap(), rng_from_seed(7));
/// let mut estimate = 0;
/// for day in 0..365u64 {
///     estimate = counter.feed(day % 2); // ~182 events total
/// }
/// assert!((estimate - 182).abs() < counter.error_bound(0.01) as i64);
/// ```
pub struct TreeCounter<R: Rng = StdDpRng> {
    horizon: usize,
    levels: usize,
    noise: NoiseDistribution,
    /// Cached sampler for `noise` (stream-identical, constants hoisted).
    sampler: NoiseSampler,
    /// Exact register sums `α_j`.
    alpha: Vec<i64>,
    /// Noisy registers `α̃_j`.
    alpha_noisy: Vec<i64>,
    steps: usize,
    rng: R,
}

impl<R: Rng> TreeCounter<R> {
    /// A tree counter with explicit per-node noise.
    pub fn new(horizon: usize, noise: NoiseDistribution, rng: R) -> Self {
        let levels = tree_levels(horizon);
        Self {
            horizon,
            levels,
            noise,
            sampler: noise.sampler(),
            alpha: vec![0; levels],
            alpha_noisy: vec![0; levels],
            steps: 0,
            rng,
        }
    }

    /// ρ-zCDP calibration: `σ² = L/(2ρ)` per node (Appendix A).
    pub fn for_zcdp(horizon: usize, rho: Rho, rng: R) -> Self {
        Self::new(horizon, crate::tree_node_noise(horizon, rho), rng)
    }

    /// Pure ε-DP calibration with discrete Laplace node noise — the
    /// original Dwork et al. / Chan et al. construction the paper's
    /// Appendix A notes ("initially described using Laplace noise,
    /// resulting \[in\] a pure (ε, 0)-DP algorithm"). Each element enters at
    /// most `L` nodes, so per-node scale `L/ε` composes to ε-DP.
    pub fn for_pure_dp(horizon: usize, epsilon: longsynth_dp::budget::Epsilon, rng: R) -> Self {
        let levels = tree_levels(horizon) as f64;
        Self::new(
            horizon,
            NoiseDistribution::DiscreteLaplace {
                scale: levels / epsilon.value(),
            },
            rng,
        )
    }

    /// Number of register levels `L`.
    pub fn levels(&self) -> usize {
        self.levels
    }
}

impl<R: Rng + Send> StreamCounter for TreeCounter<R> {
    fn feed(&mut self, z: u64) -> i64 {
        assert!(
            self.steps < self.horizon,
            "counter fed beyond its horizon {}",
            self.horizon
        );
        self.steps += 1;
        let t = self.steps;
        let i = t.trailing_zeros() as usize;
        debug_assert!(i < self.levels, "register index within L by t <= T");

        // Merge completed lower registers into register i and refresh noise.
        let merged: i64 = self.alpha[..i].iter().sum::<i64>() + z as i64;
        for j in 0..i {
            self.alpha[j] = 0;
            self.alpha_noisy[j] = 0;
        }
        self.alpha[i] = merged;
        self.alpha_noisy[i] = merged + self.sampler.sample(&mut self.rng);

        // S̃ᵗ = Σ over set bits of t.
        let mut estimate = 0i64;
        for j in 0..self.levels {
            if (t >> j) & 1 == 1 {
                estimate += self.alpha_noisy[j];
            }
        }
        estimate
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn error_bound(&self, beta: f64) -> f64 {
        // Each prefix sums ≤ L noisy nodes: variance ≤ L·σ². Union bound
        // over the T prefixes (sub-Gaussian for discrete Gaussian noise;
        // conservative for Laplace via its variance).
        let variance = self.levels as f64 * self.noise.variance();
        (2.0 * variance * (2.0 * self.horizon as f64 / beta).ln()).sqrt()
    }

    fn kind(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn noiseless_tree_is_exact() {
        // With zero noise the register algebra must reproduce every prefix
        // sum exactly — this pins down the Algorithm 3 bookkeeping.
        let mut c = TreeCounter::new(100, NoiseDistribution::None, rng_from_seed(1));
        let mut truth = 0i64;
        for t in 1..=100u64 {
            truth += (t % 7) as i64;
            assert_eq!(c.feed(t % 7), truth, "step {t}");
        }
    }

    #[test]
    fn register_count_is_l() {
        let c = TreeCounter::new(12, NoiseDistribution::None, rng_from_seed(1));
        assert_eq!(c.levels(), 4);
        let c = TreeCounter::new(16, NoiseDistribution::None, rng_from_seed(1));
        assert_eq!(c.levels(), 5);
    }

    #[test]
    fn tree_beats_simple_on_long_streams() {
        // At T = 2^14 the asymptotic gap (√T vs √log T) is unambiguous:
        // simple's worst error ≈ √T·σ ≈ 300+, tree's ≈ 50.
        let rho = Rho::new(0.5).unwrap();
        let horizon = 1 << 14;
        let (mut tree_err, mut simple_err) = (0.0, 0.0);
        for seed in 0..6 {
            let mut tree = TreeCounter::for_zcdp(horizon, rho, rng_from_seed(seed));
            let mut simple =
                crate::simple::SimpleCounter::for_zcdp(horizon, rho, rng_from_seed(500 + seed));
            let mut truth = 0i64;
            let (mut worst_tree, mut worst_simple) = (0.0f64, 0.0f64);
            for _ in 0..horizon {
                truth += 1;
                worst_tree = worst_tree.max((tree.feed(1) - truth).abs() as f64);
                worst_simple = worst_simple.max((simple.feed(1) - truth).abs() as f64);
            }
            tree_err += worst_tree;
            simple_err += worst_simple;
        }
        assert!(
            tree_err * 3.0 < simple_err,
            "tree {tree_err} not clearly better than simple {simple_err}"
        );
    }

    #[test]
    fn empirical_error_within_bound() {
        let rho = Rho::new(0.1).unwrap();
        let bound = TreeCounter::for_zcdp(128, rho, rng_from_seed(0)).error_bound(0.01);
        let mut worst = 0.0f64;
        for seed in 0..50 {
            let mut c = TreeCounter::for_zcdp(128, rho, rng_from_seed(700 + seed));
            let mut truth = 0i64;
            for t in 0..128u64 {
                truth += (t % 3) as i64;
                worst = worst.max((c.feed(t % 3) - truth).abs() as f64);
            }
        }
        assert!(worst <= bound, "worst {worst} above bound {bound}");
    }

    #[test]
    fn error_does_not_accumulate_like_a_random_walk() {
        // The tree's defining property: error at late times is comparable
        // to error at early times (both O(√log T)), unlike SimpleCounter.
        let sigma2 = 100.0;
        let noise = NoiseDistribution::DiscreteGaussian { sigma2 };
        let horizon = 1 << 12;
        let (mut early, mut late) = (0.0, 0.0);
        for seed in 0..40 {
            let mut c = TreeCounter::new(horizon, noise, rng_from_seed(seed));
            let mut truth = 0i64;
            for t in 0..horizon {
                truth += 1;
                let err = (c.feed(1) - truth).abs() as f64;
                if t < 256 {
                    early += err;
                } else if t >= horizon - 256 {
                    late += err;
                }
            }
        }
        // Allow some slack: popcount(t) varies, but no √T blow-up.
        assert!(
            late < 3.0 * early,
            "tree error grew like a walk: early {early}, late {late}"
        );
    }

    #[test]
    fn pure_dp_constructor_calibrates_scale() {
        use longsynth_dp::budget::Epsilon;
        let c = TreeCounter::for_pure_dp(12, Epsilon::new(0.5).unwrap(), rng_from_seed(9));
        // L = 4 at T = 12 → scale 8.
        match c.noise {
            NoiseDistribution::DiscreteLaplace { scale } => {
                assert!((scale - 8.0).abs() < 1e-12)
            }
            _ => panic!("expected Laplace"),
        }
        // And it still counts correctly (statistically).
        let mut c = TreeCounter::for_pure_dp(64, Epsilon::new(5.0).unwrap(), rng_from_seed(10));
        let mut truth = 0i64;
        let mut worst = 0i64;
        for _ in 0..64 {
            truth += 2;
            worst = worst.max((c.feed(2) - truth).abs());
        }
        assert!(worst < 60, "pure-DP tree error implausibly large: {worst}");
    }

    #[test]
    fn works_with_laplace_noise() {
        // The original DNPR/CSS counters used Laplace noise; the register
        // algebra is noise-agnostic.
        let noise = NoiseDistribution::DiscreteLaplace { scale: 2.0 };
        let mut c = TreeCounter::new(64, noise, rng_from_seed(5));
        let mut truth = 0i64;
        let mut worst = 0i64;
        for _ in 0..64 {
            truth += 1;
            worst = worst.max((c.feed(1) - truth).abs());
        }
        // Sanity: error bounded by a generous multiple of scale·levels.
        assert!(worst < 200, "implausible Laplace tree error {worst}");
    }

    #[test]
    #[should_panic(expected = "beyond its horizon")]
    fn overfeeding_panics() {
        let mut c = TreeCounter::new(1, NoiseDistribution::None, rng_from_seed(2));
        c.feed(1);
        c.feed(1);
    }
}
