//! The baseline counter: independent noise on every increment.
//!
//! Release `z̃ᵗ = zᵗ + noise` and report `S̃ᵗ = Σ_{j≤t} z̃ʲ`. Each stream
//! element appears in exactly one released value, so per-increment noise
//! `N_Z(0, 1/(2ρ))` suffices for ρ-zCDP — the cheapest privacy analysis and
//! the worst accuracy: the error at time `t` is a sum of `t` independent
//! noises, growing as `√t · σ`.

use crate::StreamCounter;
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::{NoiseDistribution, NoiseSampler};
use longsynth_dp::rng::StdDpRng;
use rand::Rng;

/// Per-increment-noise counter. See module docs.
pub struct SimpleCounter<R: Rng = StdDpRng> {
    horizon: usize,
    noise: NoiseDistribution,
    /// Cached sampler for `noise` (stream-identical, constants hoisted).
    sampler: NoiseSampler,
    running: i64,
    steps: usize,
    rng: R,
}

impl<R: Rng> SimpleCounter<R> {
    /// A counter with explicit per-increment noise.
    pub fn new(horizon: usize, noise: NoiseDistribution, rng: R) -> Self {
        assert!(horizon >= 1, "horizon must be at least 1");
        Self {
            horizon,
            noise,
            sampler: noise.sampler(),
            running: 0,
            steps: 0,
            rng,
        }
    }

    /// ρ-zCDP calibration: one released value per element ⇒
    /// `σ² = 1/(2ρ)`.
    pub fn for_zcdp(horizon: usize, rho: Rho, rng: R) -> Self {
        Self::new(horizon, NoiseDistribution::gaussian_for_zcdp(rho, 1.0), rng)
    }
}

impl<R: Rng + Send> StreamCounter for SimpleCounter<R> {
    fn feed(&mut self, z: u64) -> i64 {
        assert!(
            self.steps < self.horizon,
            "counter fed beyond its horizon {}",
            self.horizon
        );
        self.steps += 1;
        self.running += z as i64 + self.sampler.sample(&mut self.rng);
        self.running
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn error_bound(&self, beta: f64) -> f64 {
        // At time t the error is a sum of t independent draws: variance
        // ≤ T·σ². Union bound over the T released prefixes.
        let variance = self.horizon as f64 * self.noise.variance();
        (2.0 * variance * (2.0 * self.horizon as f64 / beta).ln()).sqrt()
    }

    fn kind(&self) -> &'static str {
        "simple"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn noiseless_counter_is_exact() {
        let mut c = SimpleCounter::new(10, NoiseDistribution::None, rng_from_seed(1));
        let mut truth = 0i64;
        for t in 0..10u64 {
            truth += t as i64;
            assert_eq!(c.feed(t), truth);
        }
    }

    #[test]
    fn error_grows_with_time() {
        // With σ² = 100 over T = 1024 steps, compare average |error| in the
        // first 32 steps vs the last 32: the random walk must visibly widen.
        let mut early = 0.0;
        let mut late = 0.0;
        for seed in 0..40 {
            let mut c = SimpleCounter::new(
                1024,
                NoiseDistribution::DiscreteGaussian { sigma2: 100.0 },
                rng_from_seed(seed),
            );
            let mut truth = 0i64;
            for t in 0..1024 {
                truth += 1;
                let est = c.feed(1);
                let err = (est - truth).abs() as f64;
                if t < 32 {
                    early += err;
                } else if t >= 992 {
                    late += err;
                }
            }
        }
        assert!(
            late > 2.0 * early,
            "random-walk error did not grow: early {early}, late {late}"
        );
    }

    #[test]
    fn empirical_error_within_bound() {
        let rho = Rho::new(0.5).unwrap();
        let mut worst = 0.0f64;
        for seed in 0..50 {
            let mut c = SimpleCounter::for_zcdp(64, rho, rng_from_seed(100 + seed));
            let mut truth = 0i64;
            for _ in 0..64 {
                truth += 3;
                let est = c.feed(3);
                worst = worst.max((est - truth).abs() as f64);
            }
        }
        let bound = SimpleCounter::for_zcdp(64, rho, rng_from_seed(0)).error_bound(0.01);
        assert!(worst <= bound, "worst {worst} above bound {bound}");
    }

    #[test]
    #[should_panic(expected = "beyond its horizon")]
    fn overfeeding_panics() {
        let mut c = SimpleCounter::new(2, NoiseDistribution::None, rng_from_seed(2));
        c.feed(1);
        c.feed(1);
        c.feed(1);
    }
}
