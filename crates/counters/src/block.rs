//! The two-level `√T`-block counter.
//!
//! Partition time into blocks of length `B = ⌈√T⌉`. Release (i) a noisy
//! value for every increment and (ii) a noisy total for every completed
//! block. A prefix sum is then estimated from the ≤ `√T` completed block
//! totals plus the ≤ `B` noisy increments of the current partial block —
//! `O(√T)` noisy terms, i.e. error `O(T^{1/4} σ)`.
//!
//! Each stream element appears in exactly **2** released values (its own
//! increment and its block's total), so ρ-zCDP needs per-node noise
//! `σ² = 2/(2ρ) = 1/ρ`. This is the classic intermediate point between the
//! simple counter and the tree, useful as an ablation baseline.

use crate::StreamCounter;
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::{NoiseDistribution, NoiseSampler};
use longsynth_dp::rng::StdDpRng;
use rand::Rng;

/// Two-level block counter. See module docs.
pub struct BlockCounter<R: Rng = StdDpRng> {
    horizon: usize,
    block_len: usize,
    noise: NoiseDistribution,
    /// Cached sampler for `noise` (stream-identical, constants hoisted).
    sampler: NoiseSampler,
    /// Sum of noisy totals of completed blocks.
    completed_noisy: i64,
    /// Exact running total of the current partial block.
    block_exact: u64,
    /// Sum of noisy increments within the current partial block.
    block_noisy: i64,
    /// Steps taken within the current block.
    block_steps: usize,
    steps: usize,
    rng: R,
}

impl<R: Rng> BlockCounter<R> {
    /// A counter with explicit per-node noise and block length `⌈√T⌉`.
    pub fn new(horizon: usize, noise: NoiseDistribution, rng: R) -> Self {
        assert!(horizon >= 1, "horizon must be at least 1");
        Self {
            horizon,
            block_len: (horizon as f64).sqrt().ceil() as usize,
            noise,
            sampler: noise.sampler(),
            completed_noisy: 0,
            block_exact: 0,
            block_noisy: 0,
            block_steps: 0,
            steps: 0,
            rng,
        }
    }

    /// ρ-zCDP calibration: 2 released values per element ⇒ `σ² = 1/ρ`.
    pub fn for_zcdp(horizon: usize, rho: Rho, rng: R) -> Self {
        assert!(rho.value() > 0.0);
        Self::new(
            horizon,
            NoiseDistribution::DiscreteGaussian {
                sigma2: 1.0 / rho.value(),
            },
            rng,
        )
    }

    /// The block length `B` in use.
    pub fn block_len(&self) -> usize {
        self.block_len
    }
}

impl<R: Rng + Send> StreamCounter for BlockCounter<R> {
    fn feed(&mut self, z: u64) -> i64 {
        assert!(
            self.steps < self.horizon,
            "counter fed beyond its horizon {}",
            self.horizon
        );
        self.steps += 1;
        self.block_steps += 1;
        self.block_exact += z;
        self.block_noisy += z as i64 + self.sampler.sample(&mut self.rng);
        let estimate = self.completed_noisy + self.block_noisy;
        if self.block_steps == self.block_len {
            // Close the block: release one fresh-noise total for it and
            // discard the per-increment noise.
            self.completed_noisy += self.block_exact as i64 + self.sampler.sample(&mut self.rng);
            self.block_exact = 0;
            self.block_noisy = 0;
            self.block_steps = 0;
        }
        estimate
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn error_bound(&self, beta: f64) -> f64 {
        // At most ⌈T/B⌉ block totals + B in-block increments contribute.
        let blocks = self.horizon.div_ceil(self.block_len) as f64;
        let terms = blocks + self.block_len as f64;
        let variance = terms * self.noise.variance();
        (2.0 * variance * (2.0 * self.horizon as f64 / beta).ln()).sqrt()
    }

    fn kind(&self) -> &'static str {
        "block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn noiseless_counter_is_exact_across_block_boundaries() {
        let mut c = BlockCounter::new(17, NoiseDistribution::None, rng_from_seed(1));
        assert_eq!(c.block_len(), 5); // ⌈√17⌉
        let mut truth = 0i64;
        for t in 1..=17u64 {
            truth += t as i64;
            assert_eq!(c.feed(t), truth, "step {t}");
        }
    }

    #[test]
    fn block_error_beats_simple_on_long_streams() {
        // Same ρ, T = 16384: block releases Θ(√T) noisy nodes vs simple's Θ(T). Compare
        // the worst error over the run, averaged over seeds.
        let rho = Rho::new(0.5).unwrap();
        let horizon = 16_384;
        let mut simple_err = 0.0;
        let mut block_err = 0.0;
        for seed in 0..10 {
            let mut simple =
                crate::simple::SimpleCounter::for_zcdp(horizon, rho, rng_from_seed(seed));
            let mut block = BlockCounter::for_zcdp(horizon, rho, rng_from_seed(1000 + seed));
            let mut truth = 0i64;
            let mut worst_simple = 0.0f64;
            let mut worst_block = 0.0f64;
            for _ in 0..horizon {
                truth += 1;
                worst_simple = worst_simple.max((simple.feed(1) - truth).abs() as f64);
                worst_block = worst_block.max((block.feed(1) - truth).abs() as f64);
            }
            simple_err += worst_simple;
            block_err += worst_block;
        }
        assert!(
            block_err * 2.0 < simple_err,
            "block {block_err} not clearly better than simple {simple_err}"
        );
    }

    #[test]
    fn empirical_error_within_bound() {
        let rho = Rho::new(0.2).unwrap();
        let bound = BlockCounter::for_zcdp(100, rho, rng_from_seed(0)).error_bound(0.01);
        let mut worst = 0.0f64;
        for seed in 0..50 {
            let mut c = BlockCounter::for_zcdp(100, rho, rng_from_seed(300 + seed));
            let mut truth = 0i64;
            for _ in 0..100 {
                truth += 2;
                worst = worst.max((c.feed(2) - truth).abs() as f64);
            }
        }
        assert!(worst <= bound, "worst {worst} above bound {bound}");
    }

    #[test]
    fn horizon_one_degenerates_gracefully() {
        let mut c = BlockCounter::new(1, NoiseDistribution::None, rng_from_seed(2));
        assert_eq!(c.feed(7), 7);
    }

    #[test]
    #[should_panic(expected = "beyond its horizon")]
    fn overfeeding_panics() {
        let mut c = BlockCounter::new(1, NoiseDistribution::None, rng_from_seed(3));
        c.feed(1);
        c.feed(1);
    }
}
