//! Honaker-style variance-optimal tree counter.
//!
//! Reference \[32\] of the paper (Honaker, *Efficient Use of Differentially
//! Private Binary Trees*, 2015) observes that the plain tree mechanism
//! throws information away: when a dyadic block completes, the mechanism
//! has noisy values for the block *and* for both of its completed children,
//! and the inverse-variance-weighted combination
//!
//! ```text
//! x̂_v = w·x̃_v + (1−w)·(x̂_left + x̂_right),   w = v_child / (v_child + σ²),
//! ```
//!
//! where `v_child = 2·Var[x̂_child]`, has strictly smaller variance than
//! `x̃_v` alone: `Var[x̂] → σ²/2` at high levels. §1.1 of the paper invites
//! exactly this swap ("using them in place of the tree counter in our work
//! may yield improved practical results"); the `ablation_counters` bench
//! measures the improvement.
//!
//! Privacy is identical to the plain tree: the *released* noisy node values
//! are the same (one per completed dyadic block, each element in at most
//! `L` of them); the combination is post-processing.

use crate::{tree_levels, StreamCounter};
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::{NoiseDistribution, NoiseSampler};
use longsynth_dp::rng::StdDpRng;
use rand::Rng;

/// Tree counter with Honaker bottom-up node refinement. See module docs.
pub struct HonakerCounter<R: Rng = StdDpRng> {
    horizon: usize,
    levels: usize,
    noise: NoiseDistribution,
    /// Cached sampler for `noise` (stream-identical, constants hoisted).
    sampler: NoiseSampler,
    /// Exact running sum of the current (incomplete) block, per level.
    partial: Vec<u64>,
    /// Improved estimates of completed blocks, per level, in block order.
    improved: Vec<Vec<f64>>,
    /// `Var[x̂]` per level (deterministic given σ²).
    var_by_level: Vec<f64>,
    steps: usize,
    rng: R,
}

impl<R: Rng> HonakerCounter<R> {
    /// A counter with explicit per-node noise.
    pub fn new(horizon: usize, noise: NoiseDistribution, rng: R) -> Self {
        let levels = tree_levels(horizon);
        let sigma2 = noise.variance();
        // v_0 = σ²; v_i = 1 / (1/σ² + 1/(2·v_{i-1})).
        let mut var_by_level = Vec::with_capacity(levels);
        for i in 0..levels {
            let v = if i == 0 || sigma2 == 0.0 {
                sigma2
            } else {
                1.0 / (1.0 / sigma2 + 1.0 / (2.0 * var_by_level[i - 1]))
            };
            var_by_level.push(v);
        }
        Self {
            horizon,
            levels,
            noise,
            sampler: noise.sampler(),
            partial: vec![0; levels],
            improved: vec![Vec::new(); levels],
            var_by_level,
            steps: 0,
            rng,
        }
    }

    /// ρ-zCDP calibration, same node noise as the plain tree:
    /// `σ² = L/(2ρ)`.
    pub fn for_zcdp(horizon: usize, rho: Rho, rng: R) -> Self {
        Self::new(horizon, crate::tree_node_noise(horizon, rho), rng)
    }

    /// Variance of the improved estimate at `level` (exposed for tests and
    /// the ablation bench's analytic comparison).
    pub fn improved_variance(&self, level: usize) -> f64 {
        self.var_by_level[level]
    }
}

impl<R: Rng + Send> StreamCounter for HonakerCounter<R> {
    fn feed(&mut self, z: u64) -> i64 {
        assert!(
            self.steps < self.horizon,
            "counter fed beyond its horizon {}",
            self.horizon
        );
        self.steps += 1;
        let t = self.steps;

        for level in 0..self.levels {
            self.partial[level] += z;
        }
        // Close every block that completes at t (levels i with 2^i | t).
        for level in 0..self.levels {
            if !t.is_multiple_of(1usize << level) {
                break;
            }
            let exact = self.partial[level];
            let noisy = exact as f64 + self.sampler.sample(&mut self.rng) as f64;
            let est = if level == 0 || self.noise.is_none() {
                noisy
            } else {
                // Children: blocks 2m-1, 2m at level-1 (0-indexed: 2m-2,
                // 2m-1) where m is this block's 1-based index.
                let m = t >> level;
                let left = self.improved[level - 1][2 * m - 2];
                let right = self.improved[level - 1][2 * m - 1];
                let sigma2 = self.noise.variance();
                let v_child = 2.0 * self.var_by_level[level - 1];
                let w = v_child / (v_child + sigma2);
                w * noisy + (1.0 - w) * (left + right)
            };
            self.improved[level].push(est);
            self.partial[level] = 0;
        }

        // Fenwick decomposition of [1, t] into completed dyadic blocks.
        let mut estimate = 0.0;
        let mut rem = t;
        while rem > 0 {
            let level = rem.trailing_zeros() as usize;
            let index = (rem >> level) - 1;
            estimate += self.improved[level][index];
            rem -= 1 << level;
        }
        estimate.round() as i64
    }

    fn steps(&self) -> usize {
        self.steps
    }

    fn horizon(&self) -> usize {
        self.horizon
    }

    fn error_bound(&self, beta: f64) -> f64 {
        // Variance per prefix ≤ Σ over used levels of v_level ≤ L·σ²; the
        // plain-tree bound is therefore still valid (and conservative).
        let variance = self.levels as f64 * self.noise.variance();
        (2.0 * variance * (2.0 * self.horizon as f64 / beta).ln()).sqrt()
    }

    fn kind(&self) -> &'static str {
        "honaker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn noiseless_honaker_is_exact() {
        let mut c = HonakerCounter::new(100, NoiseDistribution::None, rng_from_seed(1));
        let mut truth = 0i64;
        for t in 1..=100u64 {
            truth += (t % 5) as i64;
            assert_eq!(c.feed(t % 5), truth, "step {t}");
        }
    }

    #[test]
    fn improved_variance_decreases_with_level() {
        let c = HonakerCounter::new(
            1 << 10,
            NoiseDistribution::DiscreteGaussian { sigma2: 100.0 },
            rng_from_seed(1),
        );
        let mut prev = f64::INFINITY;
        for level in 0..c.levels {
            let v = c.improved_variance(level);
            assert!(v <= prev + 1e-12, "level {level}: {v} > {prev}");
            assert!(v >= 50.0, "variance cannot drop below σ²/2");
            prev = v;
        }
        // Level 0 is exactly σ²; deep levels approach σ²/2.
        assert!((c.improved_variance(0) - 100.0).abs() < 1e-9);
        assert!(c.improved_variance(c.levels - 1) < 70.0);
    }

    #[test]
    fn honaker_beats_plain_tree_on_average() {
        // Same per-node noise; measure mean absolute prefix error over a
        // long run, averaged over seeds. Honaker must be at least a few
        // percent better.
        let noise = NoiseDistribution::DiscreteGaussian { sigma2: 400.0 };
        let horizon = 1 << 11;
        let (mut tree_err, mut honaker_err) = (0.0, 0.0);
        for seed in 0..20 {
            let mut tree = crate::tree::TreeCounter::new(horizon, noise, rng_from_seed(seed));
            let mut honaker = HonakerCounter::new(horizon, noise, rng_from_seed(9000 + seed));
            let mut truth = 0i64;
            for _ in 0..horizon {
                truth += 1;
                tree_err += (tree.feed(1) - truth).abs() as f64;
                honaker_err += (honaker.feed(1) - truth).abs() as f64;
            }
        }
        assert!(
            honaker_err < 0.97 * tree_err,
            "honaker {honaker_err} not better than tree {tree_err}"
        );
    }

    #[test]
    fn empirical_error_within_bound() {
        let rho = Rho::new(0.1).unwrap();
        let bound = HonakerCounter::for_zcdp(128, rho, rng_from_seed(0)).error_bound(0.01);
        let mut worst = 0.0f64;
        for seed in 0..50 {
            let mut c = HonakerCounter::for_zcdp(128, rho, rng_from_seed(800 + seed));
            let mut truth = 0i64;
            for _ in 0..128 {
                truth += 1;
                worst = worst.max((c.feed(1) - truth).abs() as f64);
            }
        }
        assert!(worst <= bound, "worst {worst} above bound {bound}");
    }

    #[test]
    fn non_power_of_two_horizon() {
        let mut c = HonakerCounter::new(13, NoiseDistribution::None, rng_from_seed(3));
        let mut truth = 0i64;
        for _ in 0..13 {
            truth += 2;
            assert_eq!(c.feed(2), truth);
        }
    }

    #[test]
    #[should_panic(expected = "beyond its horizon")]
    fn overfeeding_panics() {
        let mut c = HonakerCounter::new(1, NoiseDistribution::None, rng_from_seed(2));
        c.feed(1);
        c.feed(1);
    }
}
