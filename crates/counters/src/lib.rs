//! Differentially private stream counters under continual observation.
//!
//! A *stream counter* (paper, Appendix A) receives a stream `z¹, z², …, z^T`
//! of natural numbers and must release an estimate `S̃ᵗ` of every prefix sum
//! `Sᵗ = Σ_{j≤t} z^j` as it goes. Neighbouring streams differ by at most 1
//! in a single entry; a counter is ρ-zCDP when its whole output sequence is
//! insensitive to such a change.
//!
//! Algorithm 2 of the paper consumes one counter per Hamming-weight
//! threshold `b`, and §1.1 explicitly notes that *any* counter can be
//! plugged in ("using them in place of the tree counter in our work may
//! yield improved practical results"). This crate provides four:
//!
//! | Counter | Released noise per element | Error at time `t` |
//! |---|---|---|
//! | [`simple::SimpleCounter`]   | 1 node  | `Θ(√t · σ)` |
//! | [`block::BlockCounter`]     | 2 nodes | `Θ(T^{1/4} · σ)` |
//! | [`tree::TreeCounter`]       | `L = ⌊log₂T⌋+1` nodes | `O(√(log T) · σ)` |
//! | [`honaker::HonakerCounter`] | `L` nodes | tree, improved constants |
//!
//! plus the [`monotone::MonotoneCounter`] wrapper implementing the
//! Chan–Shi–Song running-max post-processing that the paper's §4
//! monotonization generalises.
//!
//! All counters emit *integer* estimates (the noise is integer-valued), so
//! downstream consistency arithmetic stays exact.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod block;
pub mod honaker;
pub mod monotone;
pub mod simple;
pub mod tree;

use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::NoiseDistribution;

/// Number of binary-counter registers (tree levels) a length-`horizon`
/// stream needs: `L = ⌊log₂ T⌋ + 1`, the number of bits of `T`.
///
/// `L` is the zCDP sensitivity multiplier of the tree mechanism: one stream
/// element enters at most `L` released node values over the run.
pub fn tree_levels(horizon: usize) -> usize {
    assert!(horizon >= 1, "horizon must be at least 1");
    (usize::BITS - horizon.leading_zeros()) as usize
}

/// The per-node discrete Gaussian noise for a ρ-zCDP tree counter over a
/// length-`horizon` stream: `σ² = L / (2ρ)` (paper Appendix A, with
/// `L ≈ log T`).
pub fn tree_node_noise(horizon: usize, rho: Rho) -> NoiseDistribution {
    let levels = tree_levels(horizon) as f64;
    NoiseDistribution::DiscreteGaussian {
        sigma2: levels / (2.0 * rho.value()),
    }
}

/// An online differentially private prefix-sum estimator.
///
/// The object-safety of this trait is what lets the cumulative synthesizer
/// hold `T` heterogeneous counters behind `Box<dyn StreamCounter>`.
// `Send` is part of the contract: Algorithm 2 runs one counter per
// threshold, and the sharded engine moves whole synthesizers (counters
// included) across worker threads. Every provided counter is a plain
// struct of integers plus an owned RNG, so the bound costs nothing.
pub trait StreamCounter: Send {
    /// Feed the increment for the next time step and return the noisy
    /// estimate `S̃ᵗ` of the running total.
    ///
    /// # Panics
    /// Implementations panic when fed more than `horizon()` steps.
    fn feed(&mut self, z: u64) -> i64;

    /// Steps fed so far.
    fn steps(&self) -> usize;

    /// The stream length this counter was configured for.
    fn horizon(&self) -> usize;

    /// A deviation `λ` such that, with probability ≥ 1 − β,
    /// `|S̃ᵗ − Sᵗ| ≤ λ` *simultaneously for every* `t ≤ horizon` (the
    /// `(α, β)`-accuracy of Definition A.1, union-bounded over the run).
    fn error_bound(&self, beta: f64) -> f64;

    /// Short identifier for reports ("tree", "simple", …).
    fn kind(&self) -> &'static str;
}

/// Which counter family to instantiate — used by the cumulative
/// synthesizer's configuration and the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Independent noise per increment.
    Simple,
    /// Two-level `√T`-block decomposition.
    Block,
    /// Binary-tree aggregation (the paper's Algorithm 3).
    Tree,
    /// Tree with Honaker-style variance-optimal node combination.
    Honaker,
}

impl CounterKind {
    /// Instantiate a ρ-zCDP counter of this kind over `horizon` steps,
    /// drawing noise from `rng`.
    pub fn build(
        self,
        horizon: usize,
        rho: Rho,
        rng: longsynth_dp::rng::StdDpRng,
    ) -> Box<dyn StreamCounter> {
        match self {
            CounterKind::Simple => Box::new(simple::SimpleCounter::for_zcdp(horizon, rho, rng)),
            CounterKind::Block => Box::new(block::BlockCounter::for_zcdp(horizon, rho, rng)),
            CounterKind::Tree => Box::new(tree::TreeCounter::for_zcdp(horizon, rho, rng)),
            CounterKind::Honaker => Box::new(honaker::HonakerCounter::for_zcdp(horizon, rho, rng)),
        }
    }

    /// All kinds, for sweep-style benches.
    pub fn all() -> [CounterKind; 4] {
        [
            CounterKind::Simple,
            CounterKind::Block,
            CounterKind::Tree,
            CounterKind::Honaker,
        ]
    }
}

impl std::fmt::Display for CounterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            CounterKind::Simple => "simple",
            CounterKind::Block => "block",
            CounterKind::Tree => "tree",
            CounterKind::Honaker => "honaker",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn levels_are_bit_lengths() {
        assert_eq!(tree_levels(1), 1);
        assert_eq!(tree_levels(2), 2);
        assert_eq!(tree_levels(3), 2);
        assert_eq!(tree_levels(4), 3);
        assert_eq!(tree_levels(12), 4);
        assert_eq!(tree_levels(16), 5);
        assert_eq!(tree_levels(1 << 20), 21);
    }

    #[test]
    fn node_noise_calibration() {
        // T = 12, ρ = 0.005: L = 4, σ² = 4 / 0.01 = 400.
        let noise = tree_node_noise(12, Rho::new(0.005).unwrap());
        match noise {
            NoiseDistribution::DiscreteGaussian { sigma2 } => {
                assert!((sigma2 - 400.0).abs() < 1e-9)
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn kinds_build_working_counters() {
        for kind in CounterKind::all() {
            let mut counter = kind.build(8, Rho::new(1.0).unwrap(), rng_from_seed(1));
            assert_eq!(counter.horizon(), 8);
            assert_eq!(counter.steps(), 0);
            for _ in 0..8 {
                counter.feed(1);
            }
            assert_eq!(counter.steps(), 8);
            assert!(counter.error_bound(0.05) > 0.0);
            assert_eq!(format!("{kind}"), counter.kind());
        }
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn zero_horizon_rejected() {
        tree_levels(0);
    }
}
