//! Single-stream monotonization (Chan–Shi–Song).
//!
//! True prefix sums of non-negative increments never decrease, but noisy
//! estimates can. [`MonotoneCounter`] post-processes any counter with the
//! running max `Ŝᵗ = max(S̃ᵗ, Ŝᵗ⁻¹)`, which the paper's §4 cites ("a
//! similar idea for maintaining consistency for a single stream counter was
//! shown in \[15\] not to increase the error in any of the counts produced").
//!
//! The *cross-counter* monotonization of Algorithm 2 (clamping against the
//! `b−1` counter as well) couples multiple counters and therefore lives in
//! the core crate; this wrapper is its single-stream special case and is
//! used by tests to verify the Lemma 4.2 error-domination argument in
//! isolation.

use crate::StreamCounter;

/// Running-max wrapper around any [`StreamCounter`].
pub struct MonotoneCounter<C: StreamCounter> {
    inner: C,
    best: Option<i64>,
}

impl<C: StreamCounter> MonotoneCounter<C> {
    /// Wrap `inner`.
    pub fn new(inner: C) -> Self {
        Self { inner, best: None }
    }

    /// Access the wrapped counter.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: StreamCounter> StreamCounter for MonotoneCounter<C> {
    fn feed(&mut self, z: u64) -> i64 {
        let raw = self.inner.feed(z);
        let clamped = match self.best {
            Some(prev) => raw.max(prev),
            None => raw,
        };
        self.best = Some(clamped);
        clamped
    }

    fn steps(&self) -> usize {
        self.inner.steps()
    }

    fn horizon(&self) -> usize {
        self.inner.horizon()
    }

    fn error_bound(&self, beta: f64) -> f64 {
        // Lemma 4.2 (with the upper clamp removed): the running max never
        // has larger error than the raw counter's worst error so far.
        self.inner.error_bound(beta)
    }

    fn kind(&self) -> &'static str {
        "monotone"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeCounter;
    use longsynth_dp::mechanisms::NoiseDistribution;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn outputs_never_decrease() {
        let noise = NoiseDistribution::DiscreteGaussian { sigma2: 1000.0 };
        let mut c = MonotoneCounter::new(TreeCounter::new(256, noise, rng_from_seed(1)));
        let mut prev = i64::MIN;
        for _ in 0..256 {
            let est = c.feed(0); // zero increments: raw estimates pure noise
            assert!(est >= prev);
            prev = est;
        }
    }

    #[test]
    fn error_domination_lemma_holds_pointwise() {
        // Replay the same noise in a raw and a wrapped counter and check
        // |Ŝᵗ − Sᵗ| ≤ max_{r ≤ t} |S̃ʳ − Sʳ| at every step — the
        // single-stream instance of Lemma 4.2.
        let noise = NoiseDistribution::DiscreteGaussian { sigma2: 400.0 };
        for seed in 0..20 {
            let mut raw = TreeCounter::new(128, noise, rng_from_seed(seed));
            let mut wrapped =
                MonotoneCounter::new(TreeCounter::new(128, noise, rng_from_seed(seed)));
            let mut truth = 0i64;
            let mut worst_raw = 0i64;
            for t in 0..128u64 {
                let z = t % 2;
                truth += z as i64;
                let raw_est = raw.feed(z);
                let mono_est = wrapped.feed(z);
                worst_raw = worst_raw.max((raw_est - truth).abs());
                assert!(
                    (mono_est - truth).abs() <= worst_raw,
                    "seed {seed}, t {t}: monotone error exceeds raw running max"
                );
            }
        }
    }

    #[test]
    fn exact_counter_passes_through() {
        let mut c = MonotoneCounter::new(TreeCounter::new(
            50,
            NoiseDistribution::None,
            rng_from_seed(3),
        ));
        let mut truth = 0i64;
        for t in 0..50u64 {
            truth += (t % 4) as i64;
            assert_eq!(c.feed(t % 4), truth);
        }
        assert_eq!(c.kind(), "monotone");
        assert_eq!(c.inner().kind(), "tree");
        assert_eq!(c.steps(), 50);
        assert_eq!(c.horizon(), 50);
    }
}
