//! Property-based tests for the stream counters.

use longsynth_counters::monotone::MonotoneCounter;
use longsynth_counters::tree::TreeCounter;
use longsynth_counters::{tree_levels, CounterKind, StreamCounter};
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::NoiseDistribution;
use longsynth_dp::rng::rng_from_seed;
use proptest::prelude::*;

proptest! {
    /// Every counter kind, fed a noiseless... — counters are private, so
    /// instead: with any seed, every counter's outputs stay within its own
    /// a-priori β = 1e-6 bound on moderate streams (a smoke-level
    /// statistical check that would catch calibration mistakes of ~3x).
    #[test]
    fn outputs_within_self_reported_bound(
        seed in any::<u64>(),
        horizon in 1usize..200,
    ) {
        let rho = Rho::new(1.0).unwrap();
        for kind in CounterKind::all() {
            let mut c = kind.build(horizon, rho, rng_from_seed(seed));
            let bound = c.error_bound(1e-6);
            let mut truth = 0i64;
            for t in 0..horizon as u64 {
                let z = t % 3;
                truth += z as i64;
                let est = c.feed(z);
                prop_assert!(
                    ((est - truth).abs() as f64) <= bound,
                    "{} at t={}: |{} - {}| > {}", kind, t, est, truth, bound
                );
            }
        }
    }

    /// Noiseless counters are exact prefix summers for arbitrary streams.
    #[test]
    fn noiseless_counters_are_exact(
        stream in proptest::collection::vec(0u64..20, 1..300),
    ) {
        let horizon = stream.len();
        let mut counters: Vec<Box<dyn StreamCounter>> = vec![
            Box::new(longsynth_counters::simple::SimpleCounter::new(
                horizon, NoiseDistribution::None, rng_from_seed(1))),
            Box::new(longsynth_counters::block::BlockCounter::new(
                horizon, NoiseDistribution::None, rng_from_seed(2))),
            Box::new(TreeCounter::new(horizon, NoiseDistribution::None, rng_from_seed(3))),
            Box::new(longsynth_counters::honaker::HonakerCounter::new(
                horizon, NoiseDistribution::None, rng_from_seed(4))),
        ];
        let mut truth = 0i64;
        for &z in &stream {
            truth += z as i64;
            for c in counters.iter_mut() {
                prop_assert_eq!(c.feed(z), truth, "counter {}", c.kind());
            }
        }
    }

    /// Counters are deterministic in their seed.
    #[test]
    fn counters_are_deterministic(seed in any::<u64>(), horizon in 1usize..100) {
        let rho = Rho::new(0.5).unwrap();
        for kind in CounterKind::all() {
            let mut a = kind.build(horizon, rho, rng_from_seed(seed));
            let mut b = kind.build(horizon, rho, rng_from_seed(seed));
            for t in 0..horizon as u64 {
                prop_assert_eq!(a.feed(t % 2), b.feed(t % 2));
            }
        }
    }

    /// Monotone wrapper: outputs non-decreasing, and error dominated by the
    /// raw counter's running worst error (Lemma 4.2, single-stream case).
    #[test]
    fn monotone_wrapper_contract(seed in any::<u64>(), horizon in 1usize..150) {
        let noise = NoiseDistribution::DiscreteGaussian { sigma2: 250.0 };
        let mut raw = TreeCounter::new(horizon, noise, rng_from_seed(seed));
        let mut mono = MonotoneCounter::new(TreeCounter::new(horizon, noise, rng_from_seed(seed)));
        let mut truth = 0i64;
        let mut prev = i64::MIN;
        let mut worst_raw = 0i64;
        for t in 0..horizon as u64 {
            let z = u64::from(t % 5 == 0);
            truth += z as i64;
            let r = raw.feed(z);
            let m = mono.feed(z);
            worst_raw = worst_raw.max((r - truth).abs());
            prop_assert!(m >= prev);
            prop_assert!((m - truth).abs() <= worst_raw);
            prev = m;
        }
    }

    /// tree_levels is the bit length: 2^(L-1) ≤ T < 2^L.
    #[test]
    fn levels_bracket_horizon(horizon in 1usize..1_000_000) {
        let levels = tree_levels(horizon);
        prop_assert!(1usize << (levels - 1) <= horizon);
        prop_assert!(horizon < (1usize << levels));
    }

    /// Feeding an all-zero stream keeps every estimate near zero: counters
    /// must not leak systematic bias.
    #[test]
    fn zero_stream_estimates_centered(seed in any::<u64>()) {
        let rho = Rho::new(1.0).unwrap();
        let horizon = 64;
        for kind in CounterKind::all() {
            let mut c = kind.build(horizon, rho, rng_from_seed(seed));
            let mut sum = 0i64;
            for _ in 0..horizon {
                sum += c.feed(0);
            }
            let mean = sum as f64 / horizon as f64;
            let bound = c.error_bound(1e-6);
            prop_assert!(mean.abs() <= bound, "{}: mean {} vs bound {}", kind, mean, bound);
        }
    }
}
