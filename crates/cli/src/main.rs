//! `longsynth-cli`: continual DP synthetic data release from the command
//! line.
//!
//! ```text
//! longsynth-cli fixed-window --input panel.csv --rho 0.005 --window 3 \
//!     --output synthetic.csv [--estimates estimates.csv] [--seed 42]
//! longsynth-cli cumulative   --input panel.csv --rho 0.005 \
//!     --output synthetic.csv [--estimates estimates.csv] [--seed 42]
//! longsynth-cli engine       --input panel.csv --rho 0.005 --shards 4 \
//!     [--algorithm fixed-window|cumulative] [--window 3] \
//!     [--output synthetic.csv] [--estimates estimates.csv] [--seed 42]
//! longsynth-cli serve        --input panel.csv --rho 0.005 --shards 4 \
//!     [--algorithm fixed-window|cumulative] [--queries 1000] \
//!     [--pool-threads 4] [--snapshot store.json] [--seed 42]
//! longsynth-cli simulate     --households 23374 --months 12 --output panel.csv
//! ```
//!
//! Input panels are plain 0/1 CSV (one row per individual, one column per
//! round; header and id column auto-detected); SIPP public-use files load
//! with `--sipp`. The released synthetic panel is written in the same
//! format (fixed-window output carries a public `padding` column).

use longsynth::{
    CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig, FixedWindowSynthesizer,
};
use longsynth_data::csvio::{read_panel_csv, write_panel_csv};
use longsynth_data::generators::iid_bernoulli;
use longsynth_data::sipp::{load_sipp_csv, SippConfig};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{
    AggregationPolicy, EngineObserver, IngestDriver, PanelSchedule, ShardPlan, ShardedEngine,
    SlotRole,
};
use longsynth_ingest::{
    BitRoundAssembler, Event, IngestConfig, IngestTier, LatePolicy, WindowSpec,
};
use longsynth_obs::{BudgetLedger, MetricsRegistry};
use longsynth_pool::WorkerPool;
use longsynth_queries::cumulative::cumulative_counts;
use longsynth_queries::window::quarterly_battery;
use longsynth_queries::{active_weighted_mean, AccuracyComparison, ErrorSummary};
use longsynth_serve::{EvictionPolicy, QueryService, ServeQuery};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  longsynth-cli fixed-window --input PANEL.csv --rho R [--window K] [--output OUT.csv]
                             [--estimates EST.csv] [--seed N] [--sipp] [--beta B]
  longsynth-cli cumulative   --input PANEL.csv --rho R [--output OUT.csv]
                             [--estimates EST.csv] [--seed N] [--sipp] [--max-b B]
  longsynth-cli engine       --input PANEL.csv --rho R --shards S
                             [--algorithm fixed-window|cumulative] [--window K]
                             [--aggregation per-shard|shared|shared:P]
                             [--panel rotating:W]
                             [--output OUT.csv] [--estimates EST.csv] [--seed N]
                             [--sipp] [--beta B] [--max-b B] [--metrics M.jsonl]
  longsynth-cli serve        --input PANEL.csv --rho R --shards S
                             [--algorithm fixed-window|cumulative] [--window K]
                             [--aggregation per-shard|shared|shared:P]
                             [--panel rotating:W] [--eviction fifo|lru]
                             [--queries N] [--pool-threads P] [--snapshot OUT.json]
                             [--seed N] [--sipp] [--beta B] [--max-b B]
                             [--metrics M.jsonl]
  longsynth-cli ingest       --rho R [--individuals N] [--rounds T] [--shards S]
                             [--window W:S] [--t0 MS] [--late-policy drop|grace:G]
                             [--queue-cap N] [--producers P] [--rate F]
                             [--aggregation per-shard|shared|shared:P]
                             [--queries N] [--pool-threads P] [--seed N]
                             [--metrics M.jsonl]
  longsynth-cli stats        --metrics M.jsonl [--fail-on-late]
  longsynth-cli simulate     [--households N] [--months T] [--seed N] --output PANEL.csv

The panel CSV has one row per individual and one 0/1 column per round
(header / id column auto-detected). --sipp parses a Census SIPP public-use
file instead, applying the paper's pre-processing.

`engine` partitions the panel into S cohorts, synthesizes them in parallel
(one synthesizer per shard), and writes the merged population-level release;
disjoint cohorts give the same user-level zCDP guarantee as one shard.
--aggregation picks where noise goes: per-shard (default; cohort releases
concatenate, population queries pay ~sqrt(S) extra noise) or shared (one
population-level noise draw over summed cohort aggregates, recovering
unsharded population accuracy; P is the population budget share, default
0.8). Both engine runs print a per-policy population-query error summary
against the true panel.

--panel rotating:W runs a **dynamic panel** instead of a static one
(cumulative algorithm only): W overlapping waves are active at every round,
one wave retires and a fresh one enters each round (SIPP/CPS-style
rotation), and the panel's rows are divided across the W+T-1 wave cohorts
(W must not exceed the round count). The per-individual budget cap still
holds: each individual lives in exactly one wave. Under per-shard noise,
population answers pool the cohorts covering each round; under
--aggregation shared the engine runs a **windowed population synthesizer**
whose statistics forget each retiring wave, so the active-set release
carries a single population-level noise draw per round.

`serve` runs the engine with the release store attached, then drives a batch
of concurrent window/cumulative queries against the stored releases through
the shared worker pool — cold (empty cache) and cached — and reports
queries/sec for both. --eviction picks the memo-cache eviction policy
(fifo default, lru for skewed traffic). --snapshot additionally writes the
store as JSON, restores it, and verifies the restored answers are
bit-identical.

`ingest` runs the event-time pipeline end to end: a synthetic timestamped
event stream (N individuals over T rounds at activity rate F, event times
jittered inside each round's window starting at epoch --t0 ms) flows from P
concurrent producers through a --queue-cap-bounded queue with backpressure,
is watermark-sealed into rounds by the event-time window spec --window
(width:slide in ms; one value means tumbling), stepped through the sharded
cumulative engine as each round seals, and served through the query layer.
--late-policy drop (default) drops-and-counts events that miss a sealed
window; grace:G holds every seal back G ms of event time. See
docs/INGEST.md for the semantics.

--metrics M.jsonl (engine, serve, and ingest) turns on the observability
layer:
round-phase latency histograms, worker-pool queue/latency/panic counters,
serving cache and ingest counters, and the privacy-budget audit ledger. At
the end of the run the metrics and ledger events are written as JSONL to M
and a Prometheus text dump to M with a .prom extension. `stats` reads such
a JSONL file back and prints a summary (exits nonzero on malformed input);
with --fail-on-late it also exits nonzero when ingest_late_events_total > 0,
catching silent event loss in CI smoke runs.";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let command = args.remove(0);
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(msg) => return fail(&msg),
    };
    let result = match command.as_str() {
        "fixed-window" => run_fixed_window(&flags),
        "cumulative" => run_cumulative(&flags),
        "engine" => run_engine(&flags),
        "serve" => run_serve(&flags),
        "ingest" => run_ingest(&flags),
        "stats" => run_stats(&flags),
        "simulate" => run_simulate(&flags),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => fail(&msg),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(2)
}

type Flags = HashMap<String, String>;

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(format!("unexpected positional argument {arg:?}"));
        };
        // Boolean flags take no value.
        if name == "sipp" || name == "fail-on-late" {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn get_parsed<T: std::str::FromStr>(flags: &Flags, name: &str, default: T) -> Result<T, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {raw:?}")),
    }
}

fn load_input(flags: &Flags, horizon_hint: usize) -> Result<LongitudinalDataset, String> {
    let input: PathBuf = flags
        .get("input")
        .map(PathBuf::from)
        .ok_or("--input is required")?;
    if flags.contains_key("sipp") {
        load_sipp_csv(&input, horizon_hint).map_err(|e| e.to_string())
    } else {
        let file =
            std::fs::File::open(&input).map_err(|e| format!("opening {}: {e}", input.display()))?;
        read_panel_csv(std::io::BufReader::new(file)).map_err(|e| e.to_string())
    }
}

fn open_output(
    flags: &Flags,
    name: &str,
) -> Result<Option<std::io::BufWriter<std::fs::File>>, String> {
    match flags.get(name) {
        None => Ok(None),
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("creating {path}: {e}"))?;
            Ok(Some(std::io::BufWriter::new(file)))
        }
    }
}

fn run_fixed_window(flags: &Flags) -> Result<(), String> {
    let rho_v: f64 = get_parsed(flags, "rho", f64::NAN)?;
    if rho_v.is_nan() {
        return Err("--rho is required".into());
    }
    let window: usize = get_parsed(flags, "window", 3)?;
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    let beta: f64 = get_parsed(flags, "beta", 0.05)?;
    let months_hint: usize = get_parsed(flags, "months", 12)?;
    let panel = load_input(flags, months_hint)?;
    let horizon = panel.rounds();
    eprintln!(
        "panel: {} individuals x {} rounds; k = {window}, rho = {rho_v}",
        panel.individuals(),
        horizon
    );

    let rho = Rho::new(rho_v).map_err(|e| e.to_string())?;
    let config = FixedWindowConfig::new(horizon, window, rho)
        .map_err(|e| e.to_string())?
        .with_padding(longsynth::PaddingPolicy::Recommended { beta });
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
    for (_, col) in panel.stream() {
        synth.step(col).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "released n* = {} synthetic records (npad = {} per bin, {} clamp events)",
        synth.n_star(),
        synth.npad(),
        synth.failures().total()
    );

    if let Some(mut out) = open_output(flags, "output")? {
        let records: Vec<_> = synth.synthetic().iter().collect();
        write_panel_csv(
            &mut out,
            records.into_iter(),
            horizon,
            Some(synth.padding_flags()),
        )
        .map_err(|e| e.to_string())?;
        eprintln!("wrote synthetic panel to --output");
    }
    if let Some(mut out) = open_output(flags, "estimates")? {
        writeln!(out, "round,query,debiased_estimate").map_err(|e| e.to_string())?;
        for t in (window - 1)..horizon {
            for q in quarterly_battery(window) {
                let est = synth.estimate_debiased(t, &q).map_err(|e| e.to_string())?;
                writeln!(out, "{},{},{est}", t + 1, q.name()).map_err(|e| e.to_string())?;
            }
        }
        eprintln!("wrote window-query estimates to --estimates");
    }
    Ok(())
}

fn run_cumulative(flags: &Flags) -> Result<(), String> {
    let rho_v: f64 = get_parsed(flags, "rho", f64::NAN)?;
    if rho_v.is_nan() {
        return Err("--rho is required".into());
    }
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    let months_hint: usize = get_parsed(flags, "months", 12)?;
    let panel = load_input(flags, months_hint)?;
    let horizon = panel.rounds();
    let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
    eprintln!(
        "panel: {} individuals x {} rounds; rho = {rho_v}",
        panel.individuals(),
        horizon
    );

    let rho = Rho::new(rho_v).map_err(|e| e.to_string())?;
    let config = CumulativeConfig::new(horizon, rho).map_err(|e| e.to_string())?;
    let mut synth = CumulativeSynthesizer::new(config, RngFork::new(seed), rng_from_seed(seed));
    for (_, col) in panel.stream() {
        synth.step(col).map_err(|e| e.to_string())?;
    }
    eprintln!("released {} rounds of synthetic data", synth.rounds_fed());

    if let Some(mut out) = open_output(flags, "output")? {
        let records: Vec<_> = synth.synthetic().iter().collect();
        write_panel_csv(&mut out, records.into_iter(), horizon, None).map_err(|e| e.to_string())?;
        eprintln!("wrote synthetic panel to --output");
    }
    if let Some(mut out) = open_output(flags, "estimates")? {
        writeln!(out, "round,threshold_b,fraction_at_least_b").map_err(|e| e.to_string())?;
        for t in 0..horizon {
            for b in 1..=max_b.min(t + 1) {
                let est = synth.estimate_fraction(t, b).map_err(|e| e.to_string())?;
                writeln!(out, "{},{b},{est}", t + 1).map_err(|e| e.to_string())?;
            }
        }
        eprintln!("wrote cumulative estimates to --estimates");
    }
    Ok(())
}

/// Parse `--aggregation` (default: per-shard noise, the pre-policy
/// semantics).
fn parse_aggregation(flags: &Flags) -> Result<AggregationPolicy, String> {
    match flags.get("aggregation") {
        None => Ok(AggregationPolicy::PerShardNoise),
        Some(raw) => raw.parse().map_err(|e| format!("--aggregation: {e}")),
    }
}

/// Independent RNG stream index per synthesizer slot (shards keep their
/// pre-policy streams; the population synthesizer gets its own).
fn slot_stream(role: SlotRole) -> u64 {
    match role {
        SlotRole::Shard(s) => s as u64,
        SlotRole::Population => 0xA110,
    }
}

/// Parse `--panel` (default: static lockstep; `rotating:W` = W overlapping
/// waves, one rotating out per round).
fn parse_panel(flags: &Flags) -> Result<Option<usize>, String> {
    match flags.get("panel").map(String::as_str) {
        None | Some("static") => Ok(None),
        Some(raw) => match raw.strip_prefix("rotating:") {
            Some(waves) => {
                let waves: usize = waves
                    .parse()
                    .map_err(|_| format!("--panel: cannot parse wave count {waves:?}"))?;
                if waves == 0 {
                    return Err("--panel rotating needs at least one wave".to_string());
                }
                Ok(Some(waves))
            }
            None => Err(format!("--panel must be static or rotating:W, got {raw:?}")),
        },
    }
}

/// Parse `--eviction` (default: fifo).
fn parse_eviction(flags: &Flags) -> Result<EvictionPolicy, String> {
    match flags.get("eviction").map(String::as_str) {
        None | Some("fifo") => Ok(EvictionPolicy::Fifo),
        Some("lru") => Ok(EvictionPolicy::Lru),
        Some(other) => Err(format!("--eviction must be fifo or lru, got {other:?}")),
    }
}

/// Build the rotating-panel schedule for a rectangular input panel: the
/// panel's rows are divided across the `waves + horizon − 1` wave cohorts
/// and each cohort streams the panel's columns during its own window.
///
/// Shared noise needs a **constant active population** (the windowed
/// population synthesizer's size is pinned at round 0), so shared runs
/// trim the panel to the largest row count the wave cohorts divide
/// evenly, with a note on stderr.
fn rotating_schedule(
    n: usize,
    horizon: usize,
    waves: usize,
    rho_v: f64,
    policy: AggregationPolicy,
) -> Result<(PanelSchedule, ShardPlan), String> {
    // The cohort budget share depends on whether the engine will actually
    // run a population synthesizer, which depends on the panel's cohort
    // count — mirror the generator's arithmetic rather than guessing
    // (waves > horizon is rejected by the schedule generator below).
    let cohort_count = waves + horizon - 1;
    let (cohort_share, population_share) = policy.budget_shares(cohort_count);
    let n = if population_share.is_some() && !n.is_multiple_of(cohort_count) {
        let trimmed = (n / cohort_count) * cohort_count;
        if trimmed == 0 {
            return Err(format!(
                "panel of {n} rows cannot cover {cohort_count} wave cohorts"
            ));
        }
        eprintln!(
            "shared noise needs equal wave cohorts: using the first {trimmed} of {n} rows \
             ({cohort_count} cohorts)"
        );
        trimmed
    } else {
        n
    };
    let cohort_rho = Rho::new(rho_v * cohort_share).map_err(|e| e.to_string())?;
    let total = Rho::new(rho_v).map_err(|e| e.to_string())?;
    let schedule =
        PanelSchedule::rotating(n, horizon, waves, cohort_rho, total).map_err(|e| e.to_string())?;
    debug_assert_eq!(schedule.cohorts(), cohort_count);
    let sizes: Vec<usize> = (0..schedule.cohorts())
        .map(|c| schedule.cohort_size(c))
        .collect();
    let layout = ShardPlan::from_sizes(&sizes).map_err(|e| e.to_string())?;
    Ok((schedule, layout))
}

/// Step a scheduled cumulative engine over the panel: each round feeds the
/// active cohorts' slices of that round's column.
fn drive_rotating_cumulative(
    engine: &mut ShardedEngine<longsynth::CumulativeSynthesizer>,
    schedule: &PanelSchedule,
    layout: &ShardPlan,
    panel: &LongitudinalDataset,
) -> Result<(), String> {
    for round in 0..schedule.global_horizon() {
        let parts: Vec<longsynth_data::BitColumn> = schedule
            .active(round)
            .into_iter()
            .map(|c| panel.column(round).slice(layout.range(c)))
            .collect();
        let column = longsynth_data::BitColumn::concat(parts.iter());
        // The engine verifies the per-individual budget cap every round
        // (in every build profile) and errors before releasing to a sink.
        engine.step(&column).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// The engine factory for a rotating cumulative run. Under shared noise
/// the population slot runs the cumulative family's **windowed release
/// mode**, bounded by the wave length (the longest membership window) —
/// the windowed population synthesizer that makes shared noise sound
/// under churn.
fn rotating_cumulative_factory(
    seed: u64,
    window: usize,
) -> impl FnMut(longsynth_engine::PanelSlot) -> longsynth::CumulativeSynthesizer {
    let fork = RngFork::new(seed);
    move |slot| {
        let config =
            CumulativeConfig::new(slot.horizon, slot.budget).expect("schedule-validated slot");
        let config = match slot.role {
            SlotRole::Population => config
                .with_window(window)
                .expect("wave length fits the horizon"),
            SlotRole::Shard(_) => config,
        };
        let stream = slot_stream(slot.role);
        CumulativeSynthesizer::new(config, fork.subfork(stream), fork.child(0x0C00 + stream))
    }
}

/// Population cumulative estimate over the active set at global round `t`:
/// the windowed population synthesizer's released estimate under shared
/// noise, else the size-weighted pool of the covering cohorts' released
/// estimates.
fn rotating_population_estimate(
    engine: &ShardedEngine<longsynth::CumulativeSynthesizer>,
    schedule: &PanelSchedule,
    t: usize,
    b: usize,
) -> Result<f64, String> {
    if let Some(population) = engine.population_synthesizer() {
        return population
            .estimate_fraction(t, b)
            .map_err(|e| e.to_string());
    }
    rotating_cohort_pool_estimate(engine, schedule, t, b)
}

/// The per-cohort pooled estimate (the per-shard-noise population
/// estimator, and the cohort-level comparison row under shared noise).
fn rotating_cohort_pool_estimate(
    engine: &ShardedEngine<longsynth::CumulativeSynthesizer>,
    schedule: &PanelSchedule,
    t: usize,
    b: usize,
) -> Result<f64, String> {
    let parts = (0..schedule.cohorts())
        .filter(|&c| schedule.cohort(c).is_active(t))
        .map(|c| {
            let local = t - schedule.cohort(c).entry_round;
            engine
                .shard(c)
                .estimate_fraction(local, b)
                .map(|est| (est, schedule.cohort_size(c)))
                .map_err(|e| e.to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    active_weighted_mean(parts).ok_or_else(|| format!("no cohort covers round {t}"))
}

/// The matching ground truth: each covering cohort's true cumulative
/// fraction over *its observed columns*, size-weighted.
fn rotating_population_truth(
    schedule: &PanelSchedule,
    layout: &ShardPlan,
    panel: &LongitudinalDataset,
    t: usize,
    b: usize,
) -> f64 {
    let parts = (0..schedule.cohorts())
        .filter(|&c| schedule.cohort(c).is_active(t))
        .map(|c| {
            let entry = schedule.cohort(c).entry_round;
            let observed = LongitudinalDataset::from_columns(
                (entry..=t)
                    .map(|round| panel.column(round).slice(layout.range(c)))
                    .collect(),
            )
            .expect("cohort slices are rectangular");
            let counts = cumulative_counts(&observed, t - entry);
            let count = counts.get(b).copied().unwrap_or(0);
            (
                count as f64 / schedule.cohort_size(c) as f64,
                schedule.cohort_size(c),
            )
        });
    active_weighted_mean(parts).expect("every round has a covering cohort")
}

/// The `--metrics` wiring shared by `engine` and `serve`: one registry
/// collects every subsystem's metrics, and the end of the run dumps the
/// JSONL event stream (metrics + budget ledger) to the requested path
/// plus a Prometheus text rendering to the same path with a `.prom`
/// extension.
struct CliMetrics {
    path: String,
    registry: MetricsRegistry,
}

impl CliMetrics {
    fn from_flags(flags: &Flags) -> Option<Self> {
        flags.get("metrics").map(|path| Self {
            path: path.clone(),
            registry: MetricsRegistry::new(),
        })
    }

    /// Attach an [`EngineObserver`] plus (when the engine runs pooled)
    /// the worker-pool instrumentation.
    fn observe_engine<S: longsynth::ContinualSynthesizer>(&self, engine: &mut ShardedEngine<S>) {
        engine.set_observer(EngineObserver::new(&self.registry));
        if let Some(pool) = engine.pool() {
            pool.attach_metrics(&self.registry);
        }
    }

    /// Write both exports and a one-line summary on stderr.
    fn write(&self, ledger: Option<&BudgetLedger>) -> Result<(), String> {
        let file = std::fs::File::create(&self.path)
            .map_err(|e| format!("creating {}: {e}", self.path))?;
        let mut out = std::io::BufWriter::new(file);
        self.registry
            .write_jsonl(&mut out)
            .map_err(|e| format!("writing {}: {e}", self.path))?;
        if let Some(ledger) = ledger {
            ledger
                .write_jsonl(&mut out)
                .map_err(|e| format!("writing {}: {e}", self.path))?;
        }
        out.flush().map_err(|e| e.to_string())?;
        let prom_path = PathBuf::from(&self.path).with_extension("prom");
        std::fs::write(&prom_path, self.registry.prometheus_text())
            .map_err(|e| format!("writing {}: {e}", prom_path.display()))?;
        eprintln!(
            "metrics: wrote JSONL ({} budget events) to {} and Prometheus text to {}",
            ledger.map_or(0, longsynth_obs::BudgetLedger::len),
            self.path,
            prom_path.display()
        );
        Ok(())
    }
}

/// The `stats` subcommand: parse a `--metrics` JSONL dump back and print
/// a summary. Malformed JSON (or a line that is not an object with a
/// known `type`) is an error — this doubles as the CI well-formedness
/// check on the exporter.
fn run_stats(flags: &Flags) -> Result<(), String> {
    let path = flags.get("metrics").ok_or("--metrics is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut gauges: Vec<(String, i64)> = Vec::new();
    let mut histograms: Vec<(String, u64, f64, f64, f64)> = Vec::new();
    let mut budget_events = 0usize;
    let mut last_spend: HashMap<String, f64> = HashMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let parse_err = |what: &str| format!("{path}:{}: {what}: {line:?}", lineno + 1);
        let value: serde_json::Value =
            serde_json::from_str(line).map_err(|e| parse_err(&format!("invalid JSON ({e})")))?;
        let kind = value
            .get("type")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| parse_err("missing \"type\""))?
            .to_string();
        let name = || -> Result<String, String> {
            Ok(value
                .get("name")
                .and_then(serde_json::Value::as_str)
                .ok_or_else(|| parse_err("missing \"name\""))?
                .to_string())
        };
        let num = |field: &str| -> Result<f64, String> {
            value
                .get(field)
                .and_then(serde_json::Value::as_f64)
                .ok_or_else(|| parse_err(&format!("missing numeric {field:?}")))
        };
        match kind.as_str() {
            "counter" => counters.push((name()?, num("value")? as u64)),
            "gauge" => gauges.push((name()?, num("value")? as i64)),
            "histogram" => histograms.push((
                name()?,
                num("count")? as u64,
                num("p50")?,
                num("p95")?,
                num("p99")?,
            )),
            "budget_event" => {
                budget_events += 1;
                let level = value
                    .get("level")
                    .and_then(serde_json::Value::as_str)
                    .ok_or_else(|| parse_err("missing \"level\""))?;
                last_spend.insert(level.to_string(), num("spent_after")?);
            }
            other => return Err(parse_err(&format!("unknown type {other:?}"))),
        }
    }
    println!("metrics from {path}:");
    for (name, value) in &counters {
        println!("  counter    {name} = {value}");
    }
    for (name, value) in &gauges {
        println!("  gauge      {name} = {value}");
    }
    for (name, count, p50, p95, p99) in &histograms {
        println!("  histogram  {name}: count={count} p50={p50:.3}ms p95={p95:.3}ms p99={p99:.3}ms");
    }
    let counter_of = |target: &str| {
        counters
            .iter()
            .find(|(name, _)| name == target)
            .map(|(_, v)| *v)
    };
    let gauge_of = |target: &str| {
        gauges
            .iter()
            .find(|(name, _)| name == target)
            .map(|(_, v)| *v)
    };
    let late_events = counter_of("ingest_late_events_total");
    if let Some(events) = counter_of("ingest_events_total") {
        println!(
            "  ingest: {events} events ({} late), {} rounds sealed; \
             peak queue depth {}, watermark lag {} ms",
            late_events.unwrap_or(0),
            counter_of("ingest_rounds_sealed_total").unwrap_or(0),
            gauge_of("ingest_queue_peak_depth").unwrap_or(0),
            gauge_of("ingest_watermark_lag_ms").unwrap_or(0),
        );
    }
    let panics = counter_of("pool_worker_panics").unwrap_or(0);
    println!("  worker panics swallowed: {panics}");
    if budget_events > 0 {
        let mut levels: Vec<_> = last_spend.iter().collect();
        levels.sort_by(|a, b| a.0.cmp(b.0));
        let spent: Vec<String> = levels
            .iter()
            .map(|(level, rho)| format!("{level} level {rho}"))
            .collect();
        println!(
            "  budget ledger: {budget_events} events; final spend: {}",
            spent.join(", ")
        );
    }
    if panics > 0 {
        return Err(format!(
            "{panics} worker panic(s) were swallowed during the run"
        ));
    }
    // CI smoke contract: a drop-policy ingest run must lose nothing, so
    // any late-dropped event fails the check loudly instead of silently
    // shrinking the released counts.
    if flags.contains_key("fail-on-late") {
        let late = late_events.unwrap_or(0);
        if late > 0 {
            return Err(format!(
                "{late} late event(s) were dropped during the run \
                 (ingest_late_events_total > 0)"
            ));
        }
    }
    Ok(())
}

fn run_engine(flags: &Flags) -> Result<(), String> {
    let rho_v: f64 = get_parsed(flags, "rho", f64::NAN)?;
    if rho_v.is_nan() {
        return Err("--rho is required".into());
    }
    let shards: usize = get_parsed(flags, "shards", 0)?;
    if shards == 0 {
        return Err("--shards is required (try the number of cores)".into());
    }
    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("fixed-window");
    let policy = parse_aggregation(flags)?;
    let rotating = parse_panel(flags)?;
    let metrics = CliMetrics::from_flags(flags);
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    let months_hint: usize = get_parsed(flags, "months", 12)?;
    let panel = load_input(flags, months_hint)?;
    let horizon = panel.rounds();
    let n = panel.individuals();
    if let Some(waves) = rotating {
        if algorithm != "cumulative" {
            return Err(
                "--panel rotating requires --algorithm cumulative (fixed-window cohorts \
                 at different buffering phases cannot merge)"
                    .to_string(),
            );
        }
        if flags.contains_key("output") {
            return Err(
                "--output is not available under a rotating panel: the merged release \
                 is ragged (the active set changes each round); use --estimates"
                    .to_string(),
            );
        }
        let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
        let (schedule, layout) = rotating_schedule(n, horizon, waves, rho_v, policy)?;
        eprintln!(
            "panel: {n} individuals x {horizon} rounds; rotating panel of {waves} waves \
             ({} cohorts, ~{} active per round), aggregation = {policy}, total rho = {rho_v}",
            schedule.cohorts(),
            schedule.active_population(0)
        );
        let mut engine = ShardedEngine::with_schedule(
            schedule.clone(),
            policy,
            rotating_cumulative_factory(seed, waves),
        )
        .map_err(|e| e.to_string())?;
        if let Some(metrics) = &metrics {
            metrics.observe_engine(&mut engine);
        }
        drive_rotating_cumulative(&mut engine, &schedule, &layout, &panel)?;
        let budget = engine.budget();
        eprintln!(
            "released {} rounds over the rotating panel; max individual lifetime budget {} \
             (cap {}; population level {})",
            engine.rounds_fed(),
            budget.max_lifetime_spend(),
            schedule.total_budget(),
            budget.population_spent()
        );
        if let Some(windowed) = engine.windowed_population() {
            eprintln!(
                "windowed population synthesizer: {} cohorts retired from the window",
                windowed.retired_cohorts()
            );
        }
        let battery: Vec<(usize, usize)> = (0..horizon)
            .flat_map(|t| (1..=max_b.min(t + 1)).map(move |b| (t, b)))
            .collect();
        let mut estimates = Vec::with_capacity(battery.len());
        let mut truths = Vec::with_capacity(battery.len());
        for &(t, b) in &battery {
            estimates.push(rotating_population_estimate(&engine, &schedule, t, b)?);
            truths.push(rotating_population_truth(&schedule, &layout, &panel, t, b));
        }
        let mut comparison = AccuracyComparison::against(
            format!("rotating:{waves} {policy} active-set estimates"),
            ErrorSummary::from_pairs(&estimates, &truths),
        );
        if engine.population_synthesizer().is_some() {
            // Under shared noise the cohort releases still exist at the
            // cohort budget share — show both levels side by side.
            let pooled = battery
                .iter()
                .map(|&(t, b)| rotating_cohort_pool_estimate(&engine, &schedule, t, b))
                .collect::<Result<Vec<f64>, String>>()?;
            comparison.add(
                "per-cohort pool (cohort budget share)",
                ErrorSummary::from_pairs(&pooled, &truths),
            );
        }
        eprintln!("population-query error vs truth (active set per round):\n{comparison}");
        if let Some(mut out) = open_output(flags, "estimates")? {
            writeln!(out, "round,threshold_b,fraction_at_least_b").map_err(|e| e.to_string())?;
            for ((t, b), estimate) in battery.iter().zip(&estimates) {
                writeln!(out, "{},{b},{estimate}", t + 1).map_err(|e| e.to_string())?;
            }
            eprintln!("wrote active-set cumulative estimates to --estimates");
        }
        if let Some(metrics) = &metrics {
            let observer = engine.take_observer();
            metrics.write(observer.as_ref().map(EngineObserver::ledger))?;
        }
        return Ok(());
    }
    let plan = ShardPlan::new(n, shards).map_err(|e| e.to_string())?;
    let rho = Rho::new(rho_v).map_err(|e| e.to_string())?;
    let fork = RngFork::new(seed);
    eprintln!(
        "panel: {n} individuals x {horizon} rounds; {shards} shards \
         (cohorts of ~{}), algorithm = {algorithm}, aggregation = {policy}, \
         total rho = {rho_v}",
        plan.cohort_size(0)
    );

    match algorithm {
        "fixed-window" => {
            let window: usize = get_parsed(flags, "window", 3)?;
            let beta: f64 = get_parsed(flags, "beta", 0.05)?;
            // Validate the parameters once at the full budget; slot
            // configs below only rescale rho.
            FixedWindowConfig::new(horizon, window, rho).map_err(|e| e.to_string())?;
            let mut engine = ShardedEngine::with_aggregation(plan, policy, |slot| {
                let slot_rho = Rho::new(rho_v * slot.budget_share).expect("positive share");
                let config = FixedWindowConfig::new(horizon, window, slot_rho)
                    .expect("parameters validated above")
                    .with_padding(longsynth::PaddingPolicy::Recommended { beta });
                FixedWindowSynthesizer::new(config, fork.child(slot_stream(slot.role)))
            })
            .map_err(|e| e.to_string())?;
            if let Some(metrics) = &metrics {
                metrics.observe_engine(&mut engine);
            }
            let mut columns = Vec::with_capacity(horizon);
            for (_, col) in panel.stream() {
                match engine.step(col).map_err(|e| e.to_string())? {
                    longsynth::Release::Buffered => {}
                    longsynth::Release::Initial(cols) => columns.extend(cols),
                    longsynth::Release::Update(col) => columns.push(col),
                }
            }
            let budget = engine.budget();
            // The released population: the population synthesizer's under
            // shared noise, the cohort concatenation otherwise.
            let (n_star, padding): (usize, Vec<bool>) = match engine.population_synthesizer() {
                Some(population) => (population.n_star(), population.padding_flags().to_vec()),
                None => (
                    (0..shards).map(|s| engine.shard(s).n_star()).sum(),
                    (0..shards)
                        .flat_map(|s| engine.shard(s).padding_flags().to_vec())
                        .collect(),
                ),
            };
            eprintln!(
                "released n* = {n_star} population-level synthetic records; \
                 user-level budget {} (cohort level {} + population level {}; \
                 sequential-sum view {})",
                budget.spent(),
                budget.cohort_spent(),
                budget.population_spent(),
                budget.spent_sequential()
            );
            // The cohort-size-weighted average of per-shard debiased
            // estimates — the population estimator of the per-shard
            // policy, and the cohort-level comparison row under shared.
            let cohort_average =
                |t: usize, q: &longsynth_queries::WindowQuery| -> Result<f64, String> {
                    let mut total = 0.0;
                    for s in 0..shards {
                        let est = engine
                            .shard(s)
                            .estimate_debiased(t, q)
                            .map_err(|e| e.to_string())?;
                        total += est * engine.plan().cohort_size(s) as f64;
                    }
                    Ok(total / n as f64)
                };
            // Evaluate the battery once; the summary and the --estimates
            // CSV both read from these vectors.
            let battery: Vec<(usize, longsynth_queries::WindowQuery)> = ((window - 1)..horizon)
                .flat_map(|t| quarterly_battery(window).into_iter().map(move |q| (t, q)))
                .collect();
            let mut estimates = Vec::with_capacity(battery.len());
            let mut truths = Vec::with_capacity(battery.len());
            for (t, q) in &battery {
                let estimate = match engine.population_synthesizer() {
                    Some(population) => population
                        .estimate_debiased(*t, q)
                        .map_err(|e| e.to_string())?,
                    None => cohort_average(*t, q)?,
                };
                estimates.push(estimate);
                truths.push(q.evaluate_true(&panel, *t));
            }
            let mut comparison = AccuracyComparison::against(
                format!("{policy} population estimates"),
                ErrorSummary::from_pairs(&estimates, &truths),
            );
            if engine.population_synthesizer().is_some() {
                // Under shared noise the cohort releases still exist at
                // the cohort budget share — show both levels side by side.
                let cohort_estimates = battery
                    .iter()
                    .map(|(t, q)| cohort_average(*t, q))
                    .collect::<Result<Vec<f64>, String>>()?;
                comparison.add(
                    "per-cohort average (cohort budget share)",
                    ErrorSummary::from_pairs(&cohort_estimates, &truths),
                );
            }
            eprintln!("population-query error vs truth:\n{comparison}");
            if let Some(mut out) = open_output(flags, "output")? {
                let rows: Vec<longsynth_data::BitStream> = (0..n_star)
                    .map(|i| columns.iter().map(|c| c.get(i)).collect())
                    .collect();
                write_panel_csv(&mut out, rows.into_iter(), horizon, Some(&padding))
                    .map_err(|e| e.to_string())?;
                eprintln!("wrote merged synthetic panel to --output");
            }
            if let Some(mut out) = open_output(flags, "estimates")? {
                writeln!(out, "round,query,debiased_estimate").map_err(|e| e.to_string())?;
                for ((t, q), estimate) in battery.iter().zip(&estimates) {
                    writeln!(out, "{},{},{estimate}", t + 1, q.name())
                        .map_err(|e| e.to_string())?;
                }
                eprintln!("wrote merged window-query estimates to --estimates");
            }
            if let Some(metrics) = &metrics {
                let observer = engine.take_observer();
                metrics.write(observer.as_ref().map(EngineObserver::ledger))?;
            }
        }
        "cumulative" => {
            let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
            CumulativeConfig::new(horizon, rho).map_err(|e| e.to_string())?;
            let mut engine = ShardedEngine::with_aggregation(plan, policy, |slot| {
                let slot_rho = Rho::new(rho_v * slot.budget_share).expect("positive share");
                let config =
                    CumulativeConfig::new(horizon, slot_rho).expect("parameters validated above");
                let stream = slot_stream(slot.role);
                CumulativeSynthesizer::new(
                    config,
                    fork.subfork(stream),
                    fork.child(0x0C00 + stream),
                )
            })
            .map_err(|e| e.to_string())?;
            if let Some(metrics) = &metrics {
                metrics.observe_engine(&mut engine);
            }
            let mut columns = Vec::with_capacity(horizon);
            for (_, col) in panel.stream() {
                columns.push(engine.step(col).map_err(|e| e.to_string())?);
            }
            let budget = engine.budget();
            eprintln!(
                "released {} rounds; user-level budget {} (cohort level {} + \
                 population level {}; sequential-sum view {})",
                engine.rounds_fed(),
                budget.spent(),
                budget.cohort_spent(),
                budget.population_spent(),
                budget.spent_sequential()
            );
            let population_estimate = |t: usize, b: usize| -> Result<f64, String> {
                match engine.population_synthesizer() {
                    Some(population) => population
                        .estimate_fraction(t, b)
                        .map_err(|e| e.to_string()),
                    None => {
                        let mut total = 0.0;
                        for s in 0..shards {
                            let est = engine
                                .shard(s)
                                .estimate_fraction(t, b)
                                .map_err(|e| e.to_string())?;
                            total += est * engine.plan().cohort_size(s) as f64;
                        }
                        Ok(total / n as f64)
                    }
                }
            };
            // Evaluate the battery once; the summary and the --estimates
            // CSV both read from these vectors.
            let battery: Vec<(usize, usize)> = (0..horizon)
                .flat_map(|t| (1..=max_b.min(t + 1)).map(move |b| (t, b)))
                .collect();
            let mut estimates = Vec::with_capacity(battery.len());
            let mut truths = Vec::with_capacity(battery.len());
            let mut truth_row = (usize::MAX, Vec::new());
            for &(t, b) in &battery {
                if truth_row.0 != t {
                    truth_row = (t, cumulative_counts(&panel, t));
                }
                estimates.push(population_estimate(t, b)?);
                truths.push(truth_row.1[b] as f64 / n as f64);
            }
            let comparison = AccuracyComparison::against(
                format!("{policy} population estimates"),
                ErrorSummary::from_pairs(&estimates, &truths),
            );
            eprintln!("population-query error vs truth:\n{comparison}");
            if let Some(mut out) = open_output(flags, "output")? {
                let records = columns.first().map_or(0, longsynth_data::BitColumn::len);
                let rows: Vec<longsynth_data::BitStream> = (0..records)
                    .map(|i| columns.iter().map(|c| c.get(i)).collect())
                    .collect();
                write_panel_csv(&mut out, rows.into_iter(), horizon, None)
                    .map_err(|e| e.to_string())?;
                eprintln!("wrote merged synthetic panel to --output");
            }
            if let Some(mut out) = open_output(flags, "estimates")? {
                writeln!(out, "round,threshold_b,fraction_at_least_b")
                    .map_err(|e| e.to_string())?;
                for ((t, b), estimate) in battery.iter().zip(&estimates) {
                    writeln!(out, "{},{b},{estimate}", t + 1).map_err(|e| e.to_string())?;
                }
                eprintln!("wrote merged cumulative estimates to --estimates");
            }
            if let Some(metrics) = &metrics {
                let observer = engine.take_observer();
                metrics.write(observer.as_ref().map(EngineObserver::ledger))?;
            }
        }
        other => {
            return Err(format!(
                "--algorithm must be fixed-window or cumulative, got {other:?}"
            ))
        }
    }
    Ok(())
}

/// Parse the ingest subcommand's `--window`: `W` (tumbling) or `W:S`
/// (sliding), both in event-time milliseconds, anchored at `--t0`.
fn parse_ingest_window(flags: &Flags, t0: i64) -> Result<WindowSpec, String> {
    let raw = flags.get("window").map(String::as_str).unwrap_or("60000");
    let (width, slide) = match raw.split_once(':') {
        Some((w, s)) => (w, s),
        None => (raw, raw),
    };
    let width: i64 = width
        .parse()
        .map_err(|_| format!("--window: cannot parse width {width:?} (ms)"))?;
    let slide: i64 = slide
        .parse()
        .map_err(|_| format!("--window: cannot parse slide {slide:?} (ms)"))?;
    WindowSpec::new(width, slide, t0).map_err(|e| e.to_string())
}

/// The `ingest` subcommand: the event-time pipeline end to end. A
/// synthetic timestamped stream flows from concurrent producers through
/// the bounded queue, is watermark-sealed into rounds, stepped through
/// the sharded cumulative engine as each round seals, and served through
/// the query layer — the engine's round clock driven by event time
/// instead of a pre-binned panel.
fn run_ingest(flags: &Flags) -> Result<(), String> {
    let rho_v: f64 = get_parsed(flags, "rho", f64::NAN)?;
    if rho_v.is_nan() {
        return Err("--rho is required".into());
    }
    let n: usize = get_parsed(flags, "individuals", 2_000)?;
    let horizon: usize = get_parsed(flags, "rounds", 12)?;
    if n == 0 || horizon == 0 {
        return Err("--individuals and --rounds must be positive".into());
    }
    let shards: usize = get_parsed(flags, "shards", 1)?;
    let producers: usize = get_parsed::<usize>(flags, "producers", 2)?.max(1);
    let queue_cap: usize = get_parsed(flags, "queue-cap", 65_536)?;
    let rate: f64 = get_parsed(flags, "rate", 0.3)?;
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    // Default origin ≈ late 2025 in Unix ms: the boundary math runs at
    // real epoch magnitudes, not toy offsets (see docs/INGEST.md).
    let t0: i64 = get_parsed(flags, "t0", 1_760_000_000_000_i64)?;
    let window = parse_ingest_window(flags, t0)?;
    let late = match flags.get("late-policy") {
        None => LatePolicy::Drop,
        Some(raw) => LatePolicy::parse(raw).map_err(|e| e.to_string())?,
    };
    let policy = parse_aggregation(flags)?;
    let eviction = parse_eviction(flags)?;
    let query_target: usize = get_parsed(flags, "queries", 500)?;
    let pool_threads: usize = get_parsed(flags, "pool-threads", 2)?;
    let metrics = CliMetrics::from_flags(flags);

    let plan = ShardPlan::new(n, shards).map_err(|e| e.to_string())?;
    let rho = Rho::new(rho_v).map_err(|e| e.to_string())?;
    CumulativeConfig::new(horizon, rho).map_err(|e| e.to_string())?;
    let fork = RngFork::new(seed);
    let mut engine = ShardedEngine::with_aggregation(plan, policy, |slot| {
        let slot_rho = Rho::new(rho_v * slot.budget_share).expect("positive share");
        let config = CumulativeConfig::new(horizon, slot_rho).expect("parameters validated above");
        let stream = slot_stream(slot.role);
        CumulativeSynthesizer::new(config, fork.subfork(stream), fork.child(0x0C00 + stream))
    })
    .map_err(|e| e.to_string())?;
    if let Some(m) = &metrics {
        m.observe_engine(&mut engine);
    }
    let pool = std::sync::Arc::new(WorkerPool::new(pool_threads.max(1)));
    let service = match &metrics {
        Some(m) => {
            pool.attach_metrics(&m.registry);
            QueryService::with_cache_in_registry(
                longsynth_serve::ReleaseStore::new(),
                longsynth_serve::DEFAULT_CACHE_CAPACITY,
                eviction,
                &m.registry,
            )
        }
        None => QueryService::with_cache(
            longsynth_serve::ReleaseStore::new(),
            longsynth_serve::DEFAULT_CACHE_CAPACITY,
            eviction,
        ),
    };
    engine.set_sink(service.column_sink());

    eprintln!(
        "stream: {n} individuals x {horizon} rounds at rate {rate}; window {}ms/{}ms \
         from t0 = {t0}, late policy {late}, {producers} producers, queue cap {queue_cap}; \
         {shards} shards, aggregation = {policy}, total rho = {rho_v}",
        window.width(),
        window.slide(),
    );

    let mut config = IngestConfig::new(window);
    config.late = late;
    config.queue_cap = queue_cap;
    let tier = match &metrics {
        Some(m) => IngestTier::with_metrics(config, BitRoundAssembler::new(n), &m.registry),
        None => IngestTier::new(config, BitRoundAssembler::new(n)),
    };

    // Synthetic timestamped stream: a Bernoulli panel's set bits become
    // events, deterministically jittered inside each round's slide span —
    // a tumbling run seals with zero late events, while an overlapping
    // W:S spec genuinely exercises the late path.
    let data = iid_bernoulli(&mut rng_from_seed(seed ^ 0x1A6E57), n, horizon, rate);
    let columns: std::sync::Arc<Vec<longsynth_data::BitColumn>> =
        std::sync::Arc::new((0..horizon).map(|r| data.column(r).clone()).collect());
    let start = std::time::Instant::now();
    let base = tier.producer();
    let chunk = n.div_ceil(producers);
    let mut handles = Vec::with_capacity(producers);
    for p in 0..producers {
        let producer = base.clone();
        let columns = std::sync::Arc::clone(&columns);
        let (lo, hi) = (p * chunk, ((p + 1) * chunk).min(n));
        handles.push(std::thread::spawn(move || {
            for round in 0..horizon {
                let instance = window.window(round as u64);
                let span = window.slide();
                let batch: Vec<Event<bool>> = (lo..hi)
                    .filter(|&i| columns[round].get(i))
                    .map(|i| {
                        let jitter = ((i as u64).wrapping_mul(7_919)
                            ^ (round as u64).wrapping_mul(104_729))
                            % span as u64;
                        Event {
                            time_ms: instance.open + jitter as i64,
                            individual: i as u32,
                            payload: true,
                        }
                    })
                    .collect();
                if !batch.is_empty() && producer.send_batch(batch).is_err() {
                    return; // consumer gone: nothing left to feed
                }
                // Zero-event rounds still advance this producer's
                // watermark slot, so an idle slice cannot stall sealing.
                producer.heartbeat(instance.open + span - 1);
            }
        }));
    }
    drop(base);

    let mut sealed_rounds = tier.into_rounds().with_min_rounds(horizon as u64);
    {
        let mut driver = IngestDriver::new(&mut engine);
        for sealed in sealed_rounds.by_ref() {
            driver.on_sealed(&sealed).map_err(|e| e.to_string())?;
        }
    }
    for handle in handles {
        handle
            .join()
            .map_err(|_| "a producer thread panicked".to_string())?;
    }
    let stats = sealed_rounds.stats();
    let budget = engine.budget();
    eprintln!(
        "sealed {} rounds from {} events ({} late, {} rejected; peak queue depth {}) \
         in {:?}; user-level budget {}",
        stats.rounds_sealed,
        stats.events,
        stats.late_events,
        stats.rejected_events,
        stats.peak_queue_depth,
        start.elapsed(),
        budget.spent(),
    );

    let rounds = service.with_store(longsynth_serve::ReleaseStore::rounds);
    let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
    let distinct = longsynth_serve::mixed_battery(rounds, shards, max_b, horizon.min(3));
    finish_serve(flags, &service, &pool, distinct, query_target)?;
    if let Some(m) = &metrics {
        let observer = engine.take_observer();
        m.write(observer.as_ref().map(EngineObserver::ledger))?;
    }
    Ok(())
}

/// The serve subcommand: engine run with the release store attached, then
/// a concurrent query batch over the stored releases — the whole serving
/// subsystem end to end, with throughput numbers on stderr.
fn run_serve(flags: &Flags) -> Result<(), String> {
    let rho_v: f64 = get_parsed(flags, "rho", f64::NAN)?;
    if rho_v.is_nan() {
        return Err("--rho is required".into());
    }
    let shards: usize = get_parsed(flags, "shards", 0)?;
    if shards == 0 {
        return Err("--shards is required (try the number of cores)".into());
    }
    let algorithm = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("cumulative");
    let policy = parse_aggregation(flags)?;
    let rotating = parse_panel(flags)?;
    let eviction = parse_eviction(flags)?;
    let seed: u64 = get_parsed(flags, "seed", 42)?;
    let months_hint: usize = get_parsed(flags, "months", 12)?;
    let query_target: usize = get_parsed(flags, "queries", 1_000)?;
    let pool_threads: usize = get_parsed(flags, "pool-threads", 4)?;
    let panel = load_input(flags, months_hint)?;
    let horizon = panel.rounds();
    let n = panel.individuals();
    let rho = Rho::new(rho_v).map_err(|e| e.to_string())?;
    let fork = RngFork::new(seed);
    let pool = std::sync::Arc::new(WorkerPool::new(pool_threads.max(1)));
    let metrics = CliMetrics::from_flags(flags);
    // Under --metrics, one shared registry collects the engine, pool,
    // and serving-layer metrics together.
    let service = match &metrics {
        Some(m) => {
            pool.attach_metrics(&m.registry);
            QueryService::with_cache_in_registry(
                longsynth_serve::ReleaseStore::new(),
                longsynth_serve::DEFAULT_CACHE_CAPACITY,
                eviction,
                &m.registry,
            )
        }
        None => QueryService::with_cache(
            longsynth_serve::ReleaseStore::new(),
            longsynth_serve::DEFAULT_CACHE_CAPACITY,
            eviction,
        ),
    };
    eprintln!(
        "panel: {n} individuals x {horizon} rounds; {shards} shards, \
         {} pool threads, algorithm = {algorithm}, aggregation = {policy}, \
         eviction = {eviction}, total rho = {rho_v}",
        pool.threads()
    );

    // Engine run with the serving sink attached: every release lands in
    // the store the moment its round completes, tagged with the policy.
    let ingest_start = std::time::Instant::now();
    let window: usize = get_parsed(flags, "window", 3)?;
    if let Some(waves) = rotating {
        if algorithm != "cumulative" {
            return Err(
                "--panel rotating requires --algorithm cumulative (fixed-window cohorts \
                 at different buffering phases cannot merge)"
                    .to_string(),
            );
        }
        let (schedule, layout) = rotating_schedule(n, horizon, waves, rho_v, policy)?;
        let mut engine = ShardedEngine::with_schedule_and_pool(
            schedule.clone(),
            policy,
            rotating_cumulative_factory(seed, waves),
            std::sync::Arc::clone(&pool),
        )
        .map_err(|e| e.to_string())?;
        if let Some(m) = &metrics {
            m.observe_engine(&mut engine);
        }
        engine.set_sink(service.column_sink());
        drive_rotating_cumulative(&mut engine, &schedule, &layout, &panel)?;
        let rounds = service.with_store(longsynth_serve::ReleaseStore::rounds);
        eprintln!(
            "ingested {rounds} rotating rounds ({} cohorts, {} waves active) in {:?}",
            schedule.cohorts(),
            waves,
            ingest_start.elapsed()
        );
        // Dynamic read battery: merged-scope cumulative thresholds over
        // every round, plus each cohort's covered rounds.
        let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
        let mut distinct = Vec::new();
        for t in 0..rounds {
            for b in 1..=max_b.min(t + 1) {
                distinct.push(ServeQuery {
                    scope: longsynth_serve::StoreScope::Merged,
                    kind: longsynth_serve::QueryKind::CumulativeFraction { t, b },
                });
            }
            for c in 0..schedule.cohorts() {
                if schedule.cohort(c).is_active(t) {
                    distinct.push(ServeQuery {
                        scope: longsynth_serve::StoreScope::Cohort(c),
                        kind: longsynth_serve::QueryKind::CumulativeFraction { t, b: 1 },
                    });
                }
            }
        }
        finish_serve(flags, &service, &pool, distinct, query_target)?;
        if let Some(m) = &metrics {
            let observer = engine.take_observer();
            m.write(observer.as_ref().map(EngineObserver::ledger))?;
        }
        return Ok(());
    }
    let plan = ShardPlan::new(n, shards).map_err(|e| e.to_string())?;
    let observer: Option<EngineObserver> = match algorithm {
        "fixed-window" => {
            let beta: f64 = get_parsed(flags, "beta", 0.05)?;
            FixedWindowConfig::new(horizon, window, rho).map_err(|e| e.to_string())?;
            let mut engine = ShardedEngine::with_aggregation_and_pool(
                plan,
                policy,
                |slot| {
                    let slot_rho = Rho::new(rho_v * slot.budget_share).expect("positive share");
                    let config = FixedWindowConfig::new(horizon, window, slot_rho)
                        .expect("parameters validated above")
                        .with_padding(longsynth::PaddingPolicy::Recommended { beta });
                    FixedWindowSynthesizer::new(config, fork.child(slot_stream(slot.role)))
                },
                std::sync::Arc::clone(&pool),
            )
            .map_err(|e| e.to_string())?;
            if let Some(m) = &metrics {
                m.observe_engine(&mut engine);
            }
            engine.set_sink(service.release_sink());
            for (_, col) in panel.stream() {
                engine.step(col).map_err(|e| e.to_string())?;
            }
            engine.take_observer()
        }
        "cumulative" => {
            CumulativeConfig::new(horizon, rho).map_err(|e| e.to_string())?;
            let mut engine = ShardedEngine::with_aggregation_and_pool(
                plan,
                policy,
                |slot| {
                    let slot_rho = Rho::new(rho_v * slot.budget_share).expect("positive share");
                    let config = CumulativeConfig::new(horizon, slot_rho)
                        .expect("parameters validated above");
                    let stream = slot_stream(slot.role);
                    CumulativeSynthesizer::new(
                        config,
                        fork.subfork(stream),
                        fork.child(0x0C00 + stream),
                    )
                },
                std::sync::Arc::clone(&pool),
            )
            .map_err(|e| e.to_string())?;
            if let Some(m) = &metrics {
                m.observe_engine(&mut engine);
            }
            engine.set_sink(service.column_sink());
            for (_, col) in panel.stream() {
                engine.step(col).map_err(|e| e.to_string())?;
            }
            engine.take_observer()
        }
        other => {
            return Err(format!(
                "--algorithm must be fixed-window or cumulative, got {other:?}"
            ))
        }
    };
    let (rounds, records, stored_policy) =
        service.with_store(|s| (s.rounds(), s.records(), s.policy()));
    eprintln!(
        "ingested {rounds} released rounds ({} records, policy tag {}) in {:?}",
        records.unwrap_or(0),
        stored_policy.map_or("none".to_string(), |tag| tag.to_string()),
        ingest_start.elapsed()
    );

    // Build the query batch: cycle the canonical mixed battery until the
    // requested batch size — the read traffic a deployment sees.
    let max_b: usize = get_parsed(flags, "max-b", horizon.min(6))?;
    let distinct = longsynth_serve::mixed_battery(rounds, shards, max_b, window);
    finish_serve(flags, &service, &pool, distinct, query_target)?;
    if let Some(m) = &metrics {
        m.write(observer.as_ref().map(EngineObserver::ledger))?;
    }
    Ok(())
}

/// The serving tail shared by static and rotating runs: drive the batch
/// cold and cached, report throughput, and (optionally) verify a snapshot
/// round-trip.
fn finish_serve(
    flags: &Flags,
    service: &QueryService,
    pool: &WorkerPool,
    distinct: Vec<ServeQuery>,
    query_target: usize,
) -> Result<(), String> {
    if distinct.is_empty() {
        return Err("no answerable queries (panel too short?)".into());
    }
    let batch: Vec<ServeQuery> = distinct
        .iter()
        .cycle()
        .take(query_target)
        .cloned()
        .collect();

    // Cold pass: every distinct query computed from the store. Cached
    // pass: same batch, all hits.
    let run_batch = |label: &str| {
        let start = std::time::Instant::now();
        let answers = service.answer_batch(pool, batch.clone());
        let elapsed = start.elapsed();
        let failures = answers.iter().filter(|a| a.is_err()).count();
        let qps = batch.len() as f64 / elapsed.as_secs_f64();
        let (hits, misses) = service.cache_stats();
        eprintln!(
            "{label}: {} queries in {elapsed:?} ({qps:.0} queries/sec; \
             {hits} hits, {misses} misses, {failures} failures)",
            batch.len()
        );
        qps
    };
    service.clear_cache();
    let cold_qps = run_batch("cold  ");
    let cached_qps = run_batch("cached");
    eprintln!(
        "cache speedup: {:.1}x ({} distinct queries memoized, {} evictions)",
        cached_qps / cold_qps,
        service.cache_len(),
        service.cache_evictions()
    );

    if let Some(path) = flags.get("snapshot") {
        let json = service.snapshot_json();
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        let restored_json =
            std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let restored = QueryService::restore_json(&restored_json).map_err(|e| e.to_string())?;
        for query in &distinct {
            let original = service.answer(query).map_err(|e| e.to_string())?;
            let recovered = restored.answer(query).map_err(|e| e.to_string())?;
            if original.to_bits() != recovered.to_bits() {
                return Err(format!(
                    "snapshot restore diverged on {query:?}: {original} vs {recovered}"
                ));
            }
        }
        eprintln!(
            "snapshot: wrote {} bytes to {path}; restore verified bit-identical \
             on {} distinct queries",
            json.len(),
            distinct.len()
        );
    }
    Ok(())
}

fn run_simulate(flags: &Flags) -> Result<(), String> {
    let households: usize = get_parsed(flags, "households", 23_374)?;
    let months: usize = get_parsed(flags, "months", 12)?;
    let seed: u64 = get_parsed(flags, "seed", 2021)?;
    let mut config = SippConfig::small(households);
    config.months = months;
    let panel = config.simulate(&mut rng_from_seed(seed));
    let mut out = open_output(flags, "output")?.ok_or("--output is required")?;
    let rows: Vec<_> = (0..panel.individuals())
        .map(|i| panel.row(i, months - 1))
        .collect();
    write_panel_csv(&mut out, rows.into_iter(), months, None).map_err(|e| e.to_string())?;
    eprintln!("wrote {households} x {months} simulated SIPP panel");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags_of(pairs: &[(&str, &str)]) -> Flags {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--rho", "0.01", "--sipp", "--fail-on-late", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let flags = parse_flags(&args).unwrap();
        assert_eq!(flags["rho"], "0.01");
        assert_eq!(flags["sipp"], "true");
        assert_eq!(flags["fail-on-late"], "true");
        assert_eq!(flags["seed"], "7");
        // Errors.
        assert!(parse_flags(&["positional".to_string()]).is_err());
        assert!(parse_flags(&["--rho".to_string()]).is_err());
    }

    #[test]
    fn get_parsed_defaults_and_errors() {
        let flags = flags_of(&[("window", "5"), ("bad", "xyz")]);
        assert_eq!(get_parsed(&flags, "window", 3usize).unwrap(), 5);
        assert_eq!(get_parsed(&flags, "missing", 3usize).unwrap(), 3);
        assert!(get_parsed::<usize>(&flags, "bad", 3).is_err());
    }

    #[test]
    fn end_to_end_simulate_synthesize_estimate() {
        let dir = std::env::temp_dir().join("longsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel = dir.join("panel.csv");
        let synth = dir.join("synth.csv");
        let est = dir.join("est.csv");

        run_simulate(&flags_of(&[
            ("households", "500"),
            ("months", "8"),
            ("output", panel.to_str().unwrap()),
        ]))
        .unwrap();

        run_fixed_window(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("window", "2"),
            ("output", synth.to_str().unwrap()),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();

        // The released panel parses back and has the padding column.
        let text = std::fs::read_to_string(&synth).unwrap();
        assert!(text.starts_with("round_1,"));
        assert!(text.lines().next().unwrap().ends_with("padding"));
        // Estimates cover every released round.
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.lines().count() > 7 * 4); // 7 rounds x 4 queries + header

        run_cumulative(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let cum_text = std::fs::read_to_string(&est).unwrap();
        assert!(cum_text.starts_with("round,threshold_b"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(run_fixed_window(&Flags::new()).is_err());
        assert!(run_cumulative(&Flags::new()).is_err());
        assert!(run_simulate(&Flags::new()).is_err());
        assert!(run_engine(&Flags::new()).is_err());
        assert!(run_serve(&Flags::new()).is_err());
        let flags = flags_of(&[("rho", "0.01")]);
        assert!(run_fixed_window(&flags).unwrap_err().contains("--input"));
        assert!(run_engine(&flags).unwrap_err().contains("--shards"));
        assert!(run_serve(&flags).unwrap_err().contains("--shards"));
    }

    #[test]
    fn end_to_end_serve_run() {
        let dir = std::env::temp_dir().join("longsynth_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel = dir.join("panel.csv");
        let snapshot = dir.join("store.json");

        run_simulate(&flags_of(&[
            ("households", "400"),
            ("months", "6"),
            ("output", panel.to_str().unwrap()),
        ]))
        .unwrap();

        // Cumulative serving run with snapshot verification.
        run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("queries", "200"),
            ("pool-threads", "2"),
            ("snapshot", snapshot.to_str().unwrap()),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&snapshot).unwrap();
        assert!(json.contains("longsynth-release-store/v4"));
        assert!(json.contains("per-shard"));

        // Fixed-window serving run under shared-noise aggregation: the
        // snapshot carries the shared tag.
        run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "fixed-window"),
            ("window", "2"),
            ("queries", "100"),
            ("aggregation", "shared"),
            ("snapshot", snapshot.to_str().unwrap()),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&snapshot).unwrap();
        assert!(json.contains("\"shared\""));

        // Unknown aggregation policy errors cleanly.
        assert!(run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("aggregation", "nope"),
        ]))
        .is_err());

        // Unknown algorithm errors cleanly.
        assert!(run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "nope"),
        ]))
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_rotating_panel_run() {
        let dir = std::env::temp_dir().join("longsynth_cli_rotating_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel = dir.join("panel.csv");
        let est = dir.join("est.csv");
        let snapshot = dir.join("store.json");

        run_simulate(&flags_of(&[
            ("households", "420"),
            ("months", "8"),
            ("output", panel.to_str().unwrap()),
        ]))
        .unwrap();

        // Rotating engine run: 3 waves, cumulative estimates come out.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:3"),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.starts_with("round,threshold_b"));
        assert!(est_text.lines().count() > 8);

        // Rotating engine run under shared noise: the windowed population
        // synthesizer serves the active-set estimates.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:3"),
            ("aggregation", "shared"),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.starts_with("round,threshold_b"));

        // More waves than rounds is a schedule error, not a silent clamp.
        let err = run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:40"),
        ]))
        .unwrap_err();
        assert!(err.contains("does not fit"), "{err}");

        // Rotating serve run with LRU eviction and a v3 snapshot.
        run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:2"),
            ("eviction", "lru"),
            ("queries", "150"),
            ("pool-threads", "2"),
            ("snapshot", snapshot.to_str().unwrap()),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&snapshot).unwrap();
        assert!(json.contains("longsynth-release-store/v4"));
        assert!(json.contains("\"dynamic\": true") || json.contains("\"dynamic\":true"));

        // Rotating + shared serve run: the population releases land in
        // the store with coverage metadata and the shared tag.
        run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:2"),
            ("aggregation", "shared"),
            ("queries", "120"),
            ("pool-threads", "2"),
            ("snapshot", snapshot.to_str().unwrap()),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&snapshot).unwrap();
        assert!(json.contains("\"shared\""));
        assert!(json.contains("coverage"));

        // Guard rails: rotating needs the cumulative algorithm; --output
        // is refused (ragged merged panel); malformed specs error.
        assert!(run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("panel", "rotating:3"),
        ]))
        .unwrap_err()
        .contains("cumulative"));
        assert!(run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("algorithm", "cumulative"),
            ("panel", "rotating:3"),
            ("output", est.to_str().unwrap()),
        ]))
        .unwrap_err()
        .contains("ragged"));
        for bad in ["rotating:0", "rotating:x", "weekly"] {
            assert!(run_engine(&flags_of(&[
                ("input", panel.to_str().unwrap()),
                ("rho", "0.1"),
                ("shards", "1"),
                ("algorithm", "cumulative"),
                ("panel", bad),
            ]))
            .is_err());
        }
        assert!(run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.1"),
            ("shards", "1"),
            ("eviction", "random"),
        ]))
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_metrics_run_and_stats() {
        let dir = std::env::temp_dir().join("longsynth_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel = dir.join("panel.csv");
        let metrics = dir.join("metrics.jsonl");

        run_simulate(&flags_of(&[
            ("households", "300"),
            ("months", "6"),
            ("output", panel.to_str().unwrap()),
        ]))
        .unwrap();

        // Instrumented engine run: JSONL + Prometheus dumps appear.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "cumulative"),
            ("metrics", metrics.to_str().unwrap()),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&metrics).unwrap();
        // Every line is a standalone JSON object the vendored parser
        // accepts — the exporter's well-formedness contract.
        for line in jsonl.lines() {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(value.get("type").is_some(), "{line}");
        }
        assert!(jsonl.contains("\"engine_rounds_total\""));
        assert!(jsonl.contains("\"budget_event\""));
        let prom = std::fs::read_to_string(metrics.with_extension("prom")).unwrap();
        assert!(prom.contains("# TYPE engine_round_ms histogram"));
        assert!(prom.contains("engine_rounds_total 6"));

        // `stats` reads the dump back (and would exit nonzero on
        // malformed input or swallowed panics).
        run_stats(&flags_of(&[("metrics", metrics.to_str().unwrap())])).unwrap();
        assert!(run_stats(&flags_of(&[("metrics", "/nonexistent/x.jsonl")])).is_err());
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(run_stats(&flags_of(&[("metrics", bad.to_str().unwrap())])).is_err());

        // Instrumented serve run: one registry covers engine, pool, and
        // serving-layer counters.
        run_serve(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("queries", "100"),
            ("pool-threads", "2"),
            ("metrics", metrics.to_str().unwrap()),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&metrics).unwrap();
        for name in [
            "engine_rounds_total",
            "pool_tasks_total",
            "pool_worker_panics",
            "serve_cache_hits_total",
            "serve_ingest_rounds_total",
        ] {
            assert!(jsonl.contains(&format!("\"{name}\"")), "{name} missing");
        }
        run_stats(&flags_of(&[("metrics", metrics.to_str().unwrap())])).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_ingest_run_and_stats() {
        let dir = std::env::temp_dir().join("longsynth_cli_ingest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let metrics = dir.join("metrics.jsonl");

        run_ingest(&flags_of(&[
            ("rho", "0.05"),
            ("individuals", "400"),
            ("rounds", "6"),
            ("shards", "2"),
            ("producers", "2"),
            ("queue-cap", "128"),
            ("queries", "100"),
            ("pool-threads", "2"),
            ("metrics", metrics.to_str().unwrap()),
        ]))
        .unwrap();
        let jsonl = std::fs::read_to_string(&metrics).unwrap();
        for name in [
            "ingest_events_total",
            "ingest_late_events_total",
            "ingest_rounds_sealed_total",
            "ingest_queue_depth",
            "ingest_queue_peak_depth",
            "ingest_watermark_lag_ms",
            "ingest_seal_ms",
            "engine_rounds_total",
            "serve_ingest_rounds_total",
        ] {
            assert!(jsonl.contains(&format!("\"{name}\"")), "{name} missing");
        }
        // The backpressure bound is visible in the dump: the queue's
        // high-water mark never exceeded the configured cap.
        let peak_line = jsonl
            .lines()
            .find(|line| line.contains("ingest_queue_peak_depth"))
            .unwrap();
        let peak: serde_json::Value = serde_json::from_str(peak_line).unwrap();
        let peak = peak
            .get("value")
            .and_then(serde_json::Value::as_f64)
            .unwrap();
        assert!((0.0..=128.0).contains(&peak), "peak {peak} exceeds cap");

        // Drop-policy smoke: nothing was lost, --fail-on-late passes.
        run_stats(&flags_of(&[
            ("metrics", metrics.to_str().unwrap()),
            ("fail-on-late", "true"),
        ]))
        .unwrap();

        // A dump recording late drops fails the check — and only the
        // check (plain stats still succeeds).
        let late = dir.join("late.jsonl");
        std::fs::write(
            &late,
            "{\"type\": \"counter\", \"name\": \"ingest_late_events_total\", \"value\": 3}\n",
        )
        .unwrap();
        run_stats(&flags_of(&[("metrics", late.to_str().unwrap())])).unwrap();
        let err = run_stats(&flags_of(&[
            ("metrics", late.to_str().unwrap()),
            ("fail-on-late", "true"),
        ]))
        .unwrap_err();
        assert!(err.contains("late event"), "{err}");

        // Sliding windows and a grace period run end to end too.
        run_ingest(&flags_of(&[
            ("rho", "0.05"),
            ("individuals", "200"),
            ("rounds", "4"),
            ("window", "120000:60000"),
            ("late-policy", "grace:5000"),
            ("queries", "50"),
        ]))
        .unwrap();

        // Malformed specs error cleanly.
        assert!(run_ingest(&Flags::new()).is_err());
        for (key, value) in [
            ("window", "0"),
            ("window", "60000:x"),
            ("late-policy", "sometimes"),
            ("late-policy", "grace:-1"),
        ] {
            assert!(
                run_ingest(&flags_of(&[("rho", "0.05"), (key, value)])).is_err(),
                "{key}={value} should be rejected"
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_engine_run() {
        let dir = std::env::temp_dir().join("longsynth_cli_engine_test");
        std::fs::create_dir_all(&dir).unwrap();
        let panel = dir.join("panel.csv");
        let synth = dir.join("synth.csv");
        let est = dir.join("est.csv");

        run_simulate(&flags_of(&[
            ("households", "600"),
            ("months", "8"),
            ("output", panel.to_str().unwrap()),
        ]))
        .unwrap();

        // Sharded fixed-window run: merged panel and estimates come out.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "3"),
            ("window", "2"),
            ("output", synth.to_str().unwrap()),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&synth).unwrap();
        assert!(text.starts_with("round_1,"));
        assert!(text.lines().next().unwrap().ends_with("padding"));
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.lines().count() > 7 * 4);

        // Sharded cumulative run over the same panel.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "cumulative"),
            ("output", synth.to_str().unwrap()),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&synth).unwrap();
        // Cumulative engine keeps m = n merged records.
        assert_eq!(text.lines().count(), 601); // header + 600 rows
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.starts_with("round,threshold_b"));

        // Shared-noise runs for both algorithms.
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "3"),
            ("window", "2"),
            ("aggregation", "shared"),
            ("output", synth.to_str().unwrap()),
            ("estimates", est.to_str().unwrap()),
        ]))
        .unwrap();
        let est_text = std::fs::read_to_string(&est).unwrap();
        assert!(est_text.lines().count() > 7 * 4);
        run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "cumulative"),
            ("aggregation", "shared:0.9"),
            ("output", synth.to_str().unwrap()),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&synth).unwrap();
        assert_eq!(text.lines().count(), 601);

        // Unknown aggregation policy errors cleanly.
        assert!(run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("aggregation", "nope"),
        ]))
        .is_err());

        // Unknown algorithm errors cleanly.
        assert!(run_engine(&flags_of(&[
            ("input", panel.to_str().unwrap()),
            ("rho", "0.05"),
            ("shards", "2"),
            ("algorithm", "nope"),
        ]))
        .is_err());

        std::fs::remove_dir_all(&dir).ok();
    }
}
