//! Parallel repetition machinery.
//!
//! Every figure repeats a randomized synthesis some number of times (the
//! paper uses 1000). Repetition `r` draws all of its randomness from
//! `RngFork::new(master).subfork(r)`, so results are bitwise identical at
//! any thread count and any scheduling — the property the DESIGN.md
//! determinism invariant demands.

use longsynth_dp::rng::RngFork;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `reps` independent repetitions of a job, in parallel.
#[derive(Debug, Clone, Copy)]
pub struct RepetitionRunner {
    /// Number of repetitions.
    pub reps: usize,
    /// Master seed; repetition `r` receives `RngFork::new(seed).subfork(r)`.
    pub master_seed: u64,
}

impl RepetitionRunner {
    /// A runner with the given repetition count and master seed.
    pub fn new(reps: usize, master_seed: u64) -> Self {
        assert!(reps > 0, "need at least one repetition");
        Self { reps, master_seed }
    }

    /// Execute `job(rep_index, fork)` for every repetition and return the
    /// results in repetition order.
    pub fn run<T, F>(&self, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, RngFork) -> T + Sync,
    {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(self.reps);
        let master = RngFork::new(self.master_seed);
        // Work queue: std's mpsc receiver is single-consumer, so share it
        // behind a mutex (the per-task lock cost is trivial next to a
        // repetition's synthesis work).
        let (task_tx, task_rx) = mpsc::channel::<usize>();
        for r in 0..self.reps {
            task_tx.send(r).expect("channel open");
        }
        drop(task_tx);
        let task_rx = Mutex::new(task_rx);

        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let task_rx = &task_rx;
                let result_tx = result_tx.clone();
                let job = &job;
                scope.spawn(move || loop {
                    let next = task_rx.lock().expect("queue lock").try_recv();
                    match next {
                        Ok(r) => {
                            let out = job(r, master.subfork(r as u64));
                            result_tx.send((r, out)).expect("collector alive");
                        }
                        Err(_) => break,
                    }
                });
            }
            drop(result_tx);
        });

        let mut results: Vec<(usize, T)> = result_rx.into_iter().collect();
        results.sort_by_key(|(r, _)| *r);
        results.into_iter().map(|(_, t)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn results_are_in_repetition_order() {
        let runner = RepetitionRunner::new(64, 1);
        let out = runner.run(|r, _| r * 2);
        assert_eq!(out, (0..64).map(|r| r * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let runner = RepetitionRunner::new(32, 42);
        let draw = |_r: usize, fork: RngFork| -> u64 { fork.child(0).gen() };
        let a = runner.run(draw);
        let b = runner.run(draw);
        assert_eq!(a, b);
        // Distinct repetitions see distinct streams.
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        RepetitionRunner::new(0, 1);
    }
}
