//! Summary statistics over repetitions.

use longsynth_queries::accuracy::quantile;
use serde::Serialize;

/// Quantile summary of one scalar across repetitions — one "density strip"
/// in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Summary {
    /// Mean across repetitions.
    pub mean: f64,
    /// Median (the solid line in Figs. 3–4).
    pub median: f64,
    /// 2.5th percentile (lower dotted line).
    pub q025: f64,
    /// 97.5th percentile (upper dotted line).
    pub q975: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample of repetition values.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarise zero repetitions");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        Self {
            mean,
            median: quantile(samples, 0.5),
            q025: quantile(samples, 0.025),
            q975: quantile(samples, 0.975),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Half-width of the central 95% interval — a scalar "spread" used by
    /// shape checks (spread shrinks as ρ grows).
    pub fn spread95(&self) -> f64 {
        (self.q975 - self.q025) / 2.0
    }
}

/// Summarise a matrix of repetition × time-point values into one
/// [`Summary`] per time point.
///
/// # Panics
/// Panics if rows are ragged or empty.
pub fn summarise_series(per_rep: &[Vec<f64>]) -> Vec<Summary> {
    assert!(!per_rep.is_empty(), "no repetitions");
    let points = per_rep[0].len();
    assert!(
        per_rep.iter().all(|row| row.len() == points),
        "ragged repetition rows"
    );
    (0..points)
        .map(|i| {
            let column: Vec<f64> = per_rep.iter().map(|row| row[i]).collect();
            Summary::from_samples(&column)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(s.q025 < s.median && s.median < s.q975);
        assert!(s.spread95() > 0.0);
    }

    #[test]
    fn series_summaries_are_per_timepoint() {
        let reps = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]];
        let summaries = summarise_series(&reps);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].median, 2.0);
        assert_eq!(summaries[1].median, 20.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        summarise_series(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
