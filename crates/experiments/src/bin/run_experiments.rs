//! Regenerate every figure and table of the paper.
//!
//! ```text
//! run_experiments [--reps N] [--out DIR] [--households N] [--sipp-csv PATH] [EXPERIMENT...]
//!
//! EXPERIMENT ∈ { fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8,
//!                theory, ablations, all }        (default: all)
//! --reps N        repetitions per experiment     (default: 1000, as in the paper)
//! --out DIR       output directory               (default: results)
//! --households N  SIPP panel size                (default: 23374, the paper's n)
//! --sipp-csv P    use a real SIPP public-use CSV instead of the simulator
//! ```
//!
//! Writes `<out>/<experiment>.csv` (+ `.json`) and appends Markdown to
//! `<out>/summary.md`; prints ASCII previews to stdout.

use longsynth_data::LongitudinalDataset;
use longsynth_experiments::figures::{fig1, fig2, fig3, fig4, fig5to7, sipp_panel_small, theory};
use longsynth_experiments::report::{ascii_chart, markdown_table, write_csv, Series};
use longsynth_experiments::EXPERIMENT_MASTER_SEED;
use std::path::{Path, PathBuf};
use std::time::Instant;

struct Options {
    reps: usize,
    out: PathBuf,
    households: usize,
    sipp_csv: Option<PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        reps: 1000,
        out: PathBuf::from("results"),
        households: longsynth_data::sipp::SIPP_2021_HOUSEHOLDS,
        sipp_csv: None,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => {
                opts.reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--reps needs a positive integer"))
            }
            "--out" => {
                opts.out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")))
            }
            "--households" => {
                opts.households = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--households needs a positive integer"))
            }
            "--sipp-csv" => {
                opts.sipp_csv = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--sipp-csv needs a path")),
                ))
            }
            "--help" | "-h" => {
                println!("see module docs: run_experiments [--reps N] [--out DIR] [EXPERIMENT...]");
                std::process::exit(0);
            }
            other if other.starts_with("--") => die(&format!("unknown flag {other}")),
            name => opts.experiments.push(name.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "theory",
            "ablations",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn load_panel(opts: &Options) -> LongitudinalDataset {
    match &opts.sipp_csv {
        Some(path) => {
            println!("loading real SIPP file {}", path.display());
            longsynth_data::sipp::load_sipp_csv(path, 12)
                .unwrap_or_else(|e| die(&format!("failed to load SIPP CSV: {e}")))
        }
        None => sipp_panel_small(opts.households),
    }
}

fn emit(out_dir: &Path, summary: &mut String, name: &str, title: &str, series: &[Series]) {
    write_csv(&out_dir.join(format!("{name}.csv")), series)
        .unwrap_or_else(|e| die(&format!("writing {name}.csv: {e}")));
    let json = serde_json::to_string_pretty(series).expect("series serialize");
    std::fs::write(out_dir.join(format!("{name}.json")), json)
        .unwrap_or_else(|e| die(&format!("writing {name}.json: {e}")));
    summary.push_str(&markdown_table(title, series));
    summary.push('\n');
    println!("{}", ascii_chart(title, series, 56));
}

fn main() {
    let opts = parse_args();
    std::fs::create_dir_all(&opts.out).unwrap_or_else(|e| die(&format!("mkdir out: {e}")));
    let mut summary = String::from("# longsynth experiment summary\n\n");
    summary.push_str(&format!(
        "reps = {}, households = {}, seed = {EXPERIMENT_MASTER_SEED:#x}\n\n",
        opts.reps, opts.households
    ));
    let panel = load_panel(&opts);
    println!(
        "SIPP panel: {} households x {} months\n",
        panel.individuals(),
        panel.rounds()
    );
    let seed = EXPERIMENT_MASTER_SEED;

    for experiment in &opts.experiments {
        let start = Instant::now();
        match experiment.as_str() {
            "fig1" => {
                let series = fig1::run(&panel, opts.reps, seed ^ 1);
                emit(
                    &opts.out,
                    &mut summary,
                    "fig1",
                    "Figure 1 — SIPP poverty per quarter, synthetic-data answers (ρ=0.005)",
                    &series,
                );
            }
            "fig2" | "fig8" => {
                let series = fig2::run(&panel, fig2::RHO, fig2::THRESHOLD_B, opts.reps, seed ^ 2);
                emit(
                    &opts.out,
                    &mut summary,
                    experiment,
                    &format!(
                        "Figure {} — SIPP households ≥3 months in poverty (cumulative, ρ=0.005)",
                        if experiment == "fig2" { 2 } else { 8 }
                    ),
                    &[series],
                );
            }
            "fig3" | "fig4" => {
                let estimator = if experiment == "fig3" {
                    fig3::Estimator::Debiased
                } else {
                    fig3::Estimator::Biased
                };
                let n = if opts.households == longsynth_data::sipp::SIPP_2021_HOUSEHOLDS {
                    fig3::N // the paper's simulated n = 25 000
                } else {
                    opts.households
                };
                let result = fig3::run(n, opts.reps, estimator, seed ^ 3);
                let _ = fig4::run_biased; // fig4 is the same harness, biased
                let title = format!(
                    "Figure {} — simulated-data max pattern error ({}), bound = {:.5}",
                    if experiment == "fig3" { 3 } else { 4 },
                    if experiment == "fig3" {
                        "debiased"
                    } else {
                        "no debiasing"
                    },
                    result.bound
                );
                emit(&opts.out, &mut summary, experiment, &title, &result.series);
            }
            "fig5" | "fig6" | "fig7" => {
                let rho = match experiment.as_str() {
                    "fig5" => fig5to7::RHO_SWEEP[0],
                    "fig6" => fig5to7::RHO_SWEEP[1],
                    _ => fig5to7::RHO_SWEEP[2],
                };
                let panels = fig5to7::run(&panel, rho, opts.reps, seed ^ 5);
                emit(
                    &opts.out,
                    &mut summary,
                    &format!("{experiment}_biased"),
                    &format!("Figure {experiment} left — synthetic-data results (ρ={rho})"),
                    &panels.biased,
                );
                emit(
                    &opts.out,
                    &mut summary,
                    &format!("{experiment}_debiased"),
                    &format!("Figure {experiment} right — debiased results (ρ={rho})"),
                    &panels.debiased,
                );
            }
            "theory" => {
                let t1 = theory::table_t1(10_000, opts.reps.min(200), seed ^ 7);
                let md = theory::markdown_rows(
                    "Table T1 — Theorem 3.2 bound vs measured (count error)",
                    &t1,
                );
                println!("{md}");
                summary.push_str(&md);
                summary.push('\n');
                let json = serde_json::to_string_pretty(&t1).expect("serialize");
                std::fs::write(opts.out.join("theory_t1.json"), json)
                    .unwrap_or_else(|e| die(&format!("writing theory_t1.json: {e}")));
            }
            "ablations" => {
                let reps = opts.reps.min(200);
                let panel10k = theory::table_panel(10_000, 12);
                let t2 = theory::table_t2(&panel10k, 0.005, reps, seed ^ 8);
                let md2 = theory::markdown_rows(
                    "Table T2 — Algorithm 2 counter/split ablations (count error, ρ=0.005)",
                    &t2,
                );
                let panel_small = theory::table_panel(10_000, 8);
                let gap = theory::reduction_gap(&panel_small, 0.05, reps.min(50), seed ^ 9);
                let md3 = theory::markdown_rows(
                    "Reduction gap — Algorithm 2 vs §2.1 k=T reduction (fraction error, T=8)",
                    &gap,
                );
                let incon = theory::baseline_inconsistency(
                    &theory::table_panel(2_000, 12),
                    0.01,
                    reps.min(50),
                    seed ^ 10,
                );
                let md4 = theory::markdown_rows(
                    "Baseline inconsistency — monotone-statistic violation mass",
                    &incon,
                );
                for md in [&md2, &md3, &md4] {
                    println!("{md}");
                    summary.push_str(md);
                    summary.push('\n');
                }
                let json = serde_json::to_string_pretty(&(t2, gap, incon)).expect("serialize");
                std::fs::write(opts.out.join("ablations.json"), json)
                    .unwrap_or_else(|e| die(&format!("writing ablations.json: {e}")));
            }
            other => die(&format!("unknown experiment {other}")),
        }
        println!(
            "[{experiment}] done in {:.1}s\n",
            start.elapsed().as_secs_f64()
        );
    }

    std::fs::write(opts.out.join("summary.md"), &summary)
        .unwrap_or_else(|e| die(&format!("writing summary.md: {e}")));
    println!("wrote {}", opts.out.join("summary.md").display());
}
