//! Output emitters: CSV, Markdown tables, and terminal-friendly ASCII
//! charts for the figure reproductions.

use crate::stats::Summary;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A labelled series of per-time-point summaries plus its ground truth —
/// the unit every figure module produces.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Series {
    /// Series label (e.g. "in at least one month").
    pub label: String,
    /// X-axis labels (e.g. quarter or month indices).
    pub x: Vec<String>,
    /// Ground-truth values per point.
    pub truth: Vec<f64>,
    /// Empirical summaries per point.
    pub summaries: Vec<Summary>,
}

impl Series {
    /// Validate internal lengths agree.
    pub fn check(&self) {
        assert_eq!(self.x.len(), self.truth.len(), "{}: x/truth", self.label);
        assert_eq!(
            self.x.len(),
            self.summaries.len(),
            "{}: x/summaries",
            self.label
        );
    }
}

/// Write series as a tidy CSV: one row per (series, point).
pub fn write_csv(path: &Path, series: &[Series]) -> io::Result<()> {
    let mut out = String::from("series,x,truth,mean,median,q025,q975,min,max\n");
    for s in series {
        s.check();
        for i in 0..s.x.len() {
            let m = &s.summaries[i];
            writeln!(
                out,
                "{},{},{},{},{},{},{},{},{}",
                escape_csv(&s.label),
                escape_csv(&s.x[i]),
                s.truth[i],
                m.mean,
                m.median,
                m.q025,
                m.q975,
                m.min,
                m.max
            )
            .expect("writing to String cannot fail");
        }
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, out)
}

fn escape_csv(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Render series as a Markdown table (median [q2.5, q97.5] vs truth).
pub fn markdown_table(title: &str, series: &[Series]) -> String {
    let mut out = format!("### {title}\n\n");
    out.push_str("| series | x | truth | median | [2.5%, 97.5%] | mean |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for s in series {
        s.check();
        for i in 0..s.x.len() {
            let m = &s.summaries[i];
            writeln!(
                out,
                "| {} | {} | {:.4} | {:.4} | [{:.4}, {:.4}] | {:.4} |",
                s.label, s.x[i], s.truth[i], m.median, m.q025, m.q975, m.mean
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// A minimal ASCII chart: per point, truth (×) and median (●) on a shared
/// horizontal scale — enough to eyeball the figures in a terminal.
pub fn ascii_chart(title: &str, series: &[Series], width: usize) -> String {
    let mut out = format!("{title}\n");
    let max_val = series
        .iter()
        .flat_map(|s| {
            s.truth
                .iter()
                .chain(s.summaries.iter().map(|m| &m.q975))
                .cloned()
        })
        .fold(0.0f64, f64::max)
        .max(1e-9);
    for s in series {
        s.check();
        out.push_str(&format!("  {}\n", s.label));
        for i in 0..s.x.len() {
            let m = &s.summaries[i];
            let pos = |v: f64| ((v / max_val) * (width as f64 - 1.0)).round().max(0.0) as usize;
            let mut line = vec![b' '; width];
            let (lo, hi) = (pos(m.q025), pos(m.q975));
            for cell in line.iter_mut().take(hi.min(width - 1) + 1).skip(lo) {
                *cell = b'-';
            }
            line[pos(m.median).min(width - 1)] = b'o';
            line[pos(s.truth[i]).min(width - 1)] = b'x';
            out.push_str(&format!(
                "    {:>4} |{}| {:.4}\n",
                s.x[i],
                String::from_utf8_lossy(&line),
                m.median
            ));
        }
    }
    out.push_str(&format!(
        "  scale: 0 .. {max_val:.4}   (x = truth, o = median, --- = 95% band)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    fn demo_series() -> Vec<Series> {
        vec![Series {
            label: "demo, with comma".into(),
            x: vec!["1".into(), "2".into()],
            truth: vec![0.1, 0.2],
            summaries: vec![
                Summary::from_samples(&[0.09, 0.1, 0.11]),
                Summary::from_samples(&[0.19, 0.2, 0.21]),
            ],
        }]
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("longsynth_report_test");
        let path = dir.join("demo.csv");
        write_csv(&path, &demo_series()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 points
        assert!(lines[0].starts_with("series,x,truth"));
        assert!(lines[1].starts_with("\"demo, with comma\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markdown_contains_all_points() {
        let md = markdown_table("Demo", &demo_series());
        assert!(md.contains("### Demo"));
        assert!(md.contains("| demo, with comma | 1 |"));
        assert!(md.contains("| demo, with comma | 2 |"));
    }

    #[test]
    fn ascii_chart_renders_markers() {
        let chart = ascii_chart("Demo", &demo_series(), 40);
        assert!(chart.contains('x'));
        assert!(chart.contains('o'));
        assert!(chart.contains("scale: 0"));
    }
}
