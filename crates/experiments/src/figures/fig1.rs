//! Figure 1: proportions of SIPP households in poverty per quarter (2021),
//! calculated on the synthetic data, ρ = 0.005.
//!
//! This is the biased panel of the [`crate::figures::fig5to7`] machinery at
//! the paper's body-figure budget. Four series: in poverty at least one
//! month / at least two months / at least two consecutive months / all
//! three months of the quarter; X's mark the ground truth.

use crate::figures::fig5to7;
use crate::report::Series;
use longsynth_data::LongitudinalDataset;

/// The paper's Figure 1 budget.
pub const RHO: f64 = 0.005;

/// Regenerate Figure 1's series.
pub fn run(panel: &LongitudinalDataset, reps: usize, master_seed: u64) -> Vec<Series> {
    fig5to7::run(panel, RHO, reps, master_seed).biased
}

/// The debiased companion (shown in the appendix as Fig. 6's right panel).
pub fn run_debiased(panel: &LongitudinalDataset, reps: usize, master_seed: u64) -> Vec<Series> {
    fig5to7::run(panel, RHO, reps, master_seed).debiased
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::sipp_panel_small;

    #[test]
    fn four_series_over_four_quarters() {
        let panel = sipp_panel_small(800);
        let series = run(&panel, 10, 3);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.x.len(), 4);
            s.check();
            // All proportions live in [0, 1].
            for m in &s.summaries {
                assert!((0.0..=1.0).contains(&m.median), "{}: {}", s.label, m.median);
            }
        }
        // The battery ordering holds for the truth values.
        for q in 0..4 {
            assert!(series[0].truth[q] >= series[1].truth[q]);
            assert!(series[1].truth[q] >= series[2].truth[q]);
            assert!(series[2].truth[q] >= series[3].truth[q]);
        }
    }
}
