//! Tables T1 and T2 (ours): executable checks of the paper's bounds, plus
//! the ablations DESIGN.md calls out.
//!
//! * **T1** — Theorem 3.2: the measured `max_{s,t} |p_s^t − (C_s^t + npad)|`
//!   across repetitions versus the printed bound `λ`, over a (ρ, k) grid.
//!   The fraction of repetitions exceeding λ must stay below β.
//! * **T2** — Algorithm 2 counter/split ablations: worst-case threshold
//!   error for tree/simple/block/Honaker counters under uniform vs
//!   Corollary B.1 budget splits, versus the per-counter bounds.
//! * **Reduction gap** — the §2.1 `k = T` reduction versus Algorithm 2 on
//!   identical data: the `2^k`-style blow-up, measured.
//! * **Baseline inconsistency** — the §1 recompute strawman's monotone
//!   statistic violations versus Algorithm 1's structural zero.

// Threshold loops index by `b`/`t` to mirror the paper's S_b^t notation.
#![allow(clippy::needless_range_loop)]

use crate::runner::RepetitionRunner;
use longsynth::baseline::RecomputeBaseline;
use longsynth::padding::theorem_bound_counts;
use longsynth::reduction::ReductionSynthesizer;
use longsynth::{
    BudgetSplit, CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig,
    FixedWindowSynthesizer, PaddingPolicy,
};
use longsynth_counters::CounterKind;
use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::rng_from_seed;
use longsynth_queries::cumulative::cumulative_counts;
use longsynth_queries::window::window_histogram;
use serde::Serialize;
use std::fmt::Write as _;

/// One row of a theory-vs-measured table.
#[derive(Debug, Clone, Serialize)]
pub struct BoundCheckRow {
    /// Configuration label.
    pub config: String,
    /// Median (across repetitions) of the worst-case error.
    pub measured_median: f64,
    /// Maximum observed worst-case error.
    pub measured_max: f64,
    /// The theoretical bound the measurement is checked against.
    pub bound: f64,
    /// Fraction of repetitions whose worst-case error exceeded the bound.
    pub exceed_fraction: f64,
}

/// Render rows as a Markdown table.
pub fn markdown_rows(title: &str, rows: &[BoundCheckRow]) -> String {
    let mut out = format!("### {title}\n\n");
    out.push_str("| config | measured median | measured max | bound | exceed frac |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in rows {
        writeln!(
            out,
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            r.config, r.measured_median, r.measured_max, r.bound, r.exceed_fraction
        )
        .expect("writing to String cannot fail");
    }
    out
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs[xs.len() / 2]
}

/// The evaluation panel for the tables: a Markov panel with SIPP-like
/// persistence (deterministic).
pub fn table_panel(n: usize, horizon: usize) -> LongitudinalDataset {
    two_state_markov(
        &mut rng_from_seed(77),
        n,
        horizon,
        MarkovParams {
            initial_one: 0.12,
            stay_one: 0.8,
            enter_one: 0.025,
        },
    )
}

/// **T1**: Theorem 3.2 bound checks across a (ρ, k) grid.
pub fn table_t1(n: usize, reps: usize, master_seed: u64) -> Vec<BoundCheckRow> {
    let horizon = 12;
    let panel = table_panel(n, horizon);
    let beta = 0.05;
    let mut rows = Vec::new();
    for &rho_v in &[0.001, 0.005, 0.05] {
        for &k in &[2usize, 3] {
            let rho = Rho::new(rho_v).expect("positive");
            let truth: Vec<Vec<u64>> = (k - 1..horizon)
                .map(|t| window_histogram(&panel, t, k))
                .collect();
            let runner = RepetitionRunner::new(reps, master_seed ^ (k as u64) << 8);
            let worst: Vec<f64> = runner.run(|_r, fork| {
                let config = FixedWindowConfig::new(horizon, k, rho)
                    .expect("valid")
                    .with_padding(PaddingPolicy::Recommended { beta });
                let mut synth = FixedWindowSynthesizer::new(config, fork.child(0));
                for (_, col) in panel.stream() {
                    synth.step(col).expect("panel matches");
                }
                let npad = synth.npad() as i64;
                let mut worst = 0i64;
                for (idx, t) in (k - 1..horizon).enumerate() {
                    let est = synth.histogram_estimate(t).expect("released");
                    for (s, &p) in est.iter().enumerate() {
                        let c = truth[idx][s] as i64;
                        worst = worst.max((p - (c + npad)).abs());
                    }
                }
                worst as f64
            });
            let bound = theorem_bound_counts(horizon, k, rho, beta);
            let exceed = worst.iter().filter(|&&w| w > bound).count() as f64 / worst.len() as f64;
            rows.push(BoundCheckRow {
                config: format!("Alg1 ρ={rho_v}, k={k}, n={n}"),
                measured_median: median(worst.clone()),
                measured_max: worst.iter().cloned().fold(0.0, f64::max),
                bound,
                exceed_fraction: exceed,
            });
        }
    }
    rows
}

/// **T2**: Algorithm 2 counter and budget-split ablations (worst-case
/// threshold-count error over all `(b ≥ 1, t)`).
pub fn table_t2(
    panel: &LongitudinalDataset,
    rho_v: f64,
    reps: usize,
    master_seed: u64,
) -> Vec<BoundCheckRow> {
    let horizon = panel.rounds();
    let truth: Vec<Vec<u64>> = (0..horizon).map(|t| cumulative_counts(panel, t)).collect();
    let beta = 0.05 / horizon as f64; // per-counter share of a 5% budget
    let mut rows = Vec::new();
    for kind in CounterKind::all() {
        for split in [BudgetSplit::CorollaryB1, BudgetSplit::Uniform] {
            let runner = RepetitionRunner::new(reps, master_seed ^ (kind as u64) << 16);
            let results: Vec<(f64, f64)> = runner.run(|_r, fork| {
                let config = CumulativeConfig::new(horizon, Rho::new(rho_v).expect("positive"))
                    .expect("valid")
                    .with_counter(kind)
                    .with_split(split);
                let mut synth = CumulativeSynthesizer::new(config, fork.subfork(0), fork.child(1));
                for (_, col) in panel.stream() {
                    synth.step(col).expect("panel matches");
                }
                let mut worst = 0i64;
                for t in 0..horizon {
                    let est = synth.threshold_estimates(t).expect("released");
                    for b in 1..=(t + 1) {
                        let tru = truth[t].get(b).copied().unwrap_or(0) as i64;
                        worst = worst.max((est[b] - tru).abs());
                    }
                }
                (worst as f64, synth.error_bound_counts(beta))
            });
            let worst: Vec<f64> = results.iter().map(|(w, _)| *w).collect();
            let bound = results[0].1;
            let exceed = worst.iter().filter(|&&w| w > bound).count() as f64 / worst.len() as f64;
            rows.push(BoundCheckRow {
                config: format!("Alg2 {kind} / {split:?} ρ={rho_v}"),
                measured_median: median(worst.clone()),
                measured_max: worst.iter().cloned().fold(0.0, f64::max),
                bound,
                exceed_fraction: exceed,
            });
        }
    }
    rows
}

/// **Reduction gap**: Algorithm 2 vs the §2.1 `k = T` reduction, measured
/// as the worst error over thresholds `b ∈ 1..=4` and all rounds, in
/// fraction units.
pub fn reduction_gap(
    panel: &LongitudinalDataset,
    rho_v: f64,
    reps: usize,
    master_seed: u64,
) -> Vec<BoundCheckRow> {
    let horizon = panel.rounds();
    assert!(horizon <= 16, "reduction capped at T <= 16");
    let n = panel.individuals();
    let truth: Vec<Vec<u64>> = (0..horizon).map(|t| cumulative_counts(panel, t)).collect();
    let max_b = 4usize;
    let worst_over = |est: &dyn Fn(usize, usize) -> f64| -> f64 {
        let mut worst = 0.0f64;
        for t in 0..horizon {
            for b in 1..=max_b.min(t + 1) {
                let tru = truth[t].get(b).copied().unwrap_or(0) as f64 / n as f64;
                worst = worst.max((est(t, b) - tru).abs());
            }
        }
        worst
    };

    let runner = RepetitionRunner::new(reps, master_seed);
    let pairs: Vec<(f64, f64)> = runner.run(|_r, fork| {
        let rho = Rho::new(rho_v).expect("positive");
        let config = CumulativeConfig::new(horizon, rho).expect("valid");
        let mut alg2 = CumulativeSynthesizer::new(config, fork.subfork(0), fork.child(1));
        let mut reduction =
            ReductionSynthesizer::new(horizon, rho, fork.child(2)).expect("valid horizon");
        for (_, col) in panel.stream() {
            alg2.step(col).expect("panel matches");
            reduction.step(col).expect("panel matches");
        }
        let a = worst_over(&|t, b| alg2.estimate_fraction(t, b).expect("released"));
        let r = worst_over(&|t, b| reduction.estimate_fraction(t, b).expect("released"));
        (a, r)
    });

    let alg2_errors: Vec<f64> = pairs.iter().map(|(a, _)| *a).collect();
    let red_errors: Vec<f64> = pairs.iter().map(|(_, r)| *r).collect();
    vec![
        BoundCheckRow {
            config: format!("Alg2 (tree, Cor B.1) ρ={rho_v}"),
            measured_median: median(alg2_errors.clone()),
            measured_max: alg2_errors.iter().cloned().fold(0.0, f64::max),
            bound: f64::NAN,
            exceed_fraction: 0.0,
        },
        BoundCheckRow {
            config: format!("§2.1 reduction (k=T) ρ={rho_v}"),
            measured_median: median(red_errors.clone()),
            measured_max: red_errors.iter().cloned().fold(0.0, f64::max),
            bound: f64::NAN,
            exceed_fraction: 0.0,
        },
    ]
}

/// **Baseline inconsistency**: total backwards movement of the "ever had a
/// 2-run" statistic for the recompute strawman vs Algorithm 1 (persistent
/// records ⇒ structurally zero).
pub fn baseline_inconsistency(
    panel: &LongitudinalDataset,
    rho_v: f64,
    reps: usize,
    master_seed: u64,
) -> Vec<BoundCheckRow> {
    let horizon = panel.rounds();
    let k = 3usize;
    let runner = RepetitionRunner::new(reps, master_seed);
    let pairs: Vec<(f64, f64)> = runner.run(|_r, fork| {
        let rho = Rho::new(rho_v).expect("positive");
        // Strawman.
        let mut strawman =
            RecomputeBaseline::new(horizon, k, rho, PaddingPolicy::None, fork.subfork(0))
                .expect("valid");
        for (_, col) in panel.stream() {
            strawman.step(col).expect("panel matches");
        }
        let strawman_violation = strawman.monotonicity_violation(2).expect("complete run");

        // Algorithm 1: measure the same statistic on the persistent
        // population.
        let config = FixedWindowConfig::new(horizon, k, rho).expect("valid");
        let mut alg1 = FixedWindowSynthesizer::new(config, fork.child(1));
        for (_, col) in panel.stream() {
            alg1.step(col).expect("panel matches");
        }
        let records = alg1.synthetic();
        let mut alg1_violation = 0.0f64;
        let mut prev = 0.0f64;
        for t in k..=records.rounds() {
            let frac = records
                .iter()
                .filter(|r| {
                    // "ever had a 2-run" within the first t rounds.
                    let prefix: longsynth_data::BitStream = r.iter().take(t).collect();
                    prefix.has_ones_run(2)
                })
                .count() as f64
                / records.len() as f64;
            if t > k {
                alg1_violation += (prev - frac).max(0.0);
            }
            prev = frac;
        }
        (strawman_violation, alg1_violation)
    });
    let strawman: Vec<f64> = pairs.iter().map(|(s, _)| *s).collect();
    let alg1: Vec<f64> = pairs.iter().map(|(_, a)| *a).collect();
    vec![
        BoundCheckRow {
            config: format!("recompute strawman ρ={rho_v} (violation mass)"),
            measured_median: median(strawman.clone()),
            measured_max: strawman.iter().cloned().fold(0.0, f64::max),
            bound: 0.0,
            exceed_fraction: strawman.iter().filter(|&&v| v > 0.0).count() as f64
                / strawman.len() as f64,
        },
        BoundCheckRow {
            config: format!("Algorithm 1 ρ={rho_v} (violation mass)"),
            measured_median: median(alg1.clone()),
            measured_max: alg1.iter().cloned().fold(0.0, f64::max),
            bound: 0.0,
            exceed_fraction: alg1.iter().filter(|&&v| v > 0.0).count() as f64 / alg1.len() as f64,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_bounds_hold_empirically() {
        let rows = table_t1(2_000, 20, 41);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            // β = 0.05: with 20 reps allow at most 2 exceedances of λ.
            assert!(
                row.exceed_fraction <= 0.10,
                "{}: exceed {}",
                row.config,
                row.exceed_fraction
            );
            assert!(row.measured_median <= row.bound, "{}", row.config);
        }
    }

    #[test]
    fn t2_tree_beats_simple_under_uniform_split() {
        let panel = table_panel(3_000, 12);
        let rows = table_t2(&panel, 0.01, 12, 43);
        assert_eq!(rows.len(), 8);
        let find = |needle: &str| {
            rows.iter()
                .find(|r| r.config.contains(needle))
                .unwrap_or_else(|| panic!("missing row {needle}"))
        };
        // All bounds respected at ≥ 75% of reps (loose: 12 reps only).
        for row in &rows {
            assert!(
                row.exceed_fraction <= 0.25,
                "{}: exceed {}",
                row.config,
                row.exceed_fraction
            );
        }
        // Tree no worse than simple (same split): the T = 12 gap is small
        // but the ordering should hold in the median.
        let tree = find("tree / CorollaryB1");
        let simple = find("simple / CorollaryB1");
        assert!(
            tree.measured_median <= simple.measured_median * 1.5,
            "tree {} vs simple {}",
            tree.measured_median,
            simple.measured_median
        );
    }

    #[test]
    fn reduction_is_much_worse_than_alg2() {
        let panel = table_panel(3_000, 8);
        let rows = reduction_gap(&panel, 0.05, 6, 44);
        assert!(
            rows[1].measured_median > 3.0 * rows[0].measured_median,
            "reduction {} vs alg2 {}",
            rows[1].measured_median,
            rows[0].measured_median
        );
    }

    #[test]
    fn baseline_violates_alg1_does_not() {
        let panel = table_panel(500, 10);
        let rows = baseline_inconsistency(&panel, 0.02, 6, 45);
        assert!(rows[0].measured_max > 0.0, "strawman never violated");
        assert_eq!(rows[1].measured_max, 0.0, "Alg1 violated monotonicity");
    }

    #[test]
    fn markdown_renders() {
        let rows = vec![BoundCheckRow {
            config: "demo".into(),
            measured_median: 1.0,
            measured_max: 2.0,
            bound: 3.0,
            exceed_fraction: 0.0,
        }];
        let md = markdown_rows("T1", &rows);
        assert!(md.contains("### T1"));
        assert!(md.contains("| demo |"));
    }
}
