//! One module per reproduced figure / table. See crate docs for the map.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5to7;
pub mod theory;

use crate::SIPP_PANEL_SEED;
use longsynth_data::sipp::SippConfig;
use longsynth_data::LongitudinalDataset;
use longsynth_dp::rng::rng_from_seed;

/// The simulated SIPP 2021 panel every SIPP experiment consumes
/// (n = 23 374 households, T = 12 months; see DESIGN.md §5 for the
/// substitution rationale). Deterministic: the same panel every call.
pub fn sipp_panel() -> LongitudinalDataset {
    SippConfig::default().simulate(&mut rng_from_seed(SIPP_PANEL_SEED))
}

/// A smaller SIPP-like panel for fast tests and smoke runs.
pub fn sipp_panel_small(households: usize) -> LongitudinalDataset {
    SippConfig::small(households).simulate(&mut rng_from_seed(SIPP_PANEL_SEED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sipp_panel_is_deterministic_and_paper_sized() {
        let a = sipp_panel_small(500);
        let b = sipp_panel_small(500);
        assert_eq!(a, b);
        assert_eq!(a.rounds(), 12);
        assert_eq!(a.individuals(), 500);
    }
}
