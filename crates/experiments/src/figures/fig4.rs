//! Figure 4: the same simulated-data error experiment as Figure 3 but
//! **without** the debiasing step — proportions read directly off the
//! synthetic data (`count/n*`).
//!
//! The paper's message ("the debiasing step is essential: calculating the
//! proportions on the synthetic data directly leads to a substantially
//! larger error") shows up as a roughly order-of-magnitude gap between the
//! two figures' error scales.

use crate::figures::fig3::{run, Estimator, SimErrorResult};

/// Regenerate Figure 4 (biased estimator).
pub fn run_biased(n: usize, reps: usize, master_seed: u64) -> SimErrorResult {
    run(n, reps, Estimator::Biased, master_seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig3;

    #[test]
    fn biased_error_dominates_debiased_error() {
        let n = 5_000;
        let debiased = fig3::run(n, 15, Estimator::Debiased, 31);
        let biased = run_biased(n, 15, 31);
        // Compare the matching-width (k'=3) panels at the final timestep.
        let d = debiased.series[0].summaries.last().unwrap().median;
        let b = biased.series[0].summaries.last().unwrap().median;
        assert!(
            b > 4.0 * d,
            "bias gap too small: biased {b} vs debiased {d}"
        );
        // And the biased reference bound dominates the debiased one.
        assert!(biased.bound > debiased.bound);
    }
}
