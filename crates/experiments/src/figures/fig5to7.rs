//! Figures 5–7: SIPP quarterly poverty panels at ρ ∈ {0.001, 0.005, 0.05},
//! biased ("Synthetic Data Results") and debiased panels side by side.
//!
//! This module owns the shared quarterly machinery; Figure 1 (the body
//! figure) is the biased panel at ρ = 0.005 and re-exports from here.

use crate::report::Series;
use crate::runner::RepetitionRunner;
use crate::stats::summarise_series;
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_queries::window::{quarterly_battery, WindowQuery};

/// Per-repetition result: (biased, debiased) values per (query, quarter).
type RepValues = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// The quarters of the SIPP year: evaluation rounds (0-based) for `k = 3`.
pub const QUARTER_ROUNDS: [usize; 4] = [2, 5, 8, 11];

/// Both panels of one Figure-5-style column.
#[derive(Debug, Clone)]
pub struct QuarterlyPanels {
    /// Privacy budget used.
    pub rho: f64,
    /// "Synthetic Data Results": `q(synthetic)/n*`, padding bias included.
    pub biased: Vec<Series>,
    /// "Debiased Results": `(q(synthetic) − padding)/n`.
    pub debiased: Vec<Series>,
}

/// Run the quarterly experiment: `reps` independent synthesizer runs over
/// the same panel, evaluating the §5 query battery at every quarter.
pub fn run(
    panel: &LongitudinalDataset,
    rho: f64,
    reps: usize,
    master_seed: u64,
) -> QuarterlyPanels {
    let horizon = panel.rounds();
    let battery = quarterly_battery(3);
    let runner = RepetitionRunner::new(reps, master_seed);

    // Per repetition: biased and debiased values for (query × quarter).
    let per_rep: Vec<RepValues> = runner.run(|_r, fork| {
        let config = FixedWindowConfig::new(horizon, 3, Rho::new(rho).expect("positive rho"))
            .expect("valid config");
        let mut synth = FixedWindowSynthesizer::new(config, fork.child(0));
        for (_, col) in panel.stream() {
            synth.step(col).expect("panel matches config");
        }
        let biased = battery
            .iter()
            .map(|q| {
                QUARTER_ROUNDS
                    .iter()
                    .map(|&t| synth.estimate_biased(t, q).expect("released round"))
                    .collect()
            })
            .collect();
        let debiased = battery
            .iter()
            .map(|q| {
                QUARTER_ROUNDS
                    .iter()
                    .map(|&t| synth.estimate_debiased(t, q).expect("released round"))
                    .collect()
            })
            .collect();
        (biased, debiased)
    });

    let build_panel = |select: &dyn Fn(&RepValues) -> &Vec<Vec<f64>>| {
        battery
            .iter()
            .enumerate()
            .map(|(qi, query)| {
                let rows: Vec<Vec<f64>> =
                    per_rep.iter().map(|rep| select(rep)[qi].clone()).collect();
                Series {
                    label: query.name().to_string(),
                    x: (1..=4).map(|q| q.to_string()).collect(),
                    truth: truth_for(panel, query),
                    summaries: summarise_series(&rows),
                }
            })
            .collect()
    };

    QuarterlyPanels {
        rho,
        biased: build_panel(&|rep| &rep.0),
        debiased: build_panel(&|rep| &rep.1),
    }
}

fn truth_for(panel: &LongitudinalDataset, query: &WindowQuery) -> Vec<f64> {
    QUARTER_ROUNDS
        .iter()
        .map(|&t| query.evaluate_true(panel, t))
        .collect()
}

/// The ρ sweep of Figures 5–7.
pub const RHO_SWEEP: [f64; 3] = [0.001, 0.005, 0.05];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::sipp_panel_small;

    #[test]
    fn shapes_of_the_paper_hold_on_a_small_panel() {
        // 2 000 households, 40 reps keeps the test fast while the effects
        // (bias direction, debiased centring, spread vs rho) are still
        // order-of-magnitude visible.
        let panel = sipp_panel_small(2_000);
        let loose = run(&panel, 0.005, 40, 7);
        loose.biased.iter().for_each(Series::check);
        loose.debiased.iter().for_each(Series::check);

        for (qi, series) in loose.debiased.iter().enumerate() {
            for (i, summary) in series.summaries.iter().enumerate() {
                // Debiased medians centre on truth well within the 95% band.
                let err = (summary.median - series.truth[i]).abs();
                assert!(
                    err < 0.15,
                    "query {qi}, quarter {i}: debiased median {} vs truth {}",
                    summary.median,
                    series.truth[i]
                );
            }
        }
        // Biased answers drift away from truth (padding + n* inflation):
        // for the rare "all three months" query the biased estimate is
        // pushed toward uniform mass, i.e. *upward* relative to truth.
        let rare_biased = &loose.biased[3];
        let med = rare_biased.summaries[0].median;
        assert!(
            med > rare_biased.truth[0],
            "bias direction: {med} vs {}",
            rare_biased.truth[0]
        );

        // Spread shrinks when rho grows by 10x.
        let tight = run(&panel, 0.05, 40, 8);
        let loose_spread: f64 = loose.debiased[0]
            .summaries
            .iter()
            .map(|s| s.spread95())
            .sum();
        let tight_spread: f64 = tight.debiased[0]
            .summaries
            .iter()
            .map(|s| s.spread95())
            .sum();
        assert!(
            tight_spread < loose_spread,
            "spread did not shrink: {tight_spread} vs {loose_spread}"
        );
    }
}
