//! Figure 3: empirical error of Algorithm 1 on the Appendix C.1 simulated
//! data, **with** the debiasing step.
//!
//! Workload: n = 25 000 individuals, T = 12, all updates equal to 1
//! ("rather extreme simulated data"), synthesizer window k = 3, ρ = 0.005.
//! Three panels: the evaluated query width k′ matches the synthesizer
//! (k′ = 3), is smaller (k′ = 2), or exceeds it (k′ = 4). Per repetition
//! and timestep we record the **maximum absolute error over all width-k′
//! pattern fractions**; the figure plots the median and the 2.5/97.5
//! percentiles across repetitions, against the Theorem 3.2 / Corollary 3.3
//! bound.

use crate::report::Series;
use crate::runner::RepetitionRunner;
use crate::stats::summarise_series;
use longsynth::padding::theorem_bound_debiased;
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_data::generators::all_ones;
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_queries::pattern::Pattern;
use longsynth_queries::window::WindowQuery;

/// Paper parameters for Figures 3–4.
pub const N: usize = 25_000;
/// Time horizon.
pub const HORIZON: usize = 12;
/// Synthesizer window width.
pub const WINDOW: usize = 3;
/// Privacy budget.
pub const RHO: f64 = 0.005;
/// Failure probability at which the bound lines are drawn.
pub const BETA: f64 = 0.05;

/// The three panels' query widths.
pub const QUERY_WIDTHS: [usize; 3] = [3, 2, 4];

/// Output of a Figure 3/4 run: error series per query width plus the
/// theoretical reference value.
#[derive(Debug, Clone)]
pub struct SimErrorResult {
    /// One series per query width (max-abs-error per timestep).
    pub series: Vec<Series>,
    /// The horizontal reference line (debiased: Corollary 3.3's `λ/n`).
    pub bound: f64,
}

/// Whether to debias the estimates (Figure 3) or read raw synthetic
/// proportions (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// `(count − padding)/n` (Figure 3).
    Debiased,
    /// `count/n*` (Figure 4).
    Biased,
}

/// The extreme panel of Appendix C.1 (size-parameterised for tests).
pub fn extreme_panel(n: usize) -> LongitudinalDataset {
    all_ones(n, HORIZON)
}

/// Run the simulated-data error experiment.
pub fn run(n: usize, reps: usize, estimator: Estimator, master_seed: u64) -> SimErrorResult {
    let panel = extreme_panel(n);
    let rho = Rho::new(RHO).expect("positive rho");
    let runner = RepetitionRunner::new(reps, master_seed);

    // Per repetition: per query width, per timestep, the max pattern error.
    let per_rep: Vec<Vec<Vec<f64>>> = runner.run(|_r, fork| {
        let config = FixedWindowConfig::new(HORIZON, WINDOW, rho).expect("valid config");
        let mut synth = FixedWindowSynthesizer::new(config, fork.child(0));
        for (_, col) in panel.stream() {
            synth.step(col).expect("panel matches config");
        }
        QUERY_WIDTHS
            .iter()
            .map(|&w| {
                timesteps(w)
                    .map(|t| max_pattern_error(&synth, &panel, t, w, estimator))
                    .collect()
            })
            .collect()
    });

    let series = QUERY_WIDTHS
        .iter()
        .enumerate()
        .map(|(wi, &w)| {
            let rows: Vec<Vec<f64>> = per_rep.iter().map(|rep| rep[wi].clone()).collect();
            Series {
                label: format!("query k'={w} (synthesizer k={WINDOW})"),
                x: timesteps(w).map(|t| (t + 1).to_string()).collect(),
                truth: timesteps(w).map(|_| 0.0).collect(), // error truth is 0
                summaries: summarise_series(&rows),
            }
        })
        .collect();

    let bound = match estimator {
        Estimator::Debiased => theorem_bound_debiased(HORIZON, WINDOW, rho, BETA, n),
        Estimator::Biased => {
            longsynth::padding::biased_reference_bound(HORIZON, WINDOW, rho, BETA, n)
        }
    };
    SimErrorResult { series, bound }
}

/// Evaluation rounds for a width-`w` query: every released round with a
/// full window (0-based).
fn timesteps(w: usize) -> impl Iterator<Item = usize> {
    let first = (WINDOW - 1).max(w - 1);
    first..HORIZON
}

fn max_pattern_error(
    synth: &FixedWindowSynthesizer,
    panel: &LongitudinalDataset,
    t: usize,
    width: usize,
    estimator: Estimator,
) -> f64 {
    let mut worst = 0.0f64;
    for pattern in Pattern::all(width) {
        let query = WindowQuery::pattern(pattern);
        // Debiasing is the Corollary 3.3 step: subtract npad per bin
        // (equivalently, the query run on the conceptual static padding
        // data). For k' ≤ k this reads the bookkept histograms — flat error
        // (Theorem 3.2 is time-uniform); for k' = 4 it evaluates the
        // records, where selection churn accumulates — the bottom panel's
        // growing error.
        let est = match estimator {
            Estimator::Debiased => synth.estimate_debiased(t, &query),
            Estimator::Biased => synth.estimate_biased(t, &query),
        }
        .expect("round released");
        let truth = query.evaluate_true(panel, t);
        worst = worst.max((est - truth).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debiased_error_is_flat_and_below_bound() {
        // Scaled down (n = 5 000, 20 reps) but the two Figure-3 claims are
        // scale-free: (1) error roughly constant over time (Theorem 3.2 is
        // time-uniform); (2) matching-width errors below the bound.
        let result = run(5_000, 20, Estimator::Debiased, 21);
        assert_eq!(result.series.len(), 3);
        let matching = &result.series[0];
        let medians: Vec<f64> = matching.summaries.iter().map(|s| s.median).collect();
        let first = medians.first().copied().unwrap();
        let last = medians.last().copied().unwrap();
        assert!(
            last < 3.0 * first + 1e-4,
            "error drifted over time: {medians:?}"
        );
        // 97.5th percentile below the β = 0.05 bound for the matching width.
        let bound = {
            let rho = Rho::new(RHO).unwrap();
            theorem_bound_debiased(HORIZON, WINDOW, rho, BETA, 5_000)
        };
        for s in &matching.summaries {
            assert!(s.q975 <= bound, "{} above bound {bound}", s.q975);
        }
    }

    #[test]
    fn larger_query_width_is_clearly_worse() {
        // The bottom panel's message: queries beyond the synthesizer's
        // window are not covered by any guarantee and come out worse. The
        // k'=4 windows cross the consistency boundary, picking up the
        // record-selection churn that widths ≤ k never see.
        let result = run(5_000, 20, Estimator::Debiased, 22);
        let matching: f64 = result.series[0]
            .summaries
            .iter()
            .map(|s| s.median)
            .sum::<f64>()
            / result.series[0].summaries.len() as f64;
        let wide: f64 = result.series[2]
            .summaries
            .iter()
            .map(|s| s.median)
            .sum::<f64>()
            / result.series[2].summaries.len() as f64;
        assert!(
            wide > 1.25 * matching,
            "k'=4 error {wide} not clearly above k'=3 error {matching}"
        );
    }

    #[test]
    fn record_debias_reveals_selection_churn_growth() {
        // The same experiment debiased by the *realized* padding records
        // (instead of the scalar npad): under uniform selection the padding
        // drifts, so the error grows with t — the drift the Stratified
        // selection strategy removes (see the ablation_padding bench).
        use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
        let n = 5_000;
        let panel = extreme_panel(n);
        let rho = Rho::new(RHO).unwrap();
        let mut first_sum = 0.0;
        let mut last_sum = 0.0;
        for seed in 0..8 {
            let config = FixedWindowConfig::new(HORIZON, WINDOW, rho).unwrap();
            let mut synth =
                FixedWindowSynthesizer::new(config, longsynth_dp::rng::rng_from_seed(900 + seed));
            for (_, col) in panel.stream() {
                synth.step(col).unwrap();
            }
            let err_at = |t: usize| {
                Pattern::all(WINDOW)
                    .map(|p| {
                        let q = WindowQuery::pattern(p);
                        let est = synth.estimate_debiased_records(t, &q).unwrap();
                        (est - q.evaluate_true(&panel, t)).abs()
                    })
                    .fold(0.0f64, f64::max)
            };
            first_sum += err_at(WINDOW - 1);
            last_sum += err_at(HORIZON - 1);
        }
        assert!(
            last_sum > 2.0 * first_sum,
            "no churn growth: first {first_sum}, last {last_sum}"
        );
    }
}

#[cfg(test)]
mod probe {
    use super::*;

    #[test]
    #[ignore]
    fn print_medians() {
        for (label, est) in [
            ("debiased", Estimator::Debiased),
            ("biased", Estimator::Biased),
        ] {
            let r = run(25_000, 40, est, 99);
            println!("== {label} bound={:.6}", r.bound);
            for s in &r.series {
                let meds: Vec<String> = s
                    .summaries
                    .iter()
                    .map(|m| format!("{:.5}", m.median))
                    .collect();
                println!("{}: {}", s.label, meds.join(" "));
            }
        }
    }
}
