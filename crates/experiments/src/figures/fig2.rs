//! Figures 2 and 8: proportion of SIPP households in poverty for at least
//! three months up to any given month of 2021, from Algorithm 2's synthetic
//! data, ρ = 0.005.
//!
//! (Figure 8 is the appendix restatement of Figure 2 — same workload, same
//! budget — so one module serves both; the binary emits it under both
//! names.)

use crate::report::Series;
use crate::runner::RepetitionRunner;
use crate::stats::summarise_series;
use longsynth::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_queries::cumulative::cumulative_counts;

/// The paper's budget for Figures 2/8.
pub const RHO: f64 = 0.005;

/// The threshold highlighted in the paper ("at least three months").
pub const THRESHOLD_B: usize = 3;

/// Regenerate the Figure 2 series (one series: the `b = 3` trajectory over
/// all months; Algorithm 2 releases every `b` simultaneously — pass a
/// different `b` to look at the others).
pub fn run(
    panel: &LongitudinalDataset,
    rho: f64,
    b: usize,
    reps: usize,
    master_seed: u64,
) -> Series {
    let horizon = panel.rounds();
    let n = panel.individuals();
    let runner = RepetitionRunner::new(reps, master_seed);
    let per_rep: Vec<Vec<f64>> = runner.run(|_r, fork| {
        let config = CumulativeConfig::new(horizon, Rho::new(rho).expect("positive rho"))
            .expect("valid config");
        let mut synth = CumulativeSynthesizer::new(config, fork.subfork(0), fork.child(1));
        for (_, col) in panel.stream() {
            synth.step(col).expect("panel matches config");
        }
        (0..horizon)
            .map(|t| synth.estimate_fraction(t, b).expect("released round"))
            .collect()
    });
    let truth: Vec<f64> = (0..horizon)
        .map(|t| cumulative_counts(panel, t).get(b).copied().unwrap_or(0) as f64 / n as f64)
        .collect();
    Series {
        label: format!("≥{b} months"),
        x: (1..=horizon).map(|m| m.to_string()).collect(),
        truth,
        summaries: summarise_series(&per_rep),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::sipp_panel_small;

    #[test]
    fn trajectory_is_monotone_and_tracks_truth() {
        let panel = sipp_panel_small(3_000);
        let series = run(&panel, 0.005, THRESHOLD_B, 30, 11);
        series.check();
        assert_eq!(series.x.len(), 12);
        // Truth is monotone non-decreasing (cumulative statistic)…
        for w in series.truth.windows(2) {
            assert!(w[1] >= w[0]);
        }
        // …and so is every released median (Algorithm 2's monotonization).
        for w in series.summaries.windows(2) {
            assert!(w[1].median >= w[0].median - 1e-12);
        }
        // First two months are structurally zero (cannot have 3 ones yet).
        assert_eq!(series.truth[0], 0.0);
        assert_eq!(series.truth[1], 0.0);
        // Median error stays small relative to the signal by December.
        let final_err = (series.summaries[11].median - series.truth[11]).abs();
        assert!(final_err < 0.05, "December error {final_err}");
    }
}
