//! Experiment harness reproducing every figure of the paper.
//!
//! Each module under [`figures`] regenerates one figure (or one of our two
//! theory-vs-measured tables) as structured data: the same series the paper
//! plots, produced by repeating the relevant synthesizer with independent
//! seeds and summarising the empirical noise distribution by quantiles —
//! exactly the construction behind the paper's density strips ("1000
//! repetitions of the experiments").
//!
//! The `run_experiments` binary drives everything and writes CSV + Markdown
//! into `results/`; EXPERIMENTS.md quotes those outputs.
//!
//! | module | reproduces |
//! |---|---|
//! | [`figures::fig1`]      | Fig. 1 — SIPP quarterly poverty, synthetic-data answers, ρ=0.005 |
//! | [`figures::fig2`]      | Fig. 2 / Fig. 8 — SIPP ≥3-months poverty, cumulative, ρ=0.005 |
//! | [`figures::fig3`]      | Fig. 3 — simulated-data debiased error vs t (query k′ ∈ {3,2,4}) |
//! | [`figures::fig4`]      | Fig. 4 — same, without debiasing |
//! | [`figures::fig5to7`]   | Figs. 5–7 — quarterly panels at ρ ∈ {0.001, 0.005, 0.05} |
//! | [`figures::theory`]    | Tables T1/T2 — Thm 3.2 / Cor B.1 bounds vs measured, counter & split ablations, reduction blow-up, baseline inconsistency |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod report;
pub mod runner;
pub mod stats;

/// The fixed seed for the simulated SIPP panel, so every figure sees the
/// same "ground truth" (the paper's single real dataset).
pub const SIPP_PANEL_SEED: u64 = 2021;

/// Master seed for experiment noise (repetition r uses child stream r).
pub const EXPERIMENT_MASTER_SEED: u64 = 0x5EED_0F10_00AB;
