//! Shared fixtures for the longsynth benchmark suite.
//!
//! Each bench under `benches/` regenerates one of the paper's figures (at
//! reduced repetition counts — the full 1000-rep regeneration is
//! `run_experiments`' job) or measures a scaling/ablation dimension
//! DESIGN.md calls out. Criterion reports wall-times; the accuracy numbers
//! the figures plot are written by the experiment harness, not here.

use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::rng::rng_from_seed;

/// A SIPP-like Markov panel (persistent poverty process), deterministic.
pub fn bench_panel(n: usize, horizon: usize) -> LongitudinalDataset {
    two_state_markov(
        &mut rng_from_seed(0xBE9C),
        n,
        horizon,
        MarkovParams {
            initial_one: 0.11,
            stay_one: 0.82,
            enter_one: 0.022,
        },
    )
}

/// Repetition counts used by the figure benches (kept small so the whole
/// suite runs in minutes; the shapes are unchanged).
pub const BENCH_REPS: usize = 5;

#[cfg(feature = "alloc-count")]
mod alloc_count {
    //! A counting wrapper over the system allocator, installed as the
    //! global allocator only under the `alloc-count` feature so the rest
    //! of the suite measures against the unwrapped system allocator.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
    pub(super) static BYTES: AtomicU64 = AtomicU64::new(0);

    struct CountingAllocator;

    // Pure pass-through to `System` plus two relaxed counters; the safety
    // obligations are exactly those of the wrapped allocator.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(
                new_size.saturating_sub(layout.size()) as u64,
                Ordering::Relaxed,
            );
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// Cumulative (allocation count, bytes requested) since process start, or
/// `None` when the crate was built without the `alloc-count` feature.
///
/// Callers diff two snapshots around a region of interest; counts are
/// process-wide and monotone, so the diff is exact on a single thread and
/// an upper bound when shard threads are live.
pub fn alloc_snapshot() -> Option<(u64, u64)> {
    #[cfg(feature = "alloc-count")]
    {
        use std::sync::atomic::Ordering;
        Some((
            alloc_count::ALLOCATIONS.load(Ordering::Relaxed),
            alloc_count::BYTES.load(Ordering::Relaxed),
        ))
    }
    #[cfg(not(feature = "alloc-count"))]
    {
        None
    }
}

/// Peak resident set size of this process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). `None` off Linux or if the field is
/// missing. The high-water mark is monotone over the process lifetime, so
/// sample it *after* the largest run of interest.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_is_deterministic() {
        assert_eq!(bench_panel(100, 6), bench_panel(100, 6));
    }
}
