//! Shared fixtures for the longsynth benchmark suite.
//!
//! Each bench under `benches/` regenerates one of the paper's figures (at
//! reduced repetition counts — the full 1000-rep regeneration is
//! `run_experiments`' job) or measures a scaling/ablation dimension
//! DESIGN.md calls out. Criterion reports wall-times; the accuracy numbers
//! the figures plot are written by the experiment harness, not here.

use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_data::LongitudinalDataset;
use longsynth_dp::rng::rng_from_seed;

/// A SIPP-like Markov panel (persistent poverty process), deterministic.
pub fn bench_panel(n: usize, horizon: usize) -> LongitudinalDataset {
    two_state_markov(
        &mut rng_from_seed(0xBE9C),
        n,
        horizon,
        MarkovParams {
            initial_one: 0.11,
            stay_one: 0.82,
            enter_one: 0.022,
        },
    )
}

/// Repetition counts used by the figure benches (kept small so the whole
/// suite runs in minutes; the shapes are unchanged).
pub const BENCH_REPS: usize = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_is_deterministic() {
        assert_eq!(bench_panel(100, 6), bench_panel(100, 6));
    }
}
