//! Hot-path resource bench: per-round engine latency, peak RSS,
//! allocation counts, and sampler batch throughput — written as committed
//! JSON artifacts so the repo carries its own perf trajectory.
//!
//! Unlike the criterion benches, this is a plain binary (`harness =
//! false`) because it measures things criterion does not: a per-round
//! latency *distribution* over a full 12-round run, `/proc/self/status`
//! `VmHWM`, and (under `--features alloc-count`) global allocation
//! counts. Results go to `BENCH_hotpath.json` and `BENCH_samplers.json`
//! at the repo root; `docs/BENCH_SCHEMA.md` documents every field.
//!
//! Modes (unknown flags such as cargo's `--bench` are ignored):
//!
//! * default — engine runs at n ∈ {100k, 1M} plus the sampler microbench;
//!   rewrites both JSON artifacts.
//! * `--full` — adds the n = 10M, 12-round engine run before writing.
//! * `--test` — CI smoke: tiny sizes, asserts the plumbing works, writes
//!   nothing (the committed artifacts must only change deliberately).
//! * `--check` — regression gate: measures a fresh n = 1M run and fails
//!   (exit 1) if mean per-round latency exceeds the committed baseline in
//!   `BENCH_hotpath.json` by more than 25%, or (under `--features
//!   alloc-count`, against a committed `allocations` value) if the
//!   per-rep allocation count regresses by more than 10%.

use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_bench::{alloc_snapshot, bench_panel, peak_rss_kb};
use longsynth_dp::budget::Rho;
use longsynth_dp::discrete_gaussian::sample_discrete_gaussian;
use longsynth_dp::fastrange::RangePool;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_dp::DiscreteGaussianSampler;
use longsynth_engine::{EngineObserver, ShardPlan, ShardedEngine};
use longsynth_obs::MetricsRegistry;
use rand::{Rng, RngCore};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

const HORIZON: usize = 12;
const WINDOW: usize = 3;
const RHO: f64 = 0.005;
const SHARDS: usize = 1;
/// Regression tolerance for `--check`: fail above baseline × (1 + this).
const CHECK_TOLERANCE: f64 = 0.25;
/// Allocation-count tolerance for `--check` (needs `--features
/// alloc-count` and a committed n=1M `allocations` value): the arena
/// regrouping keeps the steady-state extend path allocation-free, so the
/// per-rep count is small and any regrowth shows up immediately.
const ALLOC_TOLERANCE: f64 = 0.10;
/// Mean per-round n=1M latency of the growth seed (commit 4912a40),
/// measured once on the reference container with the same harness shape
/// (12 rounds × 3 reps). The artifact reports each regeneration's
/// reduction against this fixed anchor; re-measure and update it only if
/// the reference hardware class changes.
const SEED_N1M_MEAN_PER_ROUND_MS: f64 = 26.55;

fn hotpath_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpath.json")
}

fn samplers_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_samplers.json")
}

// ---------------------------------------------------------------------------
// Artifact schema (see docs/BENCH_SCHEMA.md)
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct HotpathArtifact {
    schema: &'static str,
    cores: usize,
    engine_config: EngineConfigDto,
    engine_runs: Vec<EngineRunDto>,
    seed_comparison: Option<SeedComparisonDto>,
    instrumented: Option<InstrumentedDto>,
}

/// The same n=1M run with the full observability layer attached
/// (engine observer + budget ledger into a live registry), documenting
/// the instrumentation overhead against the uninstrumented row.
#[derive(Serialize)]
struct InstrumentedDto {
    n: usize,
    reps: usize,
    rounds: usize,
    per_round_ms: LatencyDto,
    mean_overhead_pct: f64,
    phase_ms: PhaseMsDto,
}

/// Per-phase span histograms from the instrumented run's shared
/// registry: the engine observer's round phases plus the synthesizer's
/// `synth_shuffle_ms` selection span (the pooled-shuffle win, isolated)
/// and its `synth_regroup_ms` arena-regrouping span (the planned bulk
/// segment copies into the successor groups). A phase the run never
/// entered is `null`.
#[derive(Serialize)]
struct PhaseMsDto {
    round: Option<PhaseStatDto>,
    prepare: Option<PhaseStatDto>,
    finalize: Option<PhaseStatDto>,
    merge: Option<PhaseStatDto>,
    noise: Option<PhaseStatDto>,
    sink: Option<PhaseStatDto>,
    shuffle: Option<PhaseStatDto>,
    regroup: Option<PhaseStatDto>,
}

#[derive(Serialize)]
struct PhaseStatDto {
    count: u64,
    mean: f64,
    p50: f64,
    p95: f64,
}

fn phase_stat(registry: &MetricsRegistry, name: &str) -> Option<PhaseStatDto> {
    let (_, snapshot) = registry
        .histograms()
        .into_iter()
        .find(|(metric, _)| metric == name)?;
    if snapshot.count == 0 {
        return None;
    }
    Some(PhaseStatDto {
        count: snapshot.count,
        mean: snapshot.sum / snapshot.count as f64,
        p50: snapshot.p50(),
        p95: snapshot.p95(),
    })
}

fn phase_block(registry: &MetricsRegistry) -> PhaseMsDto {
    PhaseMsDto {
        round: phase_stat(registry, "engine_round_ms"),
        prepare: phase_stat(registry, "engine_prepare_ms"),
        finalize: phase_stat(registry, "engine_finalize_ms"),
        merge: phase_stat(registry, "engine_merge_ms"),
        noise: phase_stat(registry, "engine_noise_ms"),
        sink: phase_stat(registry, "engine_sink_ms"),
        shuffle: phase_stat(registry, "synth_shuffle_ms"),
        regroup: phase_stat(registry, "synth_regroup_ms"),
    }
}

#[derive(Serialize)]
struct SeedComparisonDto {
    n: usize,
    seed_mean_per_round_ms: f64,
    mean_per_round_ms: f64,
    reduction_pct: f64,
}

#[derive(Serialize)]
struct EngineConfigDto {
    horizon: usize,
    window: usize,
    rho: f64,
    shards: usize,
}

#[derive(Serialize)]
struct EngineRunDto {
    n: usize,
    reps: usize,
    rounds: usize,
    per_round_ms: LatencyDto,
    total_ms: f64,
    rows_per_s: f64,
    peak_rss_kb: Option<u64>,
    allocations: Option<u64>,
    alloc_bytes: Option<u64>,
}

#[derive(Serialize)]
struct LatencyDto {
    min: f64,
    p50: f64,
    mean: f64,
    p95: f64,
    max: f64,
}

#[derive(Serialize)]
struct SamplersArtifact {
    schema: &'static str,
    cores: usize,
    draws: usize,
    arms: Vec<SamplerArmDto>,
    fastrange: Vec<FastrangeArmDto>,
}

#[derive(Serialize)]
struct SamplerArmDto {
    sigma2: f64,
    scalar_ns_per_draw: f64,
    sampler_ns_per_draw: f64,
    fill_ns_per_draw: f64,
    fill_speedup_vs_scalar: f64,
}

/// One partial-shuffle workload arm: Fisher–Yates prefix of `k` picks
/// over a `len`-element id slice, scalar `gen_range` loop vs the pooled
/// `RangePool::partial_shuffle`, identical decision distribution.
#[derive(Serialize)]
struct FastrangeArmDto {
    len: usize,
    k: usize,
    picks: usize,
    scalar_ns_per_pick: f64,
    pooled_ns_per_pick: f64,
    pooled_speedup_vs_scalar: f64,
    scalar_words_per_pick: f64,
    pooled_words_per_pick: f64,
}

fn latency_stats(samples: &[f64]) -> LatencyDto {
    assert!(
        !samples.is_empty(),
        "latency stats need at least one sample"
    );
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pick = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
    LatencyDto {
        min: sorted[0],
        p50: pick(0.50),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p95: pick(0.95),
        max: sorted[sorted.len() - 1],
    }
}

// ---------------------------------------------------------------------------
// Engine measurement
// ---------------------------------------------------------------------------

fn build_engine(
    population: usize,
    seed: u64,
    registry: Option<&MetricsRegistry>,
) -> ShardedEngine<FixedWindowSynthesizer> {
    let plan = ShardPlan::new(population, SHARDS).expect("valid plan");
    let fork = RngFork::new(seed);
    ShardedEngine::new(plan, |s, _| {
        let config =
            FixedWindowConfig::new(HORIZON, WINDOW, Rho::new(RHO).unwrap()).expect("valid config");
        let mut synth = FixedWindowSynthesizer::new(config, fork.child(s as u64));
        if let Some(registry) = registry {
            synth.attach_metrics(registry);
        }
        synth
    })
    .expect("uniform shards")
}

/// One engine configuration, measured `reps` times over `horizon` rounds.
/// Returns the artifact row; per-round wall-times pool across reps.
/// `registry` attaches the full observability layer (engine observer +
/// budget ledger + per-synthesizer shuffle spans, all reps pooled into
/// the one registry) — pass it to `phase_block` afterwards for the
/// per-phase breakdown.
fn measure_engine_run(
    n: usize,
    horizon: usize,
    reps: usize,
    registry: Option<&MetricsRegistry>,
) -> EngineRunDto {
    let panel = bench_panel(n, horizon);
    let mut per_round_ms = Vec::with_capacity(reps * horizon);
    let mut total_ms = 0.0f64;
    let alloc_before = alloc_snapshot();
    for rep in 0..reps {
        let mut engine = build_engine(n, 0xE7611E + rep as u64, registry);
        if let Some(registry) = registry {
            engine.set_observer(EngineObserver::new(registry));
        }
        for (_, column) in panel.stream() {
            let start = Instant::now();
            engine.step(column).expect("in-horizon step");
            per_round_ms.push(start.elapsed().as_secs_f64() * 1e3);
        }
        black_box(engine.rounds_fed());
    }
    let alloc_after = alloc_snapshot();
    for ms in &per_round_ms {
        total_ms += ms;
    }
    total_ms /= reps as f64;
    let (allocations, alloc_bytes) = match (alloc_before, alloc_after) {
        (Some((a0, b0)), Some((a1, b1))) => {
            (Some((a1 - a0) / reps as u64), Some((b1 - b0) / reps as u64))
        }
        _ => (None, None),
    };
    EngineRunDto {
        n,
        reps,
        rounds: horizon,
        per_round_ms: latency_stats(&per_round_ms),
        total_ms,
        rows_per_s: (n * horizon) as f64 / (total_ms / 1e3),
        peak_rss_kb: peak_rss_kb(),
        allocations,
        alloc_bytes,
    }
}

// ---------------------------------------------------------------------------
// Sampler microbench
// ---------------------------------------------------------------------------

fn measure_sampler_arm(sigma2: f64, draws: usize) -> SamplerArmDto {
    // Scalar baseline: the seed-era call shape — per-draw free function,
    // re-deriving the rejection constants every call.
    let mut rng = rng_from_seed(0x5A3);
    let start = Instant::now();
    let mut acc = 0i64;
    for _ in 0..draws {
        acc = acc.wrapping_add(sample_discrete_gaussian(&mut rng, black_box(sigma2)));
    }
    black_box(acc);
    let scalar_ns = start.elapsed().as_secs_f64() * 1e9 / draws as f64;

    // Reused sampler, stream-identical scalar path: constants hoisted.
    let sampler = DiscreteGaussianSampler::new(sigma2);
    let mut rng = rng_from_seed(0x5A3);
    let start = Instant::now();
    let mut acc = 0i64;
    for _ in 0..draws {
        acc = acc.wrapping_add(sampler.sample(&mut rng));
    }
    black_box(acc);
    let sampler_ns = start.elapsed().as_secs_f64() * 1e9 / draws as f64;

    // Vectorized fill: same distribution, entropy-lean coin path.
    let mut rng = rng_from_seed(0x5A3);
    let mut buf = vec![0i64; draws];
    let start = Instant::now();
    sampler.fill(&mut rng, &mut buf);
    black_box(&buf);
    let fill_ns = start.elapsed().as_secs_f64() * 1e9 / draws as f64;

    SamplerArmDto {
        sigma2,
        scalar_ns_per_draw: scalar_ns,
        sampler_ns_per_draw: sampler_ns,
        fill_ns_per_draw: fill_ns,
        fill_speedup_vs_scalar: scalar_ns / fill_ns,
    }
}

/// Counts `next_u64` calls so the artifact can report the pooled path's
/// word economy alongside its wall-clock speedup.
struct CountingRng<R: RngCore> {
    inner: R,
    words: u64,
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u32(&mut self) -> u32 {
        self.words += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.words += 1;
        self.inner.next_u64()
    }
}

/// The partial-shuffle workload: repeated Fisher–Yates prefixes of `k`
/// picks over `len` ids, fresh pool per round (mirroring the per-finalize
/// pool in the synthesizers). `target_picks` sets the total measurement
/// budget.
fn measure_fastrange_arm(len: usize, k: usize, target_picks: usize) -> FastrangeArmDto {
    let picks_per_round = k.min(len - 1);
    let rounds = (target_picks / picks_per_round).max(1);
    let picks = rounds * picks_per_round;
    let base: Vec<u32> = (0..len as u32).collect();
    let mut ids = base.clone();

    // Scalar baseline: the pre-migration loop, one widening `gen_range`
    // per pick.
    let mut rng = CountingRng {
        inner: rng_from_seed(0xFA57),
        words: 0,
    };
    let start = Instant::now();
    for _ in 0..rounds {
        ids.copy_from_slice(&base);
        for j in 0..picks_per_round {
            let pick = j + rng.gen_range(0..len - j);
            ids.swap(j, pick);
        }
        black_box(&ids);
    }
    let scalar_ns = start.elapsed().as_secs_f64() * 1e9 / picks as f64;
    let scalar_words = rng.words as f64 / picks as f64;

    // Pooled path: bit-masked rejection over the shared word buffer.
    let mut rng = CountingRng {
        inner: rng_from_seed(0xFA57),
        words: 0,
    };
    let start = Instant::now();
    for _ in 0..rounds {
        ids.copy_from_slice(&base);
        let mut pool = RangePool::new();
        pool.partial_shuffle(&mut rng, &mut ids, k);
        black_box(&ids);
    }
    let pooled_ns = start.elapsed().as_secs_f64() * 1e9 / picks as f64;
    let pooled_words = rng.words as f64 / picks as f64;

    FastrangeArmDto {
        len,
        k,
        picks,
        scalar_ns_per_pick: scalar_ns,
        pooled_ns_per_pick: pooled_ns,
        pooled_speedup_vs_scalar: scalar_ns / pooled_ns,
        scalar_words_per_pick: scalar_words,
        pooled_words_per_pick: pooled_words,
    }
}

fn measure_samplers(draws: usize) -> SamplersArtifact {
    SamplersArtifact {
        schema: "longsynth-samplers-v1",
        cores: cores(),
        draws,
        arms: [1.0f64, 100.0, 100_000.0]
            .into_iter()
            .map(|sigma2| measure_sampler_arm(sigma2, draws))
            .collect(),
        // The three shuffle regimes the synthesizers hit: a full-group
        // shuffle (categorical extend), a sparse promotion prefix
        // (cumulative), and a small class (late-round weight groups).
        fastrange: [(4096usize, 4096usize), (4096, 512), (64, 64)]
            .into_iter()
            .map(|(len, k)| measure_fastrange_arm(len, k, draws))
            .collect(),
    }
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

// ---------------------------------------------------------------------------
// Modes
// ---------------------------------------------------------------------------

fn run_default(full: bool) {
    let mut runs = vec![
        measure_engine_run(100_000, HORIZON, 3, None),
        measure_engine_run(1_000_000, HORIZON, 3, None),
    ];
    if full {
        eprintln!("hotpath: running the n=10M 12-round engine demonstration");
        runs.push(measure_engine_run(10_000_000, HORIZON, 1, None));
    }
    eprintln!("hotpath: measuring the metrics-enabled n=1M run");
    let registry = MetricsRegistry::new();
    let instrumented_run = measure_engine_run(1_000_000, HORIZON, 3, Some(&registry));
    let instrumented = runs
        .iter()
        .find(|run| run.n == 1_000_000)
        .map(|baseline| InstrumentedDto {
            n: instrumented_run.n,
            reps: instrumented_run.reps,
            rounds: instrumented_run.rounds,
            mean_overhead_pct: (instrumented_run.per_round_ms.mean / baseline.per_round_ms.mean
                - 1.0)
                * 100.0,
            per_round_ms: instrumented_run.per_round_ms,
            phase_ms: phase_block(&registry),
        });
    let seed_comparison = runs
        .iter()
        .find(|run| run.n == 1_000_000)
        .map(|run| SeedComparisonDto {
            n: run.n,
            seed_mean_per_round_ms: SEED_N1M_MEAN_PER_ROUND_MS,
            mean_per_round_ms: run.per_round_ms.mean,
            reduction_pct: (1.0 - run.per_round_ms.mean / SEED_N1M_MEAN_PER_ROUND_MS) * 100.0,
        });
    let artifact = HotpathArtifact {
        schema: "longsynth-hotpath-v1",
        cores: cores(),
        engine_config: EngineConfigDto {
            horizon: HORIZON,
            window: WINDOW,
            rho: RHO,
            shards: SHARDS,
        },
        engine_runs: runs,
        seed_comparison,
        instrumented,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize hotpath artifact");
    std::fs::write(hotpath_json_path(), json + "\n").expect("write BENCH_hotpath.json");

    let samplers = measure_samplers(1_000_000);
    for arm in &samplers.arms {
        eprintln!(
            "hotpath: sigma2={} scalar {:.1} ns/draw, sampler {:.1}, fill {:.1} ({:.2}x)",
            arm.sigma2,
            arm.scalar_ns_per_draw,
            arm.sampler_ns_per_draw,
            arm.fill_ns_per_draw,
            arm.fill_speedup_vs_scalar
        );
    }
    for arm in &samplers.fastrange {
        eprintln!(
            "hotpath: shuffle len={} k={} scalar {:.1} ns/pick ({:.2} words), \
             pooled {:.1} ns/pick ({:.2} words) — {:.2}x",
            arm.len,
            arm.k,
            arm.scalar_ns_per_pick,
            arm.scalar_words_per_pick,
            arm.pooled_ns_per_pick,
            arm.pooled_words_per_pick,
            arm.pooled_speedup_vs_scalar
        );
    }
    let json = serde_json::to_string_pretty(&samplers).expect("serialize samplers artifact");
    std::fs::write(samplers_json_path(), json + "\n").expect("write BENCH_samplers.json");
    eprintln!(
        "hotpath: wrote {} and {}",
        hotpath_json_path().display(),
        samplers_json_path().display()
    );
}

/// CI smoke: exercise every measurement path at toy sizes, assert the
/// numbers are sane, and write nothing.
fn run_smoke() {
    let run = measure_engine_run(2_000, 4, 1, None);
    assert_eq!(run.rounds, 4);
    assert!(run.per_round_ms.min >= 0.0 && run.per_round_ms.max >= run.per_round_ms.p50);
    assert!(run.rows_per_s > 0.0);
    assert!(run.peak_rss_kb.is_some(), "VmHWM must parse on Linux CI");
    let registry = MetricsRegistry::new();
    let observed = measure_engine_run(2_000, 4, 1, Some(&registry));
    assert_eq!(observed.rounds, 4);
    assert!(observed.per_round_ms.mean > 0.0);
    let phases = phase_block(&registry);
    // 4 rounds at k=3: rounds 1–2 buffer, round 3 initializes, round 4 is
    // the one extend — every phase the path enters must have been seen.
    assert!(phases.round.is_some_and(|p| p.count == 4));
    assert!(phases.prepare.is_some() && phases.finalize.is_some());
    assert!(
        phases.shuffle.is_some_and(|p| p.count == 1),
        "the extend round must observe exactly one shuffle span"
    );
    assert!(
        phases.regroup.is_some_and(|p| p.count == 1),
        "the extend round must observe exactly one arena regroup span"
    );
    let samplers = measure_samplers(20_000);
    for arm in &samplers.arms {
        assert!(arm.scalar_ns_per_draw > 0.0 && arm.fill_ns_per_draw > 0.0);
    }
    for arm in &samplers.fastrange {
        assert!(arm.scalar_ns_per_pick > 0.0 && arm.pooled_ns_per_pick > 0.0);
        assert!(
            arm.pooled_words_per_pick < arm.scalar_words_per_pick,
            "pooling must spend fewer words than scalar gen_range"
        );
    }
    // The artifacts must survive a round-trip through the vendored JSON
    // parser, otherwise `--check` cannot read what default mode writes.
    let artifact = HotpathArtifact {
        schema: "longsynth-hotpath-v1",
        cores: cores(),
        engine_config: EngineConfigDto {
            horizon: 4,
            window: WINDOW,
            rho: RHO,
            shards: SHARDS,
        },
        engine_runs: vec![run],
        seed_comparison: None,
        instrumented: None,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize");
    let parsed = serde_json::from_str(&json).expect("round-trip");
    assert!(baseline_mean_per_round_ms(&parsed, 2_000).is_some());
    println!("hotpath smoke: ok");
}

/// Mean per-round latency for population `n` from a parsed artifact.
fn baseline_mean_per_round_ms(doc: &serde_json::Value, n: usize) -> Option<f64> {
    doc.get("engine_runs")?
        .as_array()?
        .iter()
        .find(|run| run.get("n").and_then(|v| v.as_usize()) == Some(n))?
        .get("per_round_ms")?
        .get("mean")?
        .as_f64()
}

/// Committed per-rep allocation count for population `n`, `None` when the
/// artifact was regenerated without `--features alloc-count`.
fn baseline_allocations(doc: &serde_json::Value, n: usize) -> Option<u64> {
    doc.get("engine_runs")?
        .as_array()?
        .iter()
        .find(|run| run.get("n").and_then(|v| v.as_usize()) == Some(n))?
        .get("allocations")?
        .as_u64()
}

fn run_check() {
    let path = hotpath_json_path();
    let committed = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "hotpath --check: no committed baseline at {} ({err}); skipping",
                path.display()
            );
            return;
        }
    };
    let doc = serde_json::from_str(&committed).expect("committed BENCH_hotpath.json parses");
    let baseline = baseline_mean_per_round_ms(&doc, 1_000_000)
        .expect("committed baseline has an n=1M engine run");
    let limit = baseline * (1.0 + CHECK_TOLERANCE);
    let mut failed = false;
    let mut bare_allocations = None;
    // Both arms gate against the same committed uninstrumented baseline:
    // the instrumented run must stay inside the regression tolerance too,
    // which is the ISSUE's "metrics on ≤ 25% over baseline" acceptance.
    for (label, instrumented) in [("bare", false), ("metrics-enabled", true)] {
        let registry = instrumented.then(MetricsRegistry::new);
        let fresh = measure_engine_run(1_000_000, HORIZON, 2, registry.as_ref());
        let measured = fresh.per_round_ms.mean;
        if !instrumented {
            bare_allocations = fresh.allocations;
        }
        eprintln!(
            "hotpath --check: n=1M {label} mean per-round {measured:.2} ms vs baseline \
             {baseline:.2} ms (limit {limit:.2} ms)"
        );
        if measured > limit {
            eprintln!(
                "hotpath --check: FAIL — {label} per-round latency regressed more than {:.0}%",
                CHECK_TOLERANCE * 100.0
            );
            failed = true;
        }
    }
    // Allocation budget: only the bare arm gates (the registry arm pays
    // for its histograms), and only when both sides were counted.
    match (baseline_allocations(&doc, 1_000_000), bare_allocations) {
        (Some(committed_allocs), Some(fresh_allocs)) => {
            let alloc_limit = (committed_allocs as f64 * (1.0 + ALLOC_TOLERANCE)).ceil() as u64;
            eprintln!(
                "hotpath --check: n=1M allocations/rep {fresh_allocs} vs committed \
                 {committed_allocs} (limit {alloc_limit})"
            );
            if fresh_allocs > alloc_limit {
                eprintln!(
                    "hotpath --check: FAIL — allocation count regressed more than {:.0}% \
                     (the steady-state extend path is supposed to be allocation-free)",
                    ALLOC_TOLERANCE * 100.0
                );
                failed = true;
            }
        }
        _ => eprintln!(
            "hotpath --check: allocation gate skipped (needs `--features alloc-count` \
             and a committed n=1M `allocations` baseline)"
        ),
    }
    if failed {
        std::process::exit(1);
    }
    println!("hotpath --check: ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // cargo passes `--bench`; criterion-style invocations may add filters.
    // Only the three explicit modes matter, everything else is ignored.
    if args.iter().any(|a| a == "--test") {
        run_smoke();
    } else if args.iter().any(|a| a == "--check") {
        run_check();
    } else {
        run_default(args.iter().any(|a| a == "--full"));
    }
}
