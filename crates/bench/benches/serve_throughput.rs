//! Serving throughput: queries/sec from the release store, cold vs cached,
//! and concurrent batch serving across pool sizes — the tracking
//! instrument for the query-serving subsystem (`longsynth-serve`).
//!
//! Setup (once): a 4-shard cumulative engine run over a 50k x 12 panel,
//! releases ingested into the store through the engine's sink. Benches:
//!
//! * `serve_cold/seq` — the full mixed query battery answered on an empty
//!   cache (every answer computed from stored releases);
//! * `serve_cached/seq` — the same battery on a warm cache (pure memo
//!   hits; the ISSUE acceptance bar is >= 10x over cold);
//! * `serve_batch/p{1,2,4,8}` — the battery as one concurrent
//!   `answer_batch` on a `WorkerPool` of 1/2/4/8 workers, warm cache
//!   (measures the serving front-end's dispatch overhead and scaling).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use longsynth::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_bench::bench_panel;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{ShardPlan, ShardedEngine};
use longsynth_pool::WorkerPool;
use longsynth_serve::{mixed_battery, QueryService, ReleaseStore};

const POPULATION: usize = 50_000;
const HORIZON: usize = 12;
const SHARDS: usize = 4;
const WINDOW: usize = 3;

/// One engine run with the serving sink attached; returns the filled store.
fn build_store() -> ReleaseStore {
    let panel = bench_panel(POPULATION, HORIZON);
    let fork = RngFork::new(0x5E11);
    let service = QueryService::new();
    let mut engine = ShardedEngine::new(ShardPlan::new(POPULATION, SHARDS).unwrap(), |s, _| {
        let config = CumulativeConfig::new(HORIZON, Rho::new(0.005).unwrap()).unwrap();
        CumulativeSynthesizer::new(config, fork.subfork(s as u64), fork.child(s as u64))
    })
    .unwrap();
    engine.set_sink(service.column_sink());
    for (_, column) in panel.stream() {
        engine.step(column).expect("in-horizon step");
    }
    service.with_store(Clone::clone)
}

fn bench_serve_throughput(c: &mut Criterion) {
    let store = build_store();
    // The canonical mixed read battery (same workload the CLI `serve`
    // subcommand and the serving example drive): cumulative thresholds
    // 1..=3 and quarterly window queries, every round, every scope.
    let battery = mixed_battery(store.rounds(), store.cohorts(), 3, WINDOW);
    let elements = battery.len() as u64;

    // Cold: a fresh (empty) cache every iteration, answers computed from
    // the stored releases.
    let mut group = c.benchmark_group("serve_cold");
    group
        .sample_size(10)
        .throughput(Throughput::Elements(elements));
    group.bench_function("seq", |b| {
        b.iter_batched(
            || QueryService::from_store(store.clone()),
            |service| {
                for query in &battery {
                    service.answer(query).expect("answerable");
                }
                service.cache_len()
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // Cached: same battery, warm cache — pure memo hits.
    let mut group = c.benchmark_group("serve_cached");
    group
        .sample_size(50)
        .throughput(Throughput::Elements(elements));
    let warm = QueryService::from_store(store.clone());
    for query in &battery {
        warm.answer(query).expect("answerable");
    }
    group.bench_function("seq", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for query in &battery {
                acc += warm.answer(query).expect("answerable");
            }
            acc
        })
    });
    group.finish();

    // Concurrent batches on the shared pool, by pool size.
    let mut group = c.benchmark_group("serve_batch");
    group
        .sample_size(30)
        .throughput(Throughput::Elements(elements));
    for threads in [1usize, 2, 4, 8] {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("p", threads), &threads, |b, _| {
            b.iter(|| {
                let answers = warm.answer_batch(&pool, battery.clone());
                answers.len()
            })
        });
    }
    group.finish();
    let _ = rng_from_seed(0); // keep the shared-import surface exercised
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
