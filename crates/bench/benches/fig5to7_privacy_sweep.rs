//! Bench: regenerate Figures 5–7 (the ρ sweep 0.001 / 0.005 / 0.05) at
//! reduced scale. Runtime is ρ-independent by design — the sweep verifies
//! that (noise sampling cost does not depend on the noise magnitude for
//! the discrete Gaussian's rejection sampler at these scales).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longsynth_bench::{bench_panel, BENCH_REPS};
use longsynth_experiments::figures::fig5to7::{run, RHO_SWEEP};

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5to7_privacy_sweep");
    group.sample_size(10);
    let panel = bench_panel(10_000, 12);
    for rho in RHO_SWEEP {
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, &rho| {
            b.iter(|| run(&panel, rho, BENCH_REPS, 9))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
