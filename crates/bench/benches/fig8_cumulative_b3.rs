//! Bench: regenerate Figure 8 (the appendix restatement of Figure 2), and
//! sweep the threshold `b` to show Algorithm 2 answers *all* thresholds
//! from one release.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longsynth_bench::{bench_panel, BENCH_REPS};
use longsynth_experiments::figures::fig2;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_cumulative_b3");
    group.sample_size(10);
    let panel = bench_panel(10_000, 12);
    for b in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("threshold", b), &b, |bench, &b| {
            bench.iter(|| fig2::run(&panel, fig2::RHO, b, BENCH_REPS, 10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
