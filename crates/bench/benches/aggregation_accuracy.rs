//! Bench: population-query accuracy per aggregation policy.
//!
//! For shards ∈ {1, 2, 4, 8}, runs the paper-parameter fixed-window
//! release (T = 12, k = 3, ρ = 0.005) under both aggregation policies and
//! reports the **mean absolute error of population-level window queries**
//! (quarterly battery, debiased estimates vs the true panel) relative to
//! the 1-shard baseline — the accuracy side of the sharding trade that
//! `engine_scaling` measures the latency side of.
//!
//! Expected shape (and what the `aggregation_policies` statistical test
//! asserts at 4 shards): per-shard noise degrades like `√shards` (~2× at
//! 4 shards), shared noise stays flat at `√(1/population_share) ≈ 1.12×`
//! regardless of shard count. The table prints on stderr; criterion times
//! the 4-shard engine runs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_bench::bench_panel;
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::RngFork;
use longsynth_engine::{AggregationPolicy, ShardPlan, ShardedEngine, SlotRole};
use longsynth_queries::window::quarterly_battery;
use longsynth_queries::{AccuracyComparison, ErrorSummary};

const HORIZON: usize = 12;
const WINDOW: usize = 3;
const RHO: f64 = 0.005;
const POPULATION: usize = 40_000;

fn build_engine(
    panel_n: usize,
    shards: usize,
    policy: AggregationPolicy,
    seed: u64,
) -> ShardedEngine<FixedWindowSynthesizer> {
    let plan = ShardPlan::new(panel_n, shards).expect("valid plan");
    let fork = RngFork::new(seed);
    ShardedEngine::with_aggregation(plan, policy, |slot| {
        let rho = Rho::new(RHO * slot.budget_share).expect("positive share");
        let config = FixedWindowConfig::new(HORIZON, WINDOW, rho).expect("valid config");
        let stream = match slot.role {
            SlotRole::Shard(s) => s as u64,
            SlotRole::Population => 0xA110,
        };
        FixedWindowSynthesizer::new(config, fork.child(stream))
    })
    .expect("uniform shards")
}

/// Run one engine to the horizon and summarise population-level debiased
/// estimates against the true panel over the quarterly battery.
fn population_error(
    panel: &LongitudinalDataset,
    shards: usize,
    policy: AggregationPolicy,
    seed: u64,
) -> ErrorSummary {
    let mut engine = build_engine(panel.individuals(), shards, policy, seed);
    for (_, column) in panel.stream() {
        engine.step(column).expect("in-horizon step");
    }
    let n = panel.individuals() as f64;
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for t in (WINDOW - 1)..HORIZON {
        for query in quarterly_battery(WINDOW) {
            let estimate = match engine.population_synthesizer() {
                Some(population) => population.estimate_debiased(t, &query).unwrap(),
                None => {
                    (0..shards)
                        .map(|s| {
                            engine.shard(s).estimate_debiased(t, &query).unwrap()
                                * engine.plan().cohort_size(s) as f64
                        })
                        .sum::<f64>()
                        / n
                }
            };
            estimates.push(estimate);
            truths.push(query.evaluate_true(panel, t));
        }
    }
    ErrorSummary::from_pairs(&estimates, &truths)
}

fn bench_aggregation_accuracy(c: &mut Criterion) {
    let panel = bench_panel(POPULATION, HORIZON);

    // Accuracy table (computed once, outside criterion timing): MAE per
    // policy and shard count, relative to the 1-shard baseline.
    let baseline = population_error(&panel, 1, AggregationPolicy::PerShardNoise, 0xACC);
    let mut comparison = AccuracyComparison::against("1 shard (baseline)", baseline);
    for shards in [2usize, 4, 8] {
        comparison.add(
            format!("per-shard, {shards} shards"),
            population_error(&panel, shards, AggregationPolicy::PerShardNoise, 0xACC),
        );
        comparison.add(
            format!("shared,    {shards} shards"),
            population_error(&panel, shards, AggregationPolicy::shared(), 0xACC),
        );
    }
    eprintln!(
        "aggregation_accuracy: population window-query MAE \
         (n = {POPULATION}, T = {HORIZON}, k = {WINDOW}, rho = {RHO}):\n{comparison}"
    );

    // Timed side: the full 12-round engine run per policy at 4 shards —
    // what the shared-noise population finalize costs over plain merging.
    let mut group = c.benchmark_group("aggregation_accuracy");
    group.sample_size(10);
    for (label, policy) in [
        ("per-shard", AggregationPolicy::PerShardNoise),
        ("shared", AggregationPolicy::shared()),
    ] {
        group.bench_with_input(
            BenchmarkId::new("full_run_4_shards", label),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || build_engine(POPULATION, 4, policy, 0xACC),
                    |mut engine| {
                        for (_, column) in panel.stream() {
                            engine.step(column).expect("in-horizon step");
                        }
                        engine.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation_accuracy);
criterion_main!(benches);
