//! Bench: regenerate Figure 3 (simulated-data debiased error, three query
//! widths) at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use longsynth_bench::BENCH_REPS;
use longsynth_experiments::figures::fig3::{run, Estimator};

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_sim_error");
    group.sample_size(10);
    group.bench_function("debiased_n5000_reps5", |b| {
        b.iter(|| run(5_000, BENCH_REPS, Estimator::Debiased, 6))
    });
    group.bench_function("debiased_n25000_reps5", |b| {
        b.iter(|| run(25_000, BENCH_REPS, Estimator::Debiased, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
