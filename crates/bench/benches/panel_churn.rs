//! Bench: dynamic-panel round latency and population accuracy under
//! cohort churn — per-shard noise vs **windowed shared noise**.
//!
//! Five regimes over the same active population (cumulative family,
//! T = 12): a static lockstep panel (0% churn), 4-wave and 2-wave
//! rotating panels (25% / 50% of the active set replaced each round)
//! under per-shard noise, and the same two rotating panels under the
//! shared-noise policy — whose population slot is the **windowed
//! population synthesizer** (one population-level noise draw per round,
//! retiring cohorts forgotten). The table on stderr reports the **mean
//! absolute error of active-set population cumulative queries**
//! (thresholds 1..=3, every round, estimates vs the cohorts' true
//! observed panels, size-weighted) relative to the static baseline, plus
//! the windowed-shared : per-shard MAE ratio per churn level; criterion
//! times the full 12-round engine run per regime.
//!
//! Expected shape: latency stays flat (the active set is the same size —
//! churn only changes *which* cohorts step and where the noise goes).
//! Under per-shard noise MAE *drops* with churn (a rotating cohort's
//! budget concentrates over its short membership window) at the cost of
//! scope; the windowed-shared arm answers the same active-set battery
//! from a single population draw per round at the `p = 0.8` budget
//! share, competitive with pooling `waves` full-budget cohort draws.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use longsynth::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_data::generators::iid_bernoulli;
use longsynth_data::{BitColumn, LongitudinalDataset};
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{AggregationPolicy, PanelSchedule, ShardedEngine, SlotRole};
use longsynth_queries::cumulative::cumulative_counts;
use longsynth_queries::{active_weighted_mean, AccuracyComparison, ErrorSummary};

const HORIZON: usize = 12;
const ACTIVE: usize = 24_000;
const RHO: f64 = 0.02;
const MAX_B: usize = 3;

/// One benched configuration: a schedule plus the aggregation policy it
/// runs under (`window` set for the windowed-shared arms).
struct Regime {
    label: &'static str,
    id: &'static str,
    schedule: PanelSchedule,
    policy: AggregationPolicy,
    window: Option<usize>,
}

fn rotating_schedule(waves: usize, cohort_share: f64) -> PanelSchedule {
    let wave_size = ACTIVE / waves;
    let population = wave_size * (waves + HORIZON - 1);
    let cohort_rho = Rho::new(RHO * cohort_share).unwrap();
    PanelSchedule::rotating(
        population,
        HORIZON,
        waves,
        cohort_rho,
        Rho::new(RHO).unwrap(),
    )
    .unwrap()
}

fn regimes() -> Vec<Regime> {
    let rho = Rho::new(RHO).unwrap();
    let shared_cohort_share = 1.0 - AggregationPolicy::DEFAULT_POPULATION_SHARE;
    vec![
        Regime {
            label: "churn  0% per-shard (static, 4 cohorts)",
            id: "0",
            schedule: PanelSchedule::uniform(ACTIVE, 4, HORIZON, rho, rho).unwrap(),
            policy: AggregationPolicy::PerShardNoise,
            window: None,
        },
        Regime {
            label: "churn 25% per-shard (rotating, 4 waves)",
            id: "25",
            schedule: rotating_schedule(4, 1.0),
            policy: AggregationPolicy::PerShardNoise,
            window: None,
        },
        Regime {
            label: "churn 50% per-shard (rotating, 2 waves)",
            id: "50",
            schedule: rotating_schedule(2, 1.0),
            policy: AggregationPolicy::PerShardNoise,
            window: None,
        },
        Regime {
            label: "churn 25% windowed-shared (4 waves)",
            id: "25-shared",
            schedule: rotating_schedule(4, shared_cohort_share),
            policy: AggregationPolicy::shared(),
            window: Some(4),
        },
        Regime {
            label: "churn 50% windowed-shared (2 waves)",
            id: "50-shared",
            schedule: rotating_schedule(2, shared_cohort_share),
            policy: AggregationPolicy::shared(),
            window: Some(2),
        },
    ]
}

/// One true sub-panel per cohort, spanning the cohort's own window.
/// Depends only on the cohort sizes and horizons, so paired per-shard /
/// windowed-shared arms at the same churn see identical data.
fn cohort_panels(schedule: &PanelSchedule, seed: u64) -> Vec<LongitudinalDataset> {
    (0..schedule.cohorts())
        .map(|c| {
            iid_bernoulli(
                &mut rng_from_seed(seed ^ (0xDA7A + c as u64)),
                schedule.cohort_size(c),
                schedule.cohort(c).horizon,
                0.25,
            )
        })
        .collect()
}

fn build_engine(regime: &Regime, seed: u64) -> ShardedEngine<CumulativeSynthesizer> {
    let fork = RngFork::new(seed);
    let window = regime.window;
    ShardedEngine::with_schedule(regime.schedule.clone(), regime.policy, move |slot| {
        let config = CumulativeConfig::new(slot.horizon, slot.budget).expect("scheduled slot");
        let (config, stream) = match slot.role {
            SlotRole::Shard(s) => (config, 1 + s as u64),
            SlotRole::Population => (
                config
                    .with_window(window.expect("population slots only exist for shared arms"))
                    .expect("wave length fits the horizon"),
                0,
            ),
        };
        CumulativeSynthesizer::new(config, fork.subfork(stream), rng_from_seed(seed ^ stream))
    })
    .expect("schedule-validated engine")
}

/// Drive a full run; returns the engine for estimation.
fn run(
    regime: &Regime,
    panels: &[LongitudinalDataset],
    seed: u64,
) -> ShardedEngine<CumulativeSynthesizer> {
    let mut engine = build_engine(regime, seed);
    let schedule = &regime.schedule;
    for round in 0..HORIZON {
        let columns: Vec<&BitColumn> = schedule
            .active(round)
            .into_iter()
            .map(|c| panels[c].column(round - schedule.cohort(c).entry_round))
            .collect();
        let column = BitColumn::concat(columns);
        engine.step(&column).expect("in-horizon step");
        assert!(
            engine.budget().within_cap(schedule.total_budget()),
            "budget invariant at round {round}"
        );
    }
    engine
}

/// Active-set population MAE over the cumulative battery: the windowed
/// population synthesizer's estimates under shared noise, the
/// size-weighted cohort pool under per-shard noise.
fn population_error(
    schedule: &PanelSchedule,
    panels: &[LongitudinalDataset],
    engine: &ShardedEngine<CumulativeSynthesizer>,
) -> ErrorSummary {
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for t in 0..HORIZON {
        for b in 1..=MAX_B.min(t + 1) {
            let covering = (0..schedule.cohorts()).filter(|&c| schedule.cohort(c).is_active(t));
            let estimate = match engine.population_synthesizer() {
                Some(population) => population.estimate_fraction(t, b).unwrap(),
                None => active_weighted_mean(covering.clone().map(|c| {
                    let local = t - schedule.cohort(c).entry_round;
                    (
                        engine.shard(c).estimate_fraction(local, b).unwrap(),
                        schedule.cohort_size(c),
                    )
                }))
                .expect("every round has covering cohorts"),
            };
            let truth = active_weighted_mean(covering.map(|c| {
                let local = t - schedule.cohort(c).entry_round;
                let count = cumulative_counts(&panels[c], local)
                    .get(b)
                    .copied()
                    .unwrap_or(0);
                (
                    count as f64 / schedule.cohort_size(c) as f64,
                    schedule.cohort_size(c),
                )
            }))
            .expect("every round has covering cohorts");
            estimates.push(estimate);
            truths.push(truth);
        }
    }
    ErrorSummary::from_pairs(&estimates, &truths)
}

fn bench_panel_churn(c: &mut Criterion) {
    // Accuracy table, computed once outside criterion timing.
    let mut comparison: Option<AccuracyComparison> = None;
    let prepared: Vec<(Regime, Vec<LongitudinalDataset>)> = regimes()
        .into_iter()
        .map(|regime| {
            let panels = cohort_panels(&regime.schedule, 0xC0DE);
            (regime, panels)
        })
        .collect();
    for (regime, panels) in &prepared {
        let engine = run(regime, panels, 0xBEEF);
        if let Some(windowed) = engine.windowed_population() {
            assert!(windowed.retired_cohorts() > 0, "rotation retires cohorts");
        }
        let summary = population_error(&regime.schedule, panels, &engine);
        match &mut comparison {
            None => comparison = Some(AccuracyComparison::against(regime.label, summary)),
            Some(comparison) => comparison.add(regime.label, summary),
        }
    }
    let comparison = comparison.expect("at least one regime");
    eprintln!(
        "panel_churn: active-set population cumulative MAE \
         (active n = {ACTIVE}, T = {HORIZON}, b <= {MAX_B}, rho = {RHO}):\n{comparison}"
    );
    // Pair the arms by regime id ("25" vs "25-shared"), so label edits
    // cannot desynchronize the ratio report.
    let label_of = |id: &str| {
        prepared
            .iter()
            .find(|(regime, _)| regime.id == id)
            .map(|(regime, _)| regime.label)
            .expect("regime ran")
    };
    for churn in [25, 50] {
        let shared = comparison
            .summary(label_of(&format!("{churn}-shared")))
            .expect("shared arm ran");
        let per_shard = comparison
            .summary(label_of(&format!("{churn}")))
            .expect("per-shard arm ran");
        eprintln!(
            "panel_churn: {churn}% churn windowed-shared/per-shard MAE ratio: {:.3}",
            shared.mean / per_shard.mean
        );
    }

    // Timed side: the full 12-round run per regime — what a rotating
    // active set (and the windowed population draw) costs in wall-clock.
    let mut group = c.benchmark_group("panel_churn");
    group.sample_size(10);
    for (regime, panels) in &prepared {
        group.bench_with_input(
            BenchmarkId::new("full_run", regime.id),
            &(regime, panels),
            |b, (regime, panels)| {
                b.iter_batched(
                    || build_engine(regime, 0xBEEF),
                    |mut engine| {
                        let schedule = &regime.schedule;
                        for round in 0..HORIZON {
                            let columns: Vec<&BitColumn> = schedule
                                .active(round)
                                .into_iter()
                                .map(|c| panels[c].column(round - schedule.cohort(c).entry_round))
                                .collect();
                            let column = BitColumn::concat(columns);
                            engine.step(&column).expect("in-horizon step");
                        }
                        engine.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_panel_churn);
criterion_main!(benches);
