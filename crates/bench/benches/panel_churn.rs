//! Bench: dynamic-panel round latency and population accuracy under
//! cohort churn.
//!
//! Three regimes over the same active population (cumulative family,
//! T = 12): a static lockstep panel (0% churn), a 4-wave rotating panel
//! (25% of the active set replaced each round), and a 2-wave rotating
//! panel (50% per-round churn). For each, the table on stderr reports the
//! **mean absolute error of active-set population cumulative queries**
//! (thresholds 1..=3, every round, estimates vs the cohorts' true
//! observed panels, size-weighted) relative to the static baseline;
//! criterion times the full 12-round engine run per regime — what a
//! round of panel churn costs in wall-clock and in accuracy.
//!
//! Expected shape: latency stays flat (the active set is the same size —
//! churn only changes *which* cohorts step), while MAE *drops* with
//! churn: a rotating cohort's horizon is its short membership window, so
//! its fixed per-individual budget splits across fewer counters (less
//! noise each) and only low thresholds are ever reachable. The flip side,
//! not visible in this table, is scope: high-churn panels can only answer
//! cumulative/window questions within each cohort's short window — the
//! accuracy-vs-history-length trade of rotating panel designs.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use longsynth::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_data::generators::iid_bernoulli;
use longsynth_data::{BitColumn, LongitudinalDataset};
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{AggregationPolicy, PanelSchedule, ShardedEngine, SlotRole};
use longsynth_queries::cumulative::cumulative_counts;
use longsynth_queries::{active_weighted_mean, AccuracyComparison, ErrorSummary};

const HORIZON: usize = 12;
const ACTIVE: usize = 24_000;
const RHO: f64 = 0.02;
const MAX_B: usize = 3;

/// `(label, per-round churn fraction, schedule)` for one regime.
fn regimes() -> Vec<(&'static str, PanelSchedule)> {
    let rho = Rho::new(RHO).unwrap();
    let static_schedule = PanelSchedule::uniform(ACTIVE, 4, HORIZON, rho, rho).unwrap();
    let rotating = |waves: usize| {
        let wave_size = ACTIVE / waves;
        let population = wave_size * (waves + HORIZON - 1);
        PanelSchedule::rotating(population, HORIZON, waves, rho, rho).unwrap()
    };
    vec![
        ("churn  0% (static, 4 cohorts)", static_schedule),
        ("churn 25% (rotating, 4 waves)", rotating(4)),
        ("churn 50% (rotating, 2 waves)", rotating(2)),
    ]
}

/// One true sub-panel per cohort, spanning the cohort's own window.
fn cohort_panels(schedule: &PanelSchedule, seed: u64) -> Vec<LongitudinalDataset> {
    (0..schedule.cohorts())
        .map(|c| {
            iid_bernoulli(
                &mut rng_from_seed(seed ^ (0xDA7A + c as u64)),
                schedule.cohort_size(c),
                schedule.cohort(c).horizon,
                0.25,
            )
        })
        .collect()
}

fn build_engine(schedule: &PanelSchedule, seed: u64) -> ShardedEngine<CumulativeSynthesizer> {
    let fork = RngFork::new(seed);
    ShardedEngine::with_schedule(schedule.clone(), AggregationPolicy::PerShardNoise, |slot| {
        let config = CumulativeConfig::new(slot.horizon, slot.budget).expect("scheduled slot");
        let SlotRole::Shard(s) = slot.role else {
            unreachable!("per-shard noise never builds a population slot");
        };
        CumulativeSynthesizer::new(
            config,
            fork.subfork(s as u64),
            rng_from_seed(seed ^ s as u64),
        )
    })
    .expect("schedule-validated engine")
}

/// Drive a full run; returns the engine for estimation.
fn run(
    schedule: &PanelSchedule,
    panels: &[LongitudinalDataset],
    seed: u64,
) -> ShardedEngine<CumulativeSynthesizer> {
    let mut engine = build_engine(schedule, seed);
    for round in 0..HORIZON {
        let columns: Vec<&BitColumn> = schedule
            .active(round)
            .into_iter()
            .map(|c| panels[c].column(round - schedule.cohort(c).entry_round))
            .collect();
        let column = BitColumn::concat(columns);
        engine.step(&column).expect("in-horizon step");
        assert!(
            engine.budget().within_cap(schedule.total_budget()),
            "budget invariant at round {round}"
        );
    }
    engine
}

/// Active-set population MAE over the cumulative battery.
fn population_error(
    schedule: &PanelSchedule,
    panels: &[LongitudinalDataset],
    engine: &ShardedEngine<CumulativeSynthesizer>,
) -> ErrorSummary {
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for t in 0..HORIZON {
        for b in 1..=MAX_B.min(t + 1) {
            let covering = (0..schedule.cohorts()).filter(|&c| schedule.cohort(c).is_active(t));
            let estimate = active_weighted_mean(covering.clone().map(|c| {
                let local = t - schedule.cohort(c).entry_round;
                (
                    engine.shard(c).estimate_fraction(local, b).unwrap(),
                    schedule.cohort_size(c),
                )
            }))
            .expect("every round has covering cohorts");
            let truth = active_weighted_mean(covering.map(|c| {
                let local = t - schedule.cohort(c).entry_round;
                let count = cumulative_counts(&panels[c], local)
                    .get(b)
                    .copied()
                    .unwrap_or(0);
                (
                    count as f64 / schedule.cohort_size(c) as f64,
                    schedule.cohort_size(c),
                )
            }))
            .expect("every round has covering cohorts");
            estimates.push(estimate);
            truths.push(truth);
        }
    }
    ErrorSummary::from_pairs(&estimates, &truths)
}

fn bench_panel_churn(c: &mut Criterion) {
    // Accuracy table, computed once outside criterion timing.
    let mut comparison: Option<AccuracyComparison> = None;
    let prepared: Vec<(&'static str, PanelSchedule, Vec<LongitudinalDataset>)> = regimes()
        .into_iter()
        .map(|(label, schedule)| {
            let panels = cohort_panels(&schedule, 0xC0DE);
            (label, schedule, panels)
        })
        .collect();
    for (label, schedule, panels) in &prepared {
        let engine = run(schedule, panels, 0xBEEF);
        let summary = population_error(schedule, panels, &engine);
        match &mut comparison {
            None => comparison = Some(AccuracyComparison::against(*label, summary)),
            Some(comparison) => comparison.add(*label, summary),
        }
    }
    eprintln!(
        "panel_churn: active-set population cumulative MAE \
         (active n = {ACTIVE}, T = {HORIZON}, b <= {MAX_B}, rho = {RHO}):\n{}",
        comparison.expect("at least one regime")
    );

    // Timed side: the full 12-round run per churn regime — the cost of a
    // rotating active set at constant active population.
    let mut group = c.benchmark_group("panel_churn");
    group.sample_size(10);
    for (label, schedule, panels) in &prepared {
        let churn = match *label {
            l if l.contains("50%") => "50",
            l if l.contains("25%") => "25",
            _ => "0",
        };
        group.bench_with_input(
            BenchmarkId::new("full_run", churn),
            &(schedule, panels),
            |b, (schedule, panels)| {
                b.iter_batched(
                    || build_engine(schedule, 0xBEEF),
                    |mut engine| {
                        for round in 0..HORIZON {
                            let columns: Vec<&BitColumn> = schedule
                                .active(round)
                                .into_iter()
                                .map(|c| panels[c].column(round - schedule.cohort(c).entry_round))
                                .collect();
                            let column = BitColumn::concat(columns);
                            engine.step(&column).expect("in-horizon step");
                        }
                        engine.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_panel_churn);
criterion_main!(benches);
