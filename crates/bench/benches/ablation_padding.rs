//! Ablation: padding rules and record-selection strategies for Algorithm 1
//! (DESIGN.md's design-choice ablations; the accuracy sides live in
//! `run_experiments ablations` and the integration tests).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer, PaddingPolicy, SelectionStrategy};
use longsynth_bench::bench_panel;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::rng_from_seed;

fn run_once(config: FixedWindowConfig, panel: &longsynth_data::LongitudinalDataset) -> usize {
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(17));
    for (_, col) in panel.stream() {
        synth.step(col).unwrap();
    }
    synth.n_star()
}

fn bench_padding(c: &mut Criterion) {
    let panel = bench_panel(10_000, 12);
    let rho = Rho::new(0.005).unwrap();

    let mut group = c.benchmark_group("alg1_by_padding_policy");
    group.sample_size(10);
    for (name, policy) in [
        ("recommended", PaddingPolicy::Recommended { beta: 0.05 }),
        ("heuristic", PaddingPolicy::Heuristic { beta: 0.05 }),
        ("none", PaddingPolicy::None),
    ] {
        group.bench_function(name, |b| {
            let config = FixedWindowConfig::new(12, 3, rho)
                .unwrap()
                .with_padding(policy);
            b.iter_batched(
                || config,
                |config| run_once(config, &panel),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alg1_by_selection");
    group.sample_size(10);
    for (name, selection) in [
        ("uniform", SelectionStrategy::Uniform),
        ("stratified", SelectionStrategy::Stratified),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &selection,
            |b, &selection| {
                let config = FixedWindowConfig::new(12, 3, rho)
                    .unwrap()
                    .with_selection(selection);
                b.iter_batched(
                    || config,
                    |config| run_once(config, &panel),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_padding);
criterion_main!(benches);
