//! Microbenches: the exact samplers at the bottom of the stack. Every
//! histogram bin and tree node pays one discrete Gaussian draw per release,
//! so draw throughput bounds the whole system's step latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longsynth_dp::bernoulli::sample_bernoulli_exp_neg;
use longsynth_dp::discrete_gaussian::sample_discrete_gaussian;
use longsynth_dp::geometric::{sample_discrete_laplace, sample_discrete_laplace_int};
use longsynth_dp::rng::rng_from_seed;
use longsynth_dp::DiscreteGaussianSampler;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("discrete_gaussian");
    for sigma2 in [1.0f64, 100.0, 1_000.0, 100_000.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sigma2),
            &sigma2,
            |b, &sigma2| {
                let mut rng = rng_from_seed(1);
                b.iter(|| sample_discrete_gaussian(&mut rng, black_box(sigma2)))
            },
        );
    }
    group.finish();

    // The batched-fill comparison the perf campaign tracks: seed-style
    // scalar loop (constants re-derived per draw) vs reused sampler vs the
    // pooled `fill` path. Same distribution, ≥2x throughput expected for
    // fill (see BENCH_samplers.json for the committed trajectory).
    const BATCH: usize = 1024;
    let mut group = c.benchmark_group("discrete_gaussian_batched");
    group.throughput(criterion::Throughput::Elements(BATCH as u64));
    for sigma2 in [1.0f64, 100.0, 100_000.0] {
        group.bench_with_input(
            BenchmarkId::new("scalar_loop", sigma2),
            &sigma2,
            |b, &sigma2| {
                let mut rng = rng_from_seed(21);
                b.iter(|| {
                    let mut acc = 0i64;
                    for _ in 0..BATCH {
                        acc =
                            acc.wrapping_add(sample_discrete_gaussian(&mut rng, black_box(sigma2)));
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sampler_loop", sigma2),
            &sigma2,
            |b, &sigma2| {
                let sampler = DiscreteGaussianSampler::new(sigma2);
                let mut rng = rng_from_seed(21);
                b.iter(|| {
                    let mut acc = 0i64;
                    for _ in 0..BATCH {
                        acc = acc.wrapping_add(sampler.sample(&mut rng));
                    }
                    acc
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sampler_fill", sigma2),
            &sigma2,
            |b, &sigma2| {
                let sampler = DiscreteGaussianSampler::new(sigma2);
                let mut rng = rng_from_seed(21);
                let mut buf = vec![0i64; BATCH];
                b.iter(|| {
                    sampler.fill(&mut rng, &mut buf);
                    black_box(buf[BATCH - 1])
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("discrete_laplace");
    group.bench_function("int_scale_10", |b| {
        let mut rng = rng_from_seed(2);
        b.iter(|| sample_discrete_laplace_int(&mut rng, black_box(10)))
    });
    group.bench_function("real_scale_2_5", |b| {
        let mut rng = rng_from_seed(3);
        b.iter(|| sample_discrete_laplace(&mut rng, black_box(2.5)))
    });
    group.finish();

    let mut group = c.benchmark_group("bernoulli_exp");
    for gamma in [0.1f64, 1.0, 5.0] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            let mut rng = rng_from_seed(4);
            b.iter(|| sample_bernoulli_exp_neg(&mut rng, black_box(gamma)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
