//! Bench: regenerate Figure 1 (SIPP quarterly poverty, synthetic-data
//! answers, ρ = 0.005) — the full single-run synthesis at paper scale and
//! the repeated-experiment harness at reduced reps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_bench::{bench_panel, BENCH_REPS};
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::rng_from_seed;
use longsynth_experiments::figures::fig1;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_quarterly");
    group.sample_size(10);

    // One full synthesis pass at the paper's n = 23 374.
    let panel = bench_panel(23_374, 12);
    group.bench_function("single_run_n23374", |b| {
        b.iter_batched(
            || {
                let config = FixedWindowConfig::new(12, 3, Rho::new(fig1::RHO).unwrap()).unwrap();
                FixedWindowSynthesizer::new(config, rng_from_seed(1))
            },
            |mut synth| {
                for (_, col) in panel.stream() {
                    synth.step(col).unwrap();
                }
                synth.n_star()
            },
            BatchSize::LargeInput,
        )
    });

    // The experiment harness end to end (reduced reps).
    group.bench_function("experiment_reps5", |b| {
        b.iter(|| fig1::run(&panel, BENCH_REPS, 2))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
