//! Bench: regenerate Figure 2 (SIPP ≥3-months poverty, cumulative,
//! ρ = 0.005) — Algorithm 2 at paper scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use longsynth::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_bench::{bench_panel, BENCH_REPS};
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_experiments::figures::fig2;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_cumulative");
    group.sample_size(10);

    let panel = bench_panel(23_374, 12);
    group.bench_function("single_run_n23374", |b| {
        b.iter_batched(
            || {
                let config = CumulativeConfig::new(12, Rho::new(fig2::RHO).unwrap()).unwrap();
                CumulativeSynthesizer::new(config, RngFork::new(3), rng_from_seed(4))
            },
            |mut synth| {
                for (_, col) in panel.stream() {
                    synth.step(col).unwrap();
                }
                synth.estimate_fraction(11, 3).unwrap()
            },
            BatchSize::LargeInput,
        )
    });

    group.bench_function("experiment_reps5", |b| {
        b.iter(|| fig2::run(&panel, fig2::RHO, fig2::THRESHOLD_B, BENCH_REPS, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
