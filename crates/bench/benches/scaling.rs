//! Scaling benches: synthesizer cost as a function of population size `n`,
//! window width `k`, and horizon `T` — the knobs a deployment would turn.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use longsynth::{
    CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig, FixedWindowSynthesizer,
};
use longsynth_bench::bench_panel;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};

fn bench_scaling_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_scaling_n");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let panel = bench_panel(n, 12);
        group.throughput(Throughput::Elements(n as u64 * 12));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    let config = FixedWindowConfig::new(12, 3, Rho::new(0.005).unwrap()).unwrap();
                    FixedWindowSynthesizer::new(config, rng_from_seed(18))
                },
                |mut synth| {
                    for (_, col) in panel.stream() {
                        synth.step(col).unwrap();
                    }
                    synth.n_star()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_scaling_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg1_scaling_k");
    group.sample_size(10);
    let panel = bench_panel(10_000, 16);
    for k in [1usize, 3, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter_batched(
                || {
                    let config = FixedWindowConfig::new(16, k, Rho::new(0.005).unwrap()).unwrap();
                    FixedWindowSynthesizer::new(config, rng_from_seed(19))
                },
                |mut synth| {
                    for (_, col) in panel.stream() {
                        synth.step(col).unwrap();
                    }
                    synth.n_star()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_scaling_horizon(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_scaling_horizon");
    group.sample_size(10);
    for horizon in [12usize, 48, 96] {
        let panel = bench_panel(5_000, horizon);
        group.bench_with_input(
            BenchmarkId::from_parameter(horizon),
            &horizon,
            |b, &horizon| {
                b.iter_batched(
                    || {
                        let config =
                            CumulativeConfig::new(horizon, Rho::new(0.01).unwrap()).unwrap();
                        CumulativeSynthesizer::new(config, RngFork::new(20), rng_from_seed(21))
                    },
                    |mut synth| {
                        for (_, col) in panel.stream() {
                            synth.step(col).unwrap();
                        }
                        synth.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scaling_n,
    bench_scaling_k,
    bench_scaling_horizon
);
criterion_main!(benches);
