//! Ingest throughput: events/sec sustained through watermark seal — the
//! perf baseline for the event-time ingestion tier (`crates/ingest`).
//!
//! Two arms at n ∈ {100k, 1M} events (one event per (round, individual)
//! over a 12-round horizon, tumbling 60 s windows at a Unix-ms origin):
//!
//! * `binner` — the pure seal path: events pushed straight into the
//!   [`WindowBinner`] with a per-round watermark advance. No queue, no
//!   threads; this is the upper bound the pipeline chases.
//! * `pipeline` — the full tier: a producer thread batching events
//!   through the bounded queue (backpressure on), the consumer draining,
//!   watermark-sealing, and yielding rounds. The acceptance bar
//!   (≥ 1M events/sec at n = 1M) applies to this arm.
//!
//! Besides the criterion groups, a full (non-`--test`) run writes
//! `BENCH_ingest.json` at the repo root with both arms' sustained rates
//! and the machine's core count; on a single-core container the artifact
//! carries an explicit `caveat` (producer and sealer share the core, so
//! the pipeline row measures the serialized cost) exactly as
//! `BENCH_scaling.json` does (`docs/BENCH_SCHEMA.md`).

use criterion::{black_box, criterion_group, Criterion, Throughput};
use longsynth_ingest::{
    BitRoundAssembler, Event, IngestConfig, IngestTier, LatePolicy, WindowBinner, WindowSpec,
};
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

const HORIZON: usize = 12;
const T0: i64 = 1_760_000_000_000; // Unix ms, ~late 2025: real epoch magnitudes
const WIDTH_MS: i64 = 60_000;
const SEND_BATCH: usize = 4_096;
const QUEUE_CAP: usize = 65_536;

fn spec() -> WindowSpec {
    WindowSpec::tumbling(WIDTH_MS, T0).expect("valid window")
}

/// One event per (round, individual): `total` events over the horizon,
/// timestamped inside each round's window, mixed payload bits.
fn event_stream(total: usize) -> (usize, Vec<Vec<Event<bool>>>) {
    let population = total / HORIZON;
    let spec = spec();
    let rounds = (0..HORIZON)
        .map(|round| {
            let open = spec.window(round as u64).open;
            (0..population)
                .map(|i| Event {
                    time_ms: open + (i as i64 % WIDTH_MS),
                    individual: i as u32,
                    payload: i % 3 != 0,
                })
                .collect()
        })
        .collect();
    (population, rounds)
}

/// The pure seal path: push every event, advance the watermark round by
/// round, drain sealed rounds. Returns rounds sealed (12).
fn run_binner(population: usize, rounds: &[Vec<Event<bool>>]) -> u64 {
    let spec = spec();
    let mut binner = WindowBinner::new(spec, LatePolicy::Drop, BitRoundAssembler::new(population));
    let mut out = VecDeque::new();
    let mut sealed = 0u64;
    for (round, events) in rounds.iter().enumerate() {
        for event in events {
            binner.push(event.time_ms, event.individual, &event.payload);
        }
        binner.advance(spec.window(round as u64).close, &mut out);
        while let Some(s) = out.pop_front() {
            sealed += 1;
            black_box(s.input);
        }
    }
    binner.finish(&mut out);
    assert_eq!(binner.late_events(), 0, "bench stream must not drop events");
    sealed + out.len() as u64
}

/// The full tier: a producer thread batching through the bounded queue,
/// the consumer watermark-sealing rounds. Returns rounds sealed (12).
fn run_pipeline(population: usize, rounds: Arc<Vec<Vec<Event<bool>>>>) -> u64 {
    let mut config = IngestConfig::new(spec());
    config.queue_cap = QUEUE_CAP;
    let tier = IngestTier::new(config, BitRoundAssembler::new(population));
    let producer = tier.producer();
    let feeder = std::thread::spawn(move || {
        for events in rounds.iter() {
            for chunk in events.chunks(SEND_BATCH) {
                if producer.send_batch(chunk.to_vec()).is_err() {
                    return;
                }
            }
        }
    });
    let mut sealed_rounds = tier.into_rounds().with_min_rounds(HORIZON as u64);
    let mut sealed = 0u64;
    for s in sealed_rounds.by_ref() {
        sealed += 1;
        black_box(s.input);
    }
    feeder.join().expect("producer thread");
    assert_eq!(
        sealed_rounds.stats().late_events,
        0,
        "bench stream must not drop events"
    );
    sealed
}

fn bench_ingest_throughput(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("ingest_throughput: {cores} core(s) available to this process");
    for total in [100_000usize, 1_000_000] {
        let (population, rounds) = event_stream(total);
        let rounds = Arc::new(rounds);
        let mut group = c.benchmark_group(format!("ingest_seal_n{total}"));
        group.sample_size(if total >= 1_000_000 { 3 } else { 10 });
        group.throughput(Throughput::Elements(total as u64));
        group.bench_function("binner", |b| b.iter(|| run_binner(population, &rounds)));
        group.bench_function("pipeline", |b| {
            b.iter(|| run_pipeline(population, Arc::clone(&rounds)))
        });
        group.finish();
    }
}

// ---------------------------------------------------------------------------
// BENCH_ingest.json artifact (see docs/BENCH_SCHEMA.md)
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct IngestArtifact {
    schema: &'static str,
    cores: usize,
    /// Present when `cores == 1`: the producer thread and the sealing
    /// consumer then share one core, so the `pipeline` rows measure the
    /// serialized cost of both sides. `null` on multi-core hardware.
    caveat: Option<&'static str>,
    rounds: usize,
    window_ms: i64,
    queue_cap: usize,
    send_batch: usize,
    reps: usize,
    runs: Vec<IngestRunDto>,
}

#[derive(Serialize)]
struct IngestRunDto {
    config: &'static str,
    events: usize,
    population: usize,
    total_ms: f64,
    events_per_s: f64,
}

fn ingest_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest.json")
}

/// Measure both arms at n ∈ {100k, 1M} and write the committed artifact.
fn write_ingest_artifact() {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let reps = 3usize;
    let mut runs = Vec::new();
    for total in [100_000usize, 1_000_000] {
        let (population, rounds) = event_stream(total);
        let rounds = Arc::new(rounds);
        for config in ["binner", "pipeline"] {
            let mut total_ms = 0.0f64;
            for _ in 0..reps {
                let start = Instant::now();
                let sealed = match config {
                    "binner" => run_binner(population, &rounds),
                    _ => run_pipeline(population, Arc::clone(&rounds)),
                };
                total_ms += start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(sealed, HORIZON as u64);
            }
            total_ms /= reps as f64;
            let events_per_s = total as f64 / (total_ms / 1e3);
            eprintln!(
                "ingest_throughput: n={total} {config}: {total_ms:.1} ms \
                 ({:.2}M events/sec)",
                events_per_s / 1e6
            );
            runs.push(IngestRunDto {
                config,
                events: total,
                population,
                total_ms,
                events_per_s,
            });
        }
    }
    let artifact = IngestArtifact {
        schema: "longsynth-ingest-v1",
        cores,
        caveat: (cores == 1).then_some(
            "single-core environment: the pipeline rows serialize the producer thread and \
             the sealing consumer onto one core; re-measure on multi-core hardware before \
             reading them as concurrent throughput",
        ),
        rounds: HORIZON,
        window_ms: WIDTH_MS,
        queue_cap: QUEUE_CAP,
        send_batch: SEND_BATCH,
        reps,
        runs,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize ingest artifact");
    std::fs::write(ingest_json_path(), json + "\n").expect("write BENCH_ingest.json");
    eprintln!("ingest_throughput: wrote {}", ingest_json_path().display());
}

criterion_group!(benches, bench_ingest_throughput);

fn main() {
    // `--test` is the CI smoke mode: run the criterion groups once at
    // their smallest shape and write nothing (the committed artifact only
    // changes deliberately). Any other invocation refreshes the artifact
    // before the criterion sweep.
    let smoke = std::env::args().any(|a| a == "--test");
    if !smoke {
        write_ingest_artifact();
    }
    benches();
}
