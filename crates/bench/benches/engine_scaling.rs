//! Engine scaling: merged-release latency as a function of shard count and
//! population size — the perf-trajectory baseline for the sharded engine.
//!
//! Sweeps shards ∈ {1, 2, 4, 8} × population ∈ {10k, 100k, 1M} over a full
//! 12-round fixed-window run (k = 3, paper budget ρ = 0.005).
//!
//! Baseline reading (first measurement on this machine): sharding is
//! currently ~flat-to-slower, because the per-round cohort split and
//! release merge run bit-by-bit on the caller thread — an Amdahl
//! bottleneck of the same order as the per-shard synthesis they bracket.
//! That makes this bench the tracking instrument for the two obvious
//! follow-ups (word-level `BitColumn` splicing; persistent shard workers),
//! which is exactly why it sweeps both axes.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_bench::bench_panel;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{ShardPlan, ShardedEngine};

const HORIZON: usize = 12;
const WINDOW: usize = 3;

fn build_engine(
    population: usize,
    shards: usize,
    seed: u64,
) -> ShardedEngine<FixedWindowSynthesizer> {
    let plan = ShardPlan::new(population, shards).expect("valid plan");
    let fork = RngFork::new(seed);
    ShardedEngine::new(plan, |s, _| {
        let config = FixedWindowConfig::new(HORIZON, WINDOW, Rho::new(0.005).unwrap())
            .expect("valid config");
        FixedWindowSynthesizer::new(config, fork.child(s as u64))
    })
    .expect("uniform shards")
}

fn bench_engine_scaling(c: &mut Criterion) {
    // Detect the actual core budget at runtime and say so up front: on a
    // 1-core container every shards > 1 row measures pure overhead (the
    // flat-to-slower shape below is then expected, not a regression), and
    // readers comparing committed numbers across machines need the core
    // count to interpret the sweep at all.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("engine_scaling: {cores} core(s) available to this process");
    if cores == 1 {
        eprintln!(
            "engine_scaling: single-core environment — shard sweeps measure \
             split/merge overhead only, expect flat or inverted scaling"
        );
    }
    for population in [10_000usize, 100_000, 1_000_000] {
        let panel = bench_panel(population, HORIZON);
        let mut group = c.benchmark_group(format!("engine_full_run_n{population}"));
        group.sample_size(if population >= 1_000_000 { 3 } else { 10 });
        group.throughput(Throughput::Elements((population * HORIZON) as u64));
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(shards),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || build_engine(population, shards, 0xE7611E),
                        |mut engine| {
                            for (_, column) in panel.stream() {
                                engine.step(column).expect("in-horizon step");
                            }
                            engine.rounds_fed()
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
        group.finish();
    }
}

fn bench_merge_overhead(c: &mut Criterion) {
    // Isolate the split+merge cost from synthesis: a single engine round at
    // 100k individuals, varying shard count.
    let population = 100_000usize;
    let panel = bench_panel(population, WINDOW);
    let mut group = c.benchmark_group("engine_single_round_n100k");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || build_engine(population, shards, 0x5EED),
                    |mut engine| {
                        let _ = engine.step(panel.column(0)).expect("first step");
                        engine.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
    let _ = rng_from_seed(0); // keep the shared-import surface exercised
}

criterion_group!(benches, bench_engine_scaling, bench_merge_overhead);
criterion_main!(benches);
