//! Engine scaling: merged-release latency as a function of shard count and
//! population size — the perf-trajectory baseline for the sharded engine.
//!
//! Sweeps shards ∈ {1, 2, 4, 8} × population ∈ {10k, 100k, 1M} over a full
//! 12-round fixed-window run (k = 3, paper budget ρ = 0.005).
//!
//! Baseline reading (first measurement on this machine): sharding is
//! currently ~flat-to-slower, because the per-round cohort split and
//! release merge run bit-by-bit on the caller thread — an Amdahl
//! bottleneck of the same order as the per-shard synthesis they bracket.
//! That makes this bench the tracking instrument for the two obvious
//! follow-ups (word-level `BitColumn` splicing; persistent shard workers),
//! which is exactly why it sweeps both axes.
//!
//! Besides the criterion groups, a full (non-`--test`) run writes
//! `BENCH_scaling.json` at the repo root: an `Instant`-based n=1M shard
//! sweep with per-shard speedups, plus the machine's core count. On a
//! single-core container the artifact carries an explicit `caveat` (the
//! sweep then measures split/merge overhead, not parallel speedup)
//! instead of silently skipping — the day multi-core hardware appears,
//! regeneration records the real speedup with no code change
//! (`docs/BENCH_SCHEMA.md` documents the fields).

use criterion::{criterion_group, BatchSize, BenchmarkId, Criterion, Throughput};
use longsynth::{FixedWindowConfig, FixedWindowSynthesizer};
use longsynth_bench::bench_panel;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{ShardPlan, ShardedEngine};
use serde::Serialize;
use std::time::Instant;

const HORIZON: usize = 12;
const WINDOW: usize = 3;

fn build_engine(
    population: usize,
    shards: usize,
    seed: u64,
) -> ShardedEngine<FixedWindowSynthesizer> {
    let plan = ShardPlan::new(population, shards).expect("valid plan");
    let fork = RngFork::new(seed);
    ShardedEngine::new(plan, |s, _| {
        let config = FixedWindowConfig::new(HORIZON, WINDOW, Rho::new(0.005).unwrap())
            .expect("valid config");
        FixedWindowSynthesizer::new(config, fork.child(s as u64))
    })
    .expect("uniform shards")
}

fn bench_engine_scaling(c: &mut Criterion) {
    // Detect the actual core budget at runtime and say so up front: on a
    // 1-core container every shards > 1 row measures pure overhead (the
    // flat-to-slower shape below is then expected, not a regression), and
    // readers comparing committed numbers across machines need the core
    // count to interpret the sweep at all.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    eprintln!("engine_scaling: {cores} core(s) available to this process");
    if cores == 1 {
        eprintln!(
            "engine_scaling: single-core environment — shard sweeps measure \
             split/merge overhead only, expect flat or inverted scaling"
        );
    }
    for population in [10_000usize, 100_000, 1_000_000] {
        let panel = bench_panel(population, HORIZON);
        let mut group = c.benchmark_group(format!("engine_full_run_n{population}"));
        group.sample_size(if population >= 1_000_000 { 3 } else { 10 });
        group.throughput(Throughput::Elements((population * HORIZON) as u64));
        for shards in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::from_parameter(shards),
                &shards,
                |b, &shards| {
                    b.iter_batched(
                        || build_engine(population, shards, 0xE7611E),
                        |mut engine| {
                            for (_, column) in panel.stream() {
                                engine.step(column).expect("in-horizon step");
                            }
                            engine.rounds_fed()
                        },
                        BatchSize::LargeInput,
                    )
                },
            );
        }
        group.finish();
    }
}

fn bench_merge_overhead(c: &mut Criterion) {
    // Isolate the split+merge cost from synthesis: a single engine round at
    // 100k individuals, varying shard count.
    let population = 100_000usize;
    let panel = bench_panel(population, WINDOW);
    let mut group = c.benchmark_group("engine_single_round_n100k");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter_batched(
                    || build_engine(population, shards, 0x5EED),
                    |mut engine| {
                        let _ = engine.step(panel.column(0)).expect("first step");
                        engine.rounds_fed()
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
    let _ = rng_from_seed(0); // keep the shared-import surface exercised
}

// ---------------------------------------------------------------------------
// BENCH_scaling.json artifact (see docs/BENCH_SCHEMA.md)
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct ScalingArtifact {
    schema: &'static str,
    cores: usize,
    /// Present when `cores == 1`: the sweep below measures split/merge
    /// overhead, not parallel speedup. `null` on multi-core hardware.
    caveat: Option<&'static str>,
    population: usize,
    rounds: usize,
    reps: usize,
    runs: Vec<ScalingRunDto>,
}

#[derive(Serialize)]
struct ScalingRunDto {
    shards: usize,
    total_ms: f64,
    rows_per_s: f64,
    speedup_vs_1_shard: f64,
}

fn scaling_json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scaling.json")
}

/// Measure the n=1M full-horizon run across shard counts and write the
/// committed scaling artifact.
fn write_scaling_artifact() {
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let (population, reps) = (1_000_000usize, 2usize);
    let panel = bench_panel(population, HORIZON);
    let mut runs = Vec::new();
    for shards in [1usize, 2, 4, 8] {
        let mut total_ms = 0.0f64;
        for rep in 0..reps {
            let mut engine = build_engine(population, shards, 0xE7611E + rep as u64);
            let start = Instant::now();
            for (_, column) in panel.stream() {
                engine.step(column).expect("in-horizon step");
            }
            total_ms += start.elapsed().as_secs_f64() * 1e3;
        }
        total_ms /= reps as f64;
        eprintln!("engine_scaling: n=1M shards={shards}: {total_ms:.1} ms/run");
        runs.push(ScalingRunDto {
            shards,
            total_ms,
            rows_per_s: (population * HORIZON) as f64 / (total_ms / 1e3),
            speedup_vs_1_shard: 0.0, // filled below from the shards=1 row
        });
    }
    let base_ms = runs[0].total_ms;
    for run in &mut runs {
        run.speedup_vs_1_shard = base_ms / run.total_ms;
    }
    let artifact = ScalingArtifact {
        schema: "longsynth-scaling-v1",
        cores,
        caveat: (cores == 1).then_some(
            "single-core environment: shards > 1 rows measure split/merge overhead only; \
             re-measure on multi-core hardware before reading these as parallel speedups",
        ),
        population,
        rounds: HORIZON,
        reps,
        runs,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize scaling artifact");
    std::fs::write(scaling_json_path(), json + "\n").expect("write BENCH_scaling.json");
    eprintln!("engine_scaling: wrote {}", scaling_json_path().display());
}

criterion_group!(benches, bench_engine_scaling, bench_merge_overhead);

fn main() {
    // `--test` is the CI smoke mode: run the criterion groups once at
    // their smallest shape and write nothing (the committed artifact only
    // changes deliberately). Any other invocation refreshes the artifact
    // before the criterion sweep.
    let smoke = std::env::args().any(|a| a == "--test");
    if !smoke {
        write_scaling_artifact();
    }
    benches();
}
