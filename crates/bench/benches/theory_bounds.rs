//! Bench: the theory-vs-measured table T1 (Theorem 3.2 bound checks) at
//! reduced scale, plus the cost of the bound computations themselves
//! (they sit on analyst hot paths when choosing npad).

use criterion::{criterion_group, criterion_main, Criterion};
use longsynth_dp::budget::Rho;
use longsynth_dp::tail::{recommended_npad, theorem_3_2_lambda, FixedWindowParams};
use longsynth_experiments::figures::theory::table_t1;
use std::hint::black_box;

fn bench_theory(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_bounds");
    group.sample_size(10);
    group.bench_function("table_t1_n2000_reps5", |b| {
        b.iter(|| table_t1(2_000, 5, 11))
    });
    group.finish();

    c.bench_function("lambda_and_npad_formulas", |b| {
        let params = FixedWindowParams::new(12, 3, Rho::new(0.005).unwrap()).unwrap();
        b.iter(|| {
            let l = theorem_3_2_lambda(black_box(&params), black_box(0.05));
            let n = recommended_npad(black_box(&params), black_box(0.05));
            (l, n)
        })
    });
}

criterion_group!(benches, bench_theory);
criterion_main!(benches);
