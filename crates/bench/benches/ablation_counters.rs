//! Ablation: Algorithm 2's runtime across stream-counter families and
//! budget splits (§1.1 invites swapping counters; accuracy ablations are in
//! `run_experiments ablations`), plus raw counter throughput.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use longsynth::{BudgetSplit, CumulativeConfig, CumulativeSynthesizer};
use longsynth_bench::bench_panel;
use longsynth_counters::CounterKind;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};

fn bench_counter_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_by_counter");
    group.sample_size(10);
    let panel = bench_panel(10_000, 12);
    for kind in CounterKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter_batched(
                || {
                    let config = CumulativeConfig::new(12, Rho::new(0.005).unwrap())
                        .unwrap()
                        .with_counter(kind);
                    CumulativeSynthesizer::new(config, RngFork::new(12), rng_from_seed(13))
                },
                |mut synth| {
                    for (_, col) in panel.stream() {
                        synth.step(col).unwrap();
                    }
                    synth.estimate_fraction(11, 3).unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alg2_by_split");
    group.sample_size(10);
    for (name, split) in [
        ("uniform", BudgetSplit::Uniform),
        ("corollary_b1", BudgetSplit::CorollaryB1),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let config = CumulativeConfig::new(12, Rho::new(0.005).unwrap())
                        .unwrap()
                        .with_split(split);
                    CumulativeSynthesizer::new(config, RngFork::new(14), rng_from_seed(15))
                },
                |mut synth| {
                    for (_, col) in panel.stream() {
                        synth.step(col).unwrap();
                    }
                    synth.rounds_fed()
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();

    // Raw counter throughput over a long stream.
    let mut group = c.benchmark_group("counter_feed_throughput_t4096");
    for kind in CounterKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
            b.iter_batched(
                || kind.build(4096, Rho::new(0.5).unwrap(), rng_from_seed(16)),
                |mut counter| {
                    let mut acc = 0i64;
                    for t in 0..4096u64 {
                        acc ^= counter.feed(t % 3);
                    }
                    acc
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counter_kinds);
criterion_main!(benches);
