//! Bench: regenerate Figure 4 (simulated-data error *without* debiasing).

use criterion::{criterion_group, criterion_main, Criterion};
use longsynth_bench::BENCH_REPS;
use longsynth_experiments::figures::fig4::run_biased;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_sim_biased");
    group.sample_size(10);
    group.bench_function("biased_n5000_reps5", |b| {
        b.iter(|| run_biased(5_000, BENCH_REPS, 8))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
