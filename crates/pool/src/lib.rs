//! # longsynth-pool
//!
//! A persistent worker pool shared by the scaling layers of the `longsynth`
//! workspace.
//!
//! The sharded engine used to spawn one scoped OS thread per shard per
//! round (`std::thread::scope`); at production round rates that per-round
//! spawn/join cost is pure overhead, and the serving front-end
//! (`longsynth-serve`) needs the same primitive for concurrent query
//! batches. [`WorkerPool`] replaces both: a fixed set of threads created
//! once, fed through a channel-backed job queue, with
//! [`run_batch`](WorkerPool::run_batch) providing the scoped-submission
//! shape callers actually use — submit a batch, block until every job has
//! finished, get results back in submission order.
//!
//! Design notes:
//!
//! * Jobs are `'static` closures. Callers that want to lend mutable state
//!   to a job (the engine lends each shard's synthesizer) move it *into*
//!   the closure and return it *out* as part of the result; `run_batch`'s
//!   blocking barrier makes that ownership round-trip safe and
//!   borrow-checker-visible, with no `unsafe` anywhere in this crate.
//! * A panicking job is contained: the worker survives, the panic payload
//!   is carried back to the submitting thread, and `run_batch` resumes the
//!   unwind there — same observable behavior as `std::thread::scope`.
//! * The queue is a plain `std::sync::mpsc` channel behind a mutex-guarded
//!   receiver (the classic std-only work queue). Workers block on `recv`,
//!   so an idle pool consumes no CPU. Dropping the pool closes the channel
//!   and joins every worker.
//!
//! ```
//! use longsynth_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.run_batch((0..8).map(|i| move || i * i));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
///
/// Create once, submit many batches; see the crate docs for the ownership
/// discipline that replaces scoped borrows.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool with exactly `threads` workers (`threads >= 1`).
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a worker pool needs at least one thread");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("longsynth-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// A pool sized to the machine: one worker per available core, capped
    /// at `max` (callers typically pass their shard or batch width).
    pub fn with_capacity_hint(max: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        Self::new(cores.min(max).max(1))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Fire-and-forget submission: queue `job` and return immediately.
    ///
    /// A panic inside `job` is swallowed after poisoning nothing — workers
    /// stay alive. Use [`run_batch`](Self::run_batch) when the caller needs
    /// results or panic propagation.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(move || {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }))
            .expect("pool workers outlive the sender");
    }

    /// Submit a batch of jobs and block until all have completed, returning
    /// their results **in submission order**.
    ///
    /// This is the scoped-submission primitive: the calling thread parks on
    /// a result channel, so by the time `run_batch` returns every job has
    /// run to completion and any state moved into the closures has been
    /// moved back out through the results.
    ///
    /// # Panics
    /// If any job panicked, re-raises the first (by submission order)
    /// panic payload on the calling thread after all jobs in the batch have
    /// settled — mirroring `std::thread::scope` join semantics.
    pub fn run_batch<T, I, F>(&self, jobs: I) -> Vec<T>
    where
        T: Send + 'static,
        I: IntoIterator<Item = F>,
        F: FnOnce() -> T + Send + 'static,
    {
        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<T>)>();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            self.sender
                .as_ref()
                .expect("pool sender lives until drop")
                .send(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    // The batch submitter may itself have unwound; a closed
                    // result channel is not this worker's problem.
                    let _ = result_tx.send((index, outcome));
                }))
                .expect("pool workers outlive the sender");
            submitted += 1;
        }
        drop(result_tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..submitted).map(|_| None).collect();
        for _ in 0..submitted {
            let (index, outcome) = result_rx
                .recv()
                .expect("every submitted job reports exactly once");
            slots[index] = Some(outcome);
        }
        let mut results = Vec::with_capacity(submitted);
        let mut first_panic = None;
        for outcome in slots.into_iter().map(|s| s.expect("slot filled")) {
            match outcome {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail, ending its
        // loop after it finishes the job in hand.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool[threads={}]", self.workers.len())
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only for the dequeue, never while running a
        // job — jobs of any duration cannot serialize the other workers.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // poisoned only if a worker died mid-recv
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        // Stagger finish times so completion order differs from submission.
        let results = pool.run_batch((0..16).map(|i| {
            move || {
                std::thread::sleep(std::time::Duration::from_millis((16 - i) % 4));
                i * 10
            }
        }));
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..5 {
            let doubled = pool.run_batch((0..6).map(move |i| move || (round, i * 2)));
            assert_eq!(doubled.len(), 6);
            assert!(doubled.iter().all(|&(r, _)| r == round));
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn ownership_round_trips_through_a_batch() {
        // The engine's pattern: move owned state in, get it back mutated.
        let pool = WorkerPool::new(3);
        let states: Vec<Vec<u64>> = (0..5).map(|i| vec![i]).collect();
        let returned = pool.run_batch(states.into_iter().map(|mut state| {
            move || {
                state.push(state[0] * 100);
                state
            }
        }));
        for (i, state) in returned.into_iter().enumerate() {
            assert_eq!(state, vec![i as u64, i as u64 * 100]);
        }
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                Box::new(|| 1u64) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(|| panic!("shard exploded")),
            ])
        }));
        assert!(outcome.is_err());
        // Workers survived the panic; the pool still serves batches.
        assert_eq!(
            pool.run_batch((0..4).map(|i| move || i + 1)),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn execute_is_fire_and_forget() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // A blocking batch behind the queued jobs flushes them (single
        // queue, every worker drains in order).
        pool.run_batch((0..pool.threads()).map(|_| || ()));
        // All fire-and-forget jobs were picked up before the batch ended on
        // the same queue... not strictly ordered per worker; wait briefly.
        for _ in 0..100 {
            if counter.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn capacity_hint_clamps() {
        let pool = WorkerPool::with_capacity_hint(2);
        assert!(pool.threads() >= 1 && pool.threads() <= 2);
        assert!(WorkerPool::with_capacity_hint(usize::MAX).threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1);
        let empty: Vec<fn() -> u8> = vec![];
        assert!(pool.run_batch(empty).is_empty());
    }

    #[test]
    fn debug_shows_thread_count() {
        assert_eq!(format!("{:?}", WorkerPool::new(3)), "WorkerPool[threads=3]");
    }
}
