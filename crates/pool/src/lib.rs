//! # longsynth-pool
//!
//! A persistent worker pool shared by the scaling layers of the `longsynth`
//! workspace.
//!
//! The sharded engine used to spawn one scoped OS thread per shard per
//! round (`std::thread::scope`); at production round rates that per-round
//! spawn/join cost is pure overhead, and the serving front-end
//! (`longsynth-serve`) needs the same primitive for concurrent query
//! batches. [`WorkerPool`] replaces both: a fixed set of threads created
//! once, fed through a channel-backed job queue, with
//! [`run_batch`](WorkerPool::run_batch) providing the scoped-submission
//! shape callers actually use — submit a batch, block until every job has
//! finished, get results back in submission order.
//!
//! Design notes:
//!
//! * Jobs are `'static` closures. Callers that want to lend mutable state
//!   to a job (the engine lends each shard's synthesizer) move it *into*
//!   the closure and return it *out* as part of the result; `run_batch`'s
//!   blocking barrier makes that ownership round-trip safe and
//!   borrow-checker-visible, with no `unsafe` anywhere in this crate.
//! * A panicking job is contained: the worker survives, the panic payload
//!   is carried back to the submitting thread, and `run_batch` resumes the
//!   unwind there — same observable behavior as `std::thread::scope`.
//!   Contained panics are never silent: every one increments the pool's
//!   [`worker_panics`](WorkerPool::worker_panics) count (and the
//!   `pool_worker_panics` metric when a registry is attached), so
//!   fire-and-forget panics that `execute` swallows still leave a trace.
//! * Observability is construction-time optional:
//!   [`attach_metrics`](WorkerPool::attach_metrics) hooks the pool into a
//!   `longsynth_obs::MetricsRegistry` (queue depth gauge, queued→done task
//!   latency histogram, task/panic counters); a pool without one runs the
//!   identical uninstrumented path.
//! * The queue is a plain `std::sync::mpsc` channel behind a mutex-guarded
//!   receiver (the classic std-only work queue). Workers block on `recv`,
//!   so an idle pool consumes no CPU. Dropping the pool closes the channel
//!   and joins every worker.
//!
//! ```
//! use longsynth_pool::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.run_batch((0..8).map(|i| move || i * i));
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use longsynth_obs::{Counter, Gauge, Histogram, MetricsRegistry};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Registry handles for an instrumented pool; cloned into each job so
/// the hot path never takes the registry lock.
#[derive(Clone)]
struct PoolMetrics {
    /// Jobs submitted but not yet started (`pool_queue_depth`).
    queue_depth: Gauge,
    /// Queued→completed latency in milliseconds (`pool_task_ms`).
    task_ms: Histogram,
    /// Jobs completed, panicked or not (`pool_tasks_total`).
    tasks: Counter,
    /// Contained worker panics (`pool_worker_panics`).
    panics: Counter,
}

/// A fixed-size pool of persistent worker threads.
///
/// Create once, submit many batches; see the crate docs for the ownership
/// discipline that replaces scoped borrows.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    metrics: OnceLock<PoolMetrics>,
    /// Always-on panic count, independent of any attached registry —
    /// `execute`'s containment must never be silent.
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawn a pool with exactly `threads` workers (`threads >= 1`).
    ///
    /// # Panics
    /// Panics if `threads == 0` or the OS refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a worker pool needs at least one thread");
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("longsynth-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning pool worker")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            metrics: OnceLock::new(),
            panics: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A pool sized to the machine: one worker per available core, capped
    /// at `max` (callers typically pass their shard or batch width).
    pub fn with_capacity_hint(max: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        Self::new(cores.min(max).max(1))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Hook this pool into a metrics registry: `pool_queue_depth`
    /// (gauge, jobs submitted but not yet started), `pool_task_ms`
    /// (histogram, queued→completed latency), `pool_tasks_total`, and
    /// `pool_worker_panics` (counters). Only the first attachment wins;
    /// returns `false` if metrics were already attached. Panics contained
    /// before attachment are carried into the metric so the registry
    /// agrees with [`worker_panics`](Self::worker_panics).
    pub fn attach_metrics(&self, registry: &MetricsRegistry) -> bool {
        let metrics = PoolMetrics {
            queue_depth: registry.gauge("pool_queue_depth"),
            task_ms: registry.latency_histogram("pool_task_ms"),
            tasks: registry.counter("pool_tasks_total"),
            panics: registry.counter("pool_worker_panics"),
        };
        let seed = self.panics.load(Ordering::Relaxed);
        if self.metrics.set(metrics).is_err() {
            return false;
        }
        self.metrics
            .get()
            .expect("metrics just attached")
            .panics
            .add(seed);
        true
    }

    /// Number of worker panics this pool has contained (both `execute`'s
    /// swallow-and-survive path and `run_batch`'s carry-back path).
    pub fn worker_panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Count one contained panic on the always-on counter and, when a
    /// registry is attached, the `pool_worker_panics` metric.
    fn count_panic(panics: &AtomicU64, metrics: Option<&PoolMetrics>) {
        panics.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = metrics {
            m.panics.inc();
        }
    }

    /// Fire-and-forget submission: queue `job` and return immediately.
    ///
    /// A panic inside `job` is swallowed after poisoning nothing — workers
    /// stay alive — but it is *counted*: see
    /// [`worker_panics`](Self::worker_panics) and the `pool_worker_panics`
    /// metric. Use [`run_batch`](Self::run_batch) when the caller needs
    /// results or panic propagation.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let panics = Arc::clone(&self.panics);
        let metrics = self.metrics.get().cloned();
        let queued_at = metrics.as_ref().map(|m| {
            m.queue_depth.inc();
            Instant::now()
        });
        self.sender
            .as_ref()
            .expect("pool sender lives until drop")
            .send(Box::new(move || {
                if let Some(m) = &metrics {
                    m.queue_depth.dec();
                }
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    Self::count_panic(&panics, metrics.as_ref());
                }
                if let (Some(m), Some(queued_at)) = (&metrics, queued_at) {
                    m.tasks.inc();
                    m.task_ms.observe_duration(queued_at.elapsed());
                }
            }))
            .expect("pool workers outlive the sender");
    }

    /// Submit a batch of jobs and block until all have completed, returning
    /// their results **in submission order**.
    ///
    /// This is the scoped-submission primitive: the calling thread parks on
    /// a result channel, so by the time `run_batch` returns every job has
    /// run to completion and any state moved into the closures has been
    /// moved back out through the results.
    ///
    /// # Panics
    /// If any job panicked, re-raises the first (by submission order)
    /// panic payload on the calling thread after all jobs in the batch have
    /// settled — mirroring `std::thread::scope` join semantics.
    pub fn run_batch<T, I, F>(&self, jobs: I) -> Vec<T>
    where
        T: Send + 'static,
        I: IntoIterator<Item = F>,
        F: FnOnce() -> T + Send + 'static,
    {
        let (result_tx, result_rx) = channel::<(usize, std::thread::Result<T>)>();
        let mut submitted = 0usize;
        for (index, job) in jobs.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let panics = Arc::clone(&self.panics);
            let metrics = self.metrics.get().cloned();
            let queued_at = metrics.as_ref().map(|m| {
                m.queue_depth.inc();
                Instant::now()
            });
            self.sender
                .as_ref()
                .expect("pool sender lives until drop")
                .send(Box::new(move || {
                    if let Some(m) = &metrics {
                        m.queue_depth.dec();
                    }
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    if outcome.is_err() {
                        Self::count_panic(&panics, metrics.as_ref());
                    }
                    if let (Some(m), Some(queued_at)) = (&metrics, queued_at) {
                        m.tasks.inc();
                        m.task_ms.observe_duration(queued_at.elapsed());
                    }
                    // The batch submitter may itself have unwound; a closed
                    // result channel is not this worker's problem.
                    let _ = result_tx.send((index, outcome));
                }))
                .expect("pool workers outlive the sender");
            submitted += 1;
        }
        drop(result_tx);
        let mut slots: Vec<Option<std::thread::Result<T>>> = (0..submitted).map(|_| None).collect();
        for _ in 0..submitted {
            let (index, outcome) = result_rx
                .recv()
                .expect("every submitted job reports exactly once");
            slots[index] = Some(outcome);
        }
        let mut results = Vec::with_capacity(submitted);
        let mut first_panic = None;
        for outcome in slots.into_iter().map(|s| s.expect("slot filled")) {
            match outcome {
                Ok(value) => results.push(value),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's `recv` fail, ending its
        // loop after it finishes the job in hand.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool[threads={}]", self.workers.len())
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the queue lock only for the dequeue, never while running a
        // job — jobs of any duration cannot serialize the other workers.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // poisoned only if a worker died mid-recv
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        // Stagger finish times so completion order differs from submission.
        let results = pool.run_batch((0..16).map(|i| {
            move || {
                std::thread::sleep(std::time::Duration::from_millis((16 - i) % 4));
                i * 10
            }
        }));
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = WorkerPool::new(2);
        for round in 0..5 {
            let doubled = pool.run_batch((0..6).map(move |i| move || (round, i * 2)));
            assert_eq!(doubled.len(), 6);
            assert!(doubled.iter().all(|&(r, _)| r == round));
        }
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn ownership_round_trips_through_a_batch() {
        // The engine's pattern: move owned state in, get it back mutated.
        let pool = WorkerPool::new(3);
        let states: Vec<Vec<u64>> = (0..5).map(|i| vec![i]).collect();
        let returned = pool.run_batch(states.into_iter().map(|mut state| {
            move || {
                state.push(state[0] * 100);
                state
            }
        }));
        for (i, state) in returned.into_iter().enumerate() {
            assert_eq!(state, vec![i as u64, i as u64 * 100]);
        }
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                Box::new(|| 1u64) as Box<dyn FnOnce() -> u64 + Send>,
                Box::new(|| panic!("shard exploded")),
            ])
        }));
        assert!(outcome.is_err());
        // Workers survived the panic; the pool still serves batches.
        assert_eq!(
            pool.run_batch((0..4).map(|i| move || i + 1)),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn execute_is_fire_and_forget() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        // A blocking batch behind the queued jobs flushes them (single
        // queue, every worker drains in order).
        pool.run_batch((0..pool.threads()).map(|_| || ()));
        // All fire-and-forget jobs were picked up before the batch ended on
        // the same queue... not strictly ordered per worker; wait briefly.
        for _ in 0..100 {
            if counter.load(Ordering::SeqCst) == 10 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn capacity_hint_clamps() {
        let pool = WorkerPool::with_capacity_hint(2);
        assert!(pool.threads() >= 1 && pool.threads() <= 2);
        assert!(WorkerPool::with_capacity_hint(usize::MAX).threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        WorkerPool::new(0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = WorkerPool::new(1);
        let empty: Vec<fn() -> u8> = vec![];
        assert!(pool.run_batch(empty).is_empty());
    }

    #[test]
    fn debug_shows_thread_count() {
        assert_eq!(format!("{:?}", WorkerPool::new(3)), "WorkerPool[threads=3]");
    }

    #[test]
    fn swallowed_execute_panics_are_counted() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.worker_panics(), 0);
        pool.execute(|| panic!("silent no more"));
        pool.execute(|| ());
        // Flush the queue: a blocking batch runs after queued jobs drain.
        pool.run_batch((0..pool.threads()).map(|_| || ()));
        for _ in 0..200 {
            if pool.worker_panics() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(pool.worker_panics(), 1);
    }

    #[test]
    fn batch_panics_are_counted_and_still_propagate() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                Box::new(|| 0u8) as Box<dyn FnOnce() -> u8 + Send>,
                Box::new(|| panic!("a")),
                Box::new(|| panic!("b")),
            ])
        }));
        assert!(outcome.is_err());
        assert_eq!(pool.worker_panics(), 2);
    }

    #[test]
    fn attached_registry_sees_tasks_latency_and_panics() {
        let registry = MetricsRegistry::new();
        let pool = WorkerPool::new(2);
        // Pre-attachment panics seed the metric so registry and pool agree.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                Box::new(|| panic!("early")) as Box<dyn FnOnce() + Send>
            ])
        }));
        assert!(pool.attach_metrics(&registry));
        assert!(!pool.attach_metrics(&registry), "second attach is refused");
        assert_eq!(registry.counter("pool_worker_panics").get(), 1);

        pool.run_batch((0..8).map(|i| move || i * 2));
        assert_eq!(registry.counter("pool_tasks_total").get(), 8);
        assert_eq!(registry.gauge("pool_queue_depth").get(), 0);
        let latency = registry.latency_histogram("pool_task_ms").snapshot();
        assert_eq!(latency.count, 8);
        assert!(latency.sum >= 0.0);

        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![
                Box::new(|| panic!("later")) as Box<dyn FnOnce() + Send>
            ])
        }));
        assert_eq!(registry.counter("pool_worker_panics").get(), 2);
        assert_eq!(pool.worker_panics(), 2);
    }
}
