//! Longitudinal data model and workload substrates for `longsynth`.
//!
//! The paper's data model (§2.1): a data universe `X`, a known horizon `T`,
//! and `n` individuals each contributing one universe element per round, so
//! the dataset is a sequence of *columns* `D_t = (x_t^1, …, x_t^n)`. For the
//! two query classes studied, `X = {0, 1}`; the fixed-window machinery also
//! extends to categorical `X` (§2, "naturally extend to handle categorical
//! data"), which [`categorical`] implements.
//!
//! # Contents
//!
//! * [`column`](mod@column) — [`column::BitColumn`]: one round of reports, bit-packed.
//! * [`bitstream`] — [`bitstream::BitStream`]: one individual's growing
//!   history.
//! * [`dataset`] — [`dataset::LongitudinalDataset`]: the `n × T` panel, with
//!   a streaming-round iterator matching the continual-release interface.
//! * [`categorical`] — the `|X| = V` generalisation.
//! * [`generators`] — synthetic ground-truth panels: iid Bernoulli, two-state
//!   Markov, the all-ones "extreme" panel of Appendix C.1, and subpopulation
//!   mixtures.
//! * [`sipp`] — the SIPP substrate: a calibrated simulator for the paper's
//!   Survey of Income and Program Participation experiment, and a loader
//!   implementing the paper's §5 pre-processing for the real Census CSV.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod bitstream;
pub mod categorical;
pub mod column;
pub mod csvio;
pub mod dataset;
pub mod generators;
pub mod sipp;

pub use bitstream::BitStream;
pub use categorical::{CategoricalColumn, CategoricalDataset};
pub use column::BitColumn;
pub use dataset::LongitudinalDataset;
