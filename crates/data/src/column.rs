//! [`BitColumn`]: the vector of reports arriving in one round.
//!
//! A column is the unit of the continual-release interface: in round `t`
//! the synthesizer receives `D_t`, one bit per individual. Bits are packed
//! 64-per-word; at the paper's scale (n ≈ 23 000, T = 12) a full panel is a
//! few kilobytes, and packed storage keeps the per-round histogram updates
//! cache-friendly.

use std::fmt;

const WORD_BITS: usize = 64;

/// One round of boolean reports, bit-packed.
#[derive(Clone, PartialEq, Eq)]
pub struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    /// An all-zero column for `len` individuals.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// An all-one column for `len` individuals.
    pub fn ones(len: usize) -> Self {
        let mut col = Self::zeros(len);
        for i in 0..len {
            col.set(i, true);
        }
        col
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut col = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                col.set(i, true);
            }
        }
        col
    }

    /// Build from an iterator of booleans.
    pub fn from_iter_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        Self::from_bools(&bits)
    }

    /// Number of individuals in the column.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column covers zero individuals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit for individual `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "individual index {i} out of range {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set the bit for individual `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "individual index {i} out of range {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of 1-bits (e.g. "households in poverty this month").
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the bits in individual order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl fmt::Debug for BitColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitColumn[len={}, ones={}]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitColumn::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        let o = BitColumn::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(!z.is_empty());
        assert!(BitColumn::zeros(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut col = BitColumn::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            col.set(i, true);
            assert!(col.get(i), "bit {i}");
        }
        assert_eq!(col.count_ones(), 8);
        col.set(64, false);
        assert!(!col.get(64));
        assert_eq!(col.count_ones(), 7);
    }

    #[test]
    fn from_bools_matches_iter() {
        let bits = [true, false, true, true, false];
        let col = BitColumn::from_bools(&bits);
        let back: Vec<bool> = col.iter().collect();
        assert_eq!(back, bits);
        let col2 = BitColumn::from_iter_bits(bits.iter().copied());
        assert_eq!(col, col2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitColumn::zeros(5).get(5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitColumn::zeros(5).set(6, true);
    }

    #[test]
    fn debug_is_compact() {
        let col = BitColumn::from_bools(&[true, true, false]);
        assert_eq!(format!("{col:?}"), "BitColumn[len=3, ones=2]");
    }
}
