//! [`BitColumn`]: the vector of reports arriving in one round.
//!
//! A column is the unit of the continual-release interface: in round `t`
//! the synthesizer receives `D_t`, one bit per individual. Bits are packed
//! 64-per-word; at the paper's scale (n ≈ 23 000, T = 12) a full panel is a
//! few kilobytes, and packed storage keeps the per-round histogram updates
//! cache-friendly.

use std::fmt;

const WORD_BITS: usize = 64;

/// One round of boolean reports, bit-packed.
#[derive(Clone, PartialEq, Eq)]
pub struct BitColumn {
    words: Vec<u64>,
    len: usize,
}

impl BitColumn {
    /// An all-zero column for `len` individuals.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
        }
    }

    /// An all-one column for `len` individuals.
    pub fn ones(len: usize) -> Self {
        let mut col = Self::zeros(len);
        for i in 0..len {
            col.set(i, true);
        }
        col
    }

    /// Build from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut col = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                col.set(i, true);
            }
        }
        col
    }

    /// Build from an iterator of booleans.
    pub fn from_iter_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        Self::from_bools(&bits)
    }

    /// Number of individuals in the column.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the column covers zero individuals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit for individual `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "individual index {i} out of range {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set the bit for individual `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "individual index {i} out of range {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of 1-bits (e.g. "households in poverty this month").
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate over the bits in individual order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// The packed 64-bit words backing this column, least-significant bit
    /// first. Bits at positions `>= len()` in the final word are always
    /// zero (the invariant every mutator maintains).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a column from packed words (the inverse of
    /// [`as_words`](Self::as_words)). Bits beyond `len` in the final word
    /// are masked off, so any word source round-trips safely.
    ///
    /// # Panics
    /// Panics if `words.len() != len.div_ceil(64)`.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(WORD_BITS),
            "word count does not match bit length {len}"
        );
        if let Some(last) = words.last_mut() {
            let tail = len % WORD_BITS;
            if tail != 0 {
                *last &= (1u64 << tail) - 1;
            }
        }
        Self { words, len }
    }

    /// Extract the contiguous bit range `range` as a new column — the
    /// word-level splice behind the engine's cohort split.
    ///
    /// Works 64 bits at a time: an aligned start is a straight word copy;
    /// an unaligned start stitches each output word from two input words.
    /// Only the final word needs bit-level masking.
    ///
    /// # Panics
    /// Panics if `range.end > len()` or `range.start > range.end`.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end, "inverted range");
        assert!(
            range.end <= self.len,
            "range end {} out of range {}",
            range.end,
            self.len
        );
        let len = range.end - range.start;
        let out_words = len.div_ceil(WORD_BITS);
        let start_word = range.start / WORD_BITS;
        let offset = range.start % WORD_BITS;
        let mut words = Vec::with_capacity(out_words);
        if offset == 0 {
            words.extend_from_slice(&self.words[start_word..start_word + out_words]);
        } else {
            for i in 0..out_words {
                let mut w = self.words[start_word + i] >> offset;
                if let Some(&next) = self.words.get(start_word + i + 1) {
                    w |= next << (WORD_BITS - offset);
                }
                words.push(w);
            }
        }
        // Re-establish the zero-tail invariant on the (only) unaligned tail.
        Self::from_words(words, len)
    }

    /// Append all of `other`'s bits after this column's — the word-level
    /// concatenation behind the engine's release merge.
    ///
    /// When this column ends on a word boundary the other column's words
    /// copy straight in; otherwise each incoming word is split across two
    /// output words. `other`'s zero tail guarantees no stray bits.
    pub fn extend_bits(&mut self, other: &Self) {
        let offset = self.len % WORD_BITS;
        if offset == 0 {
            self.words.extend_from_slice(&other.words);
        } else if other.len > 0 {
            for &w in &other.words {
                *self.words.last_mut().expect("offset != 0 implies a word") |= w << offset;
                self.words.push(w >> (WORD_BITS - offset));
            }
        }
        self.len += other.len;
        self.words.truncate(self.len.div_ceil(WORD_BITS));
    }

    /// Concatenate columns in order (word-level).
    pub fn concat<'a, I: IntoIterator<Item = &'a Self>>(parts: I) -> Self {
        let mut out = Self::zeros(0);
        for part in parts {
            out.extend_bits(part);
        }
        out
    }

    /// Joint pattern histogram over `k` equal-length columns: bin
    /// `counts[code]` is the number of individuals whose bits across the
    /// columns spell `code`, with `cols[0]` contributing the **most**
    /// significant bit (matching a front-to-back fold
    /// `code = (code << 1) | bit`).
    ///
    /// For `k ≤ 6` (≤ 64 bins) this runs word-sliced: per 64 individuals it
    /// does `2^k` AND/NOT combines plus popcounts instead of `64·k` bit
    /// extractions, which is what makes the fixed-window synthesizer's
    /// per-round aggregation memory-bound rather than shift-bound. Wider
    /// windows fall back to the per-individual loop, where the scalar cost
    /// (`k` per row) is already below the sliced cost (`2^k/64` per row).
    ///
    /// # Panics
    /// Panics if `cols` is empty, `k > 16` (65 536 bins — far past any
    /// window this system releases), or the columns disagree on length.
    pub fn pattern_counts(cols: &[&Self]) -> Vec<u64> {
        let k = cols.len();
        assert!(k >= 1, "pattern_counts over zero columns");
        assert!(k <= 16, "pattern width {k} out of range (max 16)");
        let n = cols[0].len();
        for (j, col) in cols.iter().enumerate() {
            assert_eq!(col.len(), n, "column {j} length mismatch");
        }
        let bins = 1usize << k;
        let mut counts = vec![0u64; bins];
        if n == 0 {
            return counts;
        }
        if bins <= WORD_BITS {
            let words: Vec<&[u64]> = cols.iter().map(|c| c.as_words()).collect();
            let n_words = n.div_ceil(WORD_BITS);
            let tail = n % WORD_BITS;
            for w in 0..n_words {
                // The complement of a final partial word raises the bits
                // beyond `len` (the zero-tail invariant covers only the
                // uncomplemented words), so mask the lanes that exist.
                let valid: u64 = if w + 1 == n_words && tail != 0 {
                    (1u64 << tail) - 1
                } else {
                    u64::MAX
                };
                for (code, count) in counts.iter_mut().enumerate() {
                    let mut m = valid;
                    for (j, col_words) in words.iter().enumerate() {
                        let cw = col_words[w];
                        m &= if (code >> (k - 1 - j)) & 1 == 1 {
                            cw
                        } else {
                            !cw
                        };
                    }
                    *count += u64::from(m.count_ones());
                }
            }
        } else {
            for i in 0..n {
                let mut code = 0usize;
                for col in cols {
                    code = (code << 1) | usize::from(col.get(i));
                }
                counts[code] += 1;
            }
        }
        counts
    }
}

impl fmt::Debug for BitColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitColumn[len={}, ones={}]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitColumn::zeros(100);
        assert_eq!(z.len(), 100);
        assert_eq!(z.count_ones(), 0);
        let o = BitColumn::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(!z.is_empty());
        assert!(BitColumn::zeros(0).is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mut col = BitColumn::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            col.set(i, true);
            assert!(col.get(i), "bit {i}");
        }
        assert_eq!(col.count_ones(), 8);
        col.set(64, false);
        assert!(!col.get(64));
        assert_eq!(col.count_ones(), 7);
    }

    #[test]
    fn from_bools_matches_iter() {
        let bits = [true, false, true, true, false];
        let col = BitColumn::from_bools(&bits);
        let back: Vec<bool> = col.iter().collect();
        assert_eq!(back, bits);
        let col2 = BitColumn::from_iter_bits(bits.iter().copied());
        assert_eq!(col, col2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitColumn::zeros(5).get(5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitColumn::zeros(5).set(6, true);
    }

    #[test]
    fn debug_is_compact() {
        let col = BitColumn::from_bools(&[true, true, false]);
        assert_eq!(format!("{col:?}"), "BitColumn[len=3, ones=2]");
    }

    fn reference_slice(col: &BitColumn, range: std::ops::Range<usize>) -> BitColumn {
        BitColumn::from_iter_bits(range.map(|i| col.get(i)))
    }

    #[test]
    fn slice_matches_bit_reference_across_boundaries() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 7) % 3 == 0).collect();
        let col = BitColumn::from_bools(&bits);
        for range in [
            0..0,
            0..64,
            0..65,
            1..64,
            63..129,
            64..128,
            5..200,
            199..200,
        ] {
            assert_eq!(
                col.slice(range.clone()),
                reference_slice(&col, range.clone()),
                "range {range:?}"
            );
        }
    }

    #[test]
    fn extend_bits_matches_bit_reference() {
        for (a_len, b_len) in [(0, 70), (64, 64), (63, 66), (1, 1), (65, 0), (37, 91)] {
            let a_bits: Vec<bool> = (0..a_len).map(|i| i % 2 == 0).collect();
            let b_bits: Vec<bool> = (0..b_len).map(|i| i % 5 != 0).collect();
            let mut joined = BitColumn::from_bools(&a_bits);
            joined.extend_bits(&BitColumn::from_bools(&b_bits));
            let expected: Vec<bool> = a_bits.iter().chain(&b_bits).copied().collect();
            assert_eq!(joined, BitColumn::from_bools(&expected), "{a_len}+{b_len}");
        }
    }

    #[test]
    fn concat_joins_in_order() {
        let parts = [
            BitColumn::from_bools(&[true, false, true]),
            BitColumn::zeros(0),
            BitColumn::ones(70),
        ];
        let joined = BitColumn::concat(parts.iter());
        assert_eq!(joined.len(), 73);
        assert_eq!(joined.count_ones(), 72);
        assert!(!joined.get(1));
        assert!(joined.get(72));
    }

    #[test]
    fn words_roundtrip_and_mask_tail() {
        let col = BitColumn::from_bools(&(0..67).map(|i| i % 2 == 1).collect::<Vec<_>>());
        let back = BitColumn::from_words(col.as_words().to_vec(), col.len());
        assert_eq!(back, col);
        // Dirty tail bits beyond len are masked off on construction.
        let dirty = BitColumn::from_words(vec![u64::MAX], 3);
        assert_eq!(dirty.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn from_words_rejects_wrong_word_count() {
        BitColumn::from_words(vec![0, 0], 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_overrun() {
        BitColumn::zeros(10).slice(5..11);
    }

    fn reference_pattern_counts(cols: &[&BitColumn]) -> Vec<u64> {
        let k = cols.len();
        let mut counts = vec![0u64; 1 << k];
        for i in 0..cols[0].len() {
            let mut code = 0usize;
            for col in cols {
                code = (code << 1) | usize::from(col.get(i));
            }
            counts[code] += 1;
        }
        counts
    }

    fn pseudo_column(len: usize, salt: u64) -> BitColumn {
        // Deterministic mixed bits, dense enough to hit every pattern.
        BitColumn::from_iter_bits((0..len).map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
            (x >> 17) & 1 == 1
        }))
    }

    #[test]
    fn pattern_counts_matches_bit_reference() {
        // Lengths straddling word boundaries; widths on both sides of the
        // sliced/scalar split (2^6 = 64 bins sliced, 2^7 falls back).
        for len in [1usize, 63, 64, 65, 127, 128, 200] {
            for k in [1usize, 2, 3, 6, 7] {
                let cols: Vec<BitColumn> =
                    (0..k).map(|j| pseudo_column(len, j as u64 + 1)).collect();
                let refs: Vec<&BitColumn> = cols.iter().collect();
                let counts = BitColumn::pattern_counts(&refs);
                assert_eq!(counts, reference_pattern_counts(&refs), "len={len} k={k}");
                assert_eq!(counts.iter().sum::<u64>(), len as u64, "len={len} k={k}");
            }
        }
    }

    #[test]
    fn pattern_counts_empty_columns_and_msb_order() {
        let zero: Vec<&BitColumn> = Vec::new();
        let empty = BitColumn::zeros(0);
        assert_eq!(BitColumn::pattern_counts(&[&empty, &empty]), vec![0; 4]);
        assert!(std::panic::catch_unwind(|| BitColumn::pattern_counts(&zero)).is_err());
        // cols[0] is the high bit: (1, 0) must land in bin 0b10.
        let hi = BitColumn::ones(3);
        let lo = BitColumn::zeros(3);
        assert_eq!(BitColumn::pattern_counts(&[&hi, &lo]), vec![0, 0, 3, 0]);
        assert_eq!(BitColumn::pattern_counts(&[&lo, &hi]), vec![0, 3, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pattern_counts_rejects_ragged_columns() {
        let a = BitColumn::zeros(5);
        let b = BitColumn::zeros(6);
        BitColumn::pattern_counts(&[&a, &b]);
    }
}
