//! Ground-truth panel generators for experiments and tests.
//!
//! These produce the *non-private* datasets the paper's evaluation feeds to
//! the synthesizers:
//!
//! * [`all_ones`] — the "rather extreme simulated data" of Appendix C.1
//!   (every update is 1; used for Figures 3–4).
//! * [`iid_bernoulli`] — independent bits, the simplest stochastic panel.
//! * [`two_state_markov`] — persistent binary states (poverty, employment);
//!   the SIPP simulator in [`crate::sipp`] is a calibrated instance.
//! * [`subpopulation_mixture`] — individuals drawn from a small number of
//!   per-round Bernoulli profiles, the evolving-data model of Joseph, Roth,
//!   Ullman & Waggoner (referenced in the paper's §1.1).
//! * [`categorical_markov`] — a `V`-state Markov panel for the categorical
//!   extension.

use crate::categorical::{CategoricalColumn, CategoricalDataset};
use crate::column::BitColumn;
use crate::dataset::LongitudinalDataset;
use rand::Rng;

/// The Appendix C.1 extreme panel: all `n × T` updates are 1.
pub fn all_ones(individuals: usize, horizon: usize) -> LongitudinalDataset {
    let columns = (0..horizon).map(|_| BitColumn::ones(individuals)).collect();
    LongitudinalDataset::from_columns(columns).expect("uniform columns are never ragged")
}

/// The all-zeros panel (useful for edge-case tests).
pub fn all_zeros(individuals: usize, horizon: usize) -> LongitudinalDataset {
    let columns = (0..horizon)
        .map(|_| BitColumn::zeros(individuals))
        .collect();
    LongitudinalDataset::from_columns(columns).expect("uniform columns are never ragged")
}

/// Independent `Bernoulli(p)` bits for every individual and round.
pub fn iid_bernoulli<R: Rng + ?Sized>(
    rng: &mut R,
    individuals: usize,
    horizon: usize,
    p: f64,
) -> LongitudinalDataset {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    let columns = (0..horizon)
        .map(|_| BitColumn::from_iter_bits((0..individuals).map(|_| rng.gen_bool(p))))
        .collect();
    LongitudinalDataset::from_columns(columns).expect("generated columns are never ragged")
}

/// Parameters of a two-state Markov panel.
///
/// State 1 ("in poverty" / "unemployed") persists with probability
/// `stay_one`; state 0 transitions into state 1 with probability
/// `enter_one`; the initial column is `Bernoulli(initial_one)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovParams {
    /// `Pr[x¹ = 1]`.
    pub initial_one: f64,
    /// `Pr[xᵗ⁺¹ = 1 | xᵗ = 1]`.
    pub stay_one: f64,
    /// `Pr[xᵗ⁺¹ = 1 | xᵗ = 0]`.
    pub enter_one: f64,
}

impl MarkovParams {
    /// Validate all three probabilities lie in `[0, 1]`.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("initial_one", self.initial_one),
            ("stay_one", self.stay_one),
            ("enter_one", self.enter_one),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} outside [0, 1]"));
            }
        }
        Ok(())
    }

    /// The stationary probability of state 1:
    /// `enter / (enter + 1 − stay)` (when the chain is ergodic).
    pub fn stationary_one(&self) -> f64 {
        let leave = 1.0 - self.stay_one;
        if self.enter_one + leave == 0.0 {
            self.initial_one
        } else {
            self.enter_one / (self.enter_one + leave)
        }
    }
}

/// A two-state Markov panel: each individual evolves independently.
pub fn two_state_markov<R: Rng + ?Sized>(
    rng: &mut R,
    individuals: usize,
    horizon: usize,
    params: MarkovParams,
) -> LongitudinalDataset {
    params.validate().expect("invalid Markov parameters");
    let mut state: Vec<bool> = (0..individuals)
        .map(|_| rng.gen_bool(params.initial_one))
        .collect();
    let mut columns = Vec::with_capacity(horizon);
    for t in 0..horizon {
        if t > 0 {
            for s in state.iter_mut() {
                let p = if *s {
                    params.stay_one
                } else {
                    params.enter_one
                };
                *s = rng.gen_bool(p);
            }
        }
        columns.push(BitColumn::from_bools(&state));
    }
    LongitudinalDataset::from_columns(columns).expect("generated columns are never ragged")
}

/// A mixture panel: individual `i` belongs to subpopulation `i mod
/// profiles.len()`, and in round `t` draws an independent
/// `Bernoulli(profiles[g][t])` bit — the evolving-data model of Joseph et
/// al. (§1.1 of the paper).
///
/// # Panics
/// Panics if profiles are empty, ragged, or contain invalid probabilities.
pub fn subpopulation_mixture<R: Rng + ?Sized>(
    rng: &mut R,
    individuals: usize,
    profiles: &[Vec<f64>],
) -> LongitudinalDataset {
    assert!(!profiles.is_empty(), "need at least one subpopulation");
    let horizon = profiles[0].len();
    for profile in profiles {
        assert_eq!(profile.len(), horizon, "ragged subpopulation profiles");
        for &p in profile {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        }
    }
    let columns = (0..horizon)
        .map(|t| {
            BitColumn::from_iter_bits(
                (0..individuals).map(|i| rng.gen_bool(profiles[i % profiles.len()][t])),
            )
        })
        .collect();
    LongitudinalDataset::from_columns(columns).expect("generated columns are never ragged")
}

/// A `V`-state Markov panel for the categorical extension: with probability
/// `stay` an individual repeats last round's category, otherwise it draws a
/// fresh uniform category.
pub fn categorical_markov<R: Rng + ?Sized>(
    rng: &mut R,
    individuals: usize,
    horizon: usize,
    categories: u8,
    stay: f64,
) -> CategoricalDataset {
    assert!(categories >= 1);
    assert!((0.0..=1.0).contains(&stay));
    let mut state: Vec<u8> = (0..individuals)
        .map(|_| rng.gen_range(0..categories))
        .collect();
    let mut dataset = CategoricalDataset::empty(individuals, categories);
    for t in 0..horizon {
        if t > 0 {
            for s in state.iter_mut() {
                if !rng.gen_bool(stay) {
                    *s = rng.gen_range(0..categories);
                }
            }
        }
        dataset
            .push_column(
                CategoricalColumn::new(state.clone(), categories)
                    .expect("states drawn in range by construction"),
            )
            .expect("generated columns are never ragged");
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;

    #[test]
    fn all_ones_is_extreme() {
        let d = all_ones(100, 12);
        assert_eq!(d.individuals(), 100);
        assert_eq!(d.rounds(), 12);
        for (_, col) in d.stream() {
            assert_eq!(col.count_ones(), 100);
        }
    }

    #[test]
    fn all_zeros_is_empty_signal() {
        let d = all_zeros(50, 6);
        for (_, col) in d.stream() {
            assert_eq!(col.count_ones(), 0);
        }
    }

    #[test]
    fn iid_bernoulli_rate_matches_p() {
        let mut rng = rng_from_seed(1);
        let d = iid_bernoulli(&mut rng, 20_000, 4, 0.3);
        for (t, col) in d.stream() {
            let rate = col.count_ones() as f64 / 20_000.0;
            assert!((rate - 0.3).abs() < 0.02, "round {t}: rate {rate}");
        }
    }

    #[test]
    fn markov_marginals_track_transition_structure() {
        let mut rng = rng_from_seed(2);
        let params = MarkovParams {
            initial_one: 0.5,
            stay_one: 0.9,
            enter_one: 0.05,
        };
        // Stationary rate = 0.05 / (0.05 + 0.1) = 1/3.
        assert!((params.stationary_one() - 1.0 / 3.0).abs() < 1e-12);
        let d = two_state_markov(&mut rng, 30_000, 30, params);
        // Initial rate ~0.5, decaying toward 1/3 over rounds.
        let first = d.column(0).count_ones() as f64 / 30_000.0;
        let last = d.column(29).count_ones() as f64 / 30_000.0;
        assert!((first - 0.5).abs() < 0.02, "initial rate {first}");
        assert!((last - 1.0 / 3.0).abs() < 0.03, "late rate {last}");
    }

    #[test]
    fn markov_persistence_is_visible() {
        let mut rng = rng_from_seed(3);
        let params = MarkovParams {
            initial_one: 0.2,
            stay_one: 0.95,
            enter_one: 0.01,
        };
        let d = two_state_markov(&mut rng, 10_000, 2, params);
        // Among round-0 ones, ~95% remain one at round 1.
        let mut stayed = 0usize;
        let mut ones = 0usize;
        for i in 0..10_000 {
            if d.value(i, 0) {
                ones += 1;
                if d.value(i, 1) {
                    stayed += 1;
                }
            }
        }
        let rate = stayed as f64 / ones as f64;
        assert!((rate - 0.95).abs() < 0.03, "persistence {rate}");
    }

    #[test]
    fn markov_params_validation() {
        assert!(MarkovParams {
            initial_one: 1.1,
            stay_one: 0.5,
            enter_one: 0.5
        }
        .validate()
        .is_err());
        assert!(MarkovParams {
            initial_one: 0.5,
            stay_one: 0.5,
            enter_one: 0.5
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn mixture_tracks_profiles() {
        let mut rng = rng_from_seed(4);
        let profiles = vec![vec![0.9, 0.1], vec![0.1, 0.9]];
        let d = subpopulation_mixture(&mut rng, 20_000, &profiles);
        // Round 0: half at 0.9, half at 0.1 → overall 0.5.
        let rate0 = d.column(0).count_ones() as f64 / 20_000.0;
        assert!((rate0 - 0.5).abs() < 0.02, "rate {rate0}");
        // Even individuals (group 0) are mostly 1 at round 0.
        let even_ones = (0..20_000).step_by(2).filter(|&i| d.value(i, 0)).count() as f64 / 10_000.0;
        assert!((even_ones - 0.9).abs() < 0.02, "group-0 rate {even_ones}");
    }

    #[test]
    fn categorical_markov_shape_and_stickiness() {
        let mut rng = rng_from_seed(5);
        let d = categorical_markov(&mut rng, 5_000, 3, 4, 1.0);
        // stay = 1.0: every individual keeps its initial category.
        for i in 0..5_000 {
            let c = d.value(i, 0);
            assert_eq!(d.value(i, 1), c);
            assert_eq!(d.value(i, 2), c);
        }
        assert_eq!(d.categories(), 4);
        assert_eq!(d.rounds(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn iid_rejects_bad_probability() {
        let mut rng = rng_from_seed(6);
        iid_bernoulli(&mut rng, 10, 2, 1.5);
    }
}
