//! Plain CSV panel I/O: one row per individual, one 0/1 column per round.
//!
//! This is the interchange format of the `longsynth-cli` tool: anything
//! that can produce a rectangular 0/1 CSV (R, pandas, Stata exports) can be
//! synthesized, and the released synthetic panel round-trips through the
//! same format. An optional header row is detected and skipped; an
//! optional leading `id` column (any non-0/1 first field) is detected and
//! dropped.

use crate::bitstream::BitStream;
use crate::dataset::LongitudinalDataset;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from panel CSV parsing.
#[derive(Debug)]
pub enum PanelCsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A cell was neither `0` nor `1`.
    BadCell {
        /// 1-based line number.
        line: usize,
        /// 1-based column number.
        column: usize,
        /// Offending text.
        value: String,
    },
    /// Rows have differing numbers of rounds.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Expected round count.
        expected: usize,
        /// Found round count.
        actual: usize,
    },
    /// The file contained no data rows.
    Empty,
}

impl fmt::Display for PanelCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanelCsvError::Io(e) => write!(f, "I/O error reading panel CSV: {e}"),
            PanelCsvError::BadCell {
                line,
                column,
                value,
            } => write!(
                f,
                "line {line}, column {column}: expected 0 or 1, found {value:?}"
            ),
            PanelCsvError::RaggedRow {
                line,
                expected,
                actual,
            } => write!(
                f,
                "line {line}: {actual} rounds, expected {expected} (ragged panel)"
            ),
            PanelCsvError::Empty => write!(f, "panel CSV contained no data rows"),
        }
    }
}

impl std::error::Error for PanelCsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PanelCsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PanelCsvError {
    fn from(e: std::io::Error) -> Self {
        PanelCsvError::Io(e)
    }
}

fn parse_bit(field: &str) -> Option<bool> {
    match field.trim() {
        "0" => Some(false),
        "1" => Some(true),
        _ => None,
    }
}

/// Read a 0/1 panel CSV. Detects and skips a header row (any row whose
/// data cells are not all 0/1) and a leading id column (a first field that
/// is not 0/1 on every row).
pub fn read_panel_csv<R: BufRead>(reader: R) -> Result<LongitudinalDataset, PanelCsvError> {
    let mut raw_rows: Vec<(usize, Vec<String>)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        raw_rows.push((
            idx + 1,
            trimmed.split(',').map(|f| f.trim().to_string()).collect(),
        ));
    }
    // Header detection: first row with any non-bit cell beyond what an id
    // column explains.
    if let Some((_, first)) = raw_rows.first() {
        let non_bits = first.iter().filter(|f| parse_bit(f).is_none()).count();
        if non_bits > 1 || (non_bits == 1 && parse_bit(&first[0]).is_some()) {
            raw_rows.remove(0);
        }
    }
    if raw_rows.is_empty() {
        return Err(PanelCsvError::Empty);
    }
    // Id-column detection: first field non-bit on every remaining row.
    let drop_first = raw_rows
        .iter()
        .all(|(_, fields)| !fields.is_empty() && parse_bit(&fields[0]).is_none());

    let mut rows: Vec<BitStream> = Vec::with_capacity(raw_rows.len());
    let mut expected = None;
    for (line, fields) in &raw_rows {
        let data = if drop_first {
            &fields[1..]
        } else {
            &fields[..]
        };
        match expected {
            None => expected = Some(data.len()),
            Some(e) if e != data.len() => {
                return Err(PanelCsvError::RaggedRow {
                    line: *line,
                    expected: e,
                    actual: data.len(),
                })
            }
            _ => {}
        }
        let mut stream = BitStream::with_capacity(data.len());
        for (col, field) in data.iter().enumerate() {
            match parse_bit(field) {
                Some(bit) => stream.push(bit),
                None => {
                    return Err(PanelCsvError::BadCell {
                        line: *line,
                        column: col + 1 + usize::from(drop_first),
                        value: field.clone(),
                    })
                }
            }
        }
        rows.push(stream);
    }
    LongitudinalDataset::from_rows(&rows).map_err(|_| PanelCsvError::Empty)
}

/// Write a panel as 0/1 CSV with a `round_1..round_T` header. When
/// `flags` is provided (one per individual, e.g. padding labels), a
/// trailing `padding` column is emitted.
pub fn write_panel_csv<W: Write>(
    mut writer: W,
    rows: impl Iterator<Item = BitStream>,
    rounds: usize,
    flags: Option<&[bool]>,
) -> std::io::Result<()> {
    let mut header: Vec<String> = (1..=rounds).map(|t| format!("round_{t}")).collect();
    if flags.is_some() {
        header.push("padding".to_string());
    }
    writeln!(writer, "{}", header.join(","))?;
    for (i, row) in rows.enumerate() {
        debug_assert_eq!(row.len(), rounds);
        let mut cells: Vec<String> = row.iter().map(|b| u8::from(b).to_string()).collect();
        if let Some(flags) = flags {
            cells.push(u8::from(flags[i]).to_string());
        }
        writeln!(writer, "{}", cells.join(","))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn plain_panel_roundtrip() {
        let csv = "1,0,1\n0,0,0\n1,1,1\n";
        let panel = read_panel_csv(Cursor::new(csv)).unwrap();
        assert_eq!(panel.individuals(), 3);
        assert_eq!(panel.rounds(), 3);
        assert!(panel.value(0, 0));
        assert!(!panel.value(1, 2));

        let mut out = Vec::new();
        write_panel_csv(&mut out, (0..3).map(|i| panel.row(i, 2)), 3, None).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("round_1,round_2,round_3\n"));
        let reparsed = read_panel_csv(Cursor::new(text)).unwrap();
        assert_eq!(reparsed, panel);
    }

    #[test]
    fn header_and_id_column_detected() {
        let csv = "id,month1,month2\nhh1,1,0\nhh2,0,1\n";
        let panel = read_panel_csv(Cursor::new(csv)).unwrap();
        assert_eq!(panel.individuals(), 2);
        assert_eq!(panel.rounds(), 2);
        assert!(panel.value(0, 0));
        assert!(panel.value(1, 1));
    }

    #[test]
    fn header_without_id_column() {
        let csv = "m1,m2\n1,0\n0,1\n";
        let panel = read_panel_csv(Cursor::new(csv)).unwrap();
        assert_eq!(panel.individuals(), 2);
        assert_eq!(panel.rounds(), 2);
    }

    #[test]
    fn bad_cell_reported_with_position() {
        let csv = "1,0\n1,2\n";
        match read_panel_csv(Cursor::new(csv)) {
            Err(PanelCsvError::BadCell {
                line,
                column,
                value,
            }) => {
                assert_eq!((line, column), (2, 2));
                assert_eq!(value, "2");
            }
            other => panic!("expected BadCell, got {other:?}"),
        }
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "1,0\n1\n";
        assert!(matches!(
            read_panel_csv(Cursor::new(csv)),
            Err(PanelCsvError::RaggedRow { line: 2, .. })
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(matches!(
            read_panel_csv(Cursor::new("")),
            Err(PanelCsvError::Empty)
        ));
        assert!(matches!(
            read_panel_csv(Cursor::new("id,m1\n")),
            Err(PanelCsvError::Empty)
        ));
    }

    #[test]
    fn padding_flag_column() {
        let rows = vec![
            [true, false].iter().copied().collect::<BitStream>(),
            [false, true].iter().copied().collect::<BitStream>(),
        ];
        let mut out = Vec::new();
        write_panel_csv(&mut out, rows.into_iter(), 2, Some(&[true, false])).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("padding"));
        assert!(text.contains("1,0,1\n"));
        assert!(text.contains("0,1,0\n"));
    }
}
