//! [`LongitudinalDataset`]: the `n × T` boolean panel.
//!
//! Storage is column-major ([`BitColumn`] per round) because that is the
//! order in which data *arrives* in the continual-release model and the
//! order in which the synthesizers consume it. Row (individual) views are
//! provided for ground-truth query evaluation.

use crate::bitstream::BitStream;
use crate::column::BitColumn;
use std::fmt;

/// An `n`-individual, `T`-round boolean panel (`X = {0,1}` in the paper).
#[derive(Clone, PartialEq, Eq)]
pub struct LongitudinalDataset {
    individuals: usize,
    columns: Vec<BitColumn>,
}

impl LongitudinalDataset {
    /// Create an empty panel (zero rounds) over `individuals` people.
    pub fn empty(individuals: usize) -> Self {
        Self {
            individuals,
            columns: Vec::new(),
        }
    }

    /// Build a panel from per-round columns.
    ///
    /// # Errors
    /// Returns an error if the columns disagree on the number of
    /// individuals.
    pub fn from_columns(columns: Vec<BitColumn>) -> Result<Self, DatasetError> {
        let individuals = columns.first().map_or(0, BitColumn::len);
        for (t, col) in columns.iter().enumerate() {
            if col.len() != individuals {
                return Err(DatasetError::RaggedColumns {
                    round: t,
                    expected: individuals,
                    actual: col.len(),
                });
            }
        }
        Ok(Self {
            individuals,
            columns,
        })
    }

    /// Build a panel from per-individual rows (each row one history).
    ///
    /// # Errors
    /// Returns an error if rows have unequal lengths.
    pub fn from_rows(rows: &[BitStream]) -> Result<Self, DatasetError> {
        let horizon = rows.first().map_or(0, BitStream::len);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != horizon {
                return Err(DatasetError::RaggedRows {
                    individual: i,
                    expected: horizon,
                    actual: row.len(),
                });
            }
        }
        let columns = (0..horizon)
            .map(|t| BitColumn::from_iter_bits(rows.iter().map(|r| r.get(t))))
            .collect();
        Ok(Self {
            individuals: rows.len(),
            columns,
        })
    }

    /// Append one round of reports.
    ///
    /// # Errors
    /// Returns an error if `column` covers a different number of
    /// individuals.
    pub fn push_column(&mut self, column: BitColumn) -> Result<(), DatasetError> {
        if column.len() != self.individuals {
            return Err(DatasetError::RaggedColumns {
                round: self.columns.len(),
                expected: self.individuals,
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Number of individuals `n`.
    #[inline]
    pub fn individuals(&self) -> usize {
        self.individuals
    }

    /// Number of recorded rounds (the current `t`; equals `T` for a full
    /// panel).
    #[inline]
    pub fn rounds(&self) -> usize {
        self.columns.len()
    }

    /// The reports of round `t` (0-based).
    ///
    /// # Panics
    /// Panics if `t >= rounds()`.
    #[inline]
    pub fn column(&self, t: usize) -> &BitColumn {
        &self.columns[t]
    }

    /// Iterate over rounds in arrival order — the continual-release
    /// interface: `for (t, d_t) in data.stream() { synthesizer.step(d_t) }`.
    pub fn stream(&self) -> impl Iterator<Item = (usize, &BitColumn)> + '_ {
        self.columns.iter().enumerate()
    }

    /// The bit of individual `i` in round `t`.
    #[inline]
    pub fn value(&self, i: usize, t: usize) -> bool {
        self.columns[t].get(i)
    }

    /// Reconstruct individual `i`'s history up to (and including) round
    /// `upto` (0-based; pass `rounds()-1` for the full history).
    pub fn row(&self, i: usize, upto: usize) -> BitStream {
        assert!(upto < self.rounds(), "round {upto} out of range");
        (0..=upto).map(|t| self.value(i, t)).collect()
    }

    /// The `k`-wide suffix pattern of individual `i` at round `t`
    /// (`(x_{t-k+1}, …, x_t)` as an integer, oldest bit most significant).
    pub fn suffix_pattern(&self, i: usize, t: usize, k: usize) -> u32 {
        assert!((1..=32).contains(&k), "pattern width {k} unsupported");
        assert!(t < self.rounds(), "round {t} out of range");
        assert!(t + 1 >= k, "window underflows");
        let mut pattern = 0u32;
        for round in (t + 1 - k)..=t {
            pattern = (pattern << 1) | u32::from(self.value(i, round));
        }
        pattern
    }

    /// Hamming weight of individual `i`'s history through round `t`
    /// (inclusive).
    pub fn prefix_weight(&self, i: usize, t: usize) -> usize {
        assert!(t < self.rounds(), "round {t} out of range");
        (0..=t).filter(|&r| self.value(i, r)).count()
    }

    /// Truncate to the first `rounds` rounds (used to replay prefixes).
    pub fn truncated(&self, rounds: usize) -> Self {
        assert!(rounds <= self.rounds());
        Self {
            individuals: self.individuals,
            columns: self.columns[..rounds].to_vec(),
        }
    }
}

impl fmt::Debug for LongitudinalDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LongitudinalDataset[n={}, T={}]",
            self.individuals,
            self.rounds()
        )
    }
}

/// Errors from panel construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A column's length disagreed with the panel's individual count.
    RaggedColumns {
        /// Round index of the offending column.
        round: usize,
        /// Expected individual count.
        expected: usize,
        /// Actual column length.
        actual: usize,
    },
    /// A row's length disagreed with the panel's horizon.
    RaggedRows {
        /// Individual index of the offending row.
        individual: usize,
        /// Expected history length.
        expected: usize,
        /// Actual history length.
        actual: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedColumns {
                round,
                expected,
                actual,
            } => write!(
                f,
                "column at round {round} has {actual} individuals, expected {expected}"
            ),
            DatasetError::RaggedRows {
                individual,
                expected,
                actual,
            } => write!(
                f,
                "row for individual {individual} has {actual} rounds, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-person, 4-round panel used throughout:
    ///   p0: 1 0 1 1
    ///   p1: 0 0 1 0
    ///   p2: 1 1 1 1
    fn sample() -> LongitudinalDataset {
        let cols = vec![
            BitColumn::from_bools(&[true, false, true]),
            BitColumn::from_bools(&[false, false, true]),
            BitColumn::from_bools(&[true, true, true]),
            BitColumn::from_bools(&[true, false, true]),
        ];
        LongitudinalDataset::from_columns(cols).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let d = sample();
        assert_eq!(d.individuals(), 3);
        assert_eq!(d.rounds(), 4);
        assert_eq!(format!("{d:?}"), "LongitudinalDataset[n=3, T=4]");
    }

    #[test]
    fn ragged_columns_rejected() {
        let cols = vec![BitColumn::zeros(3), BitColumn::zeros(4)];
        assert!(matches!(
            LongitudinalDataset::from_columns(cols),
            Err(DatasetError::RaggedColumns { round: 1, .. })
        ));
    }

    #[test]
    fn rows_roundtrip_through_columns() {
        let d = sample();
        let rows: Vec<BitStream> = (0..3).map(|i| d.row(i, 3)).collect();
        let d2 = LongitudinalDataset::from_rows(&rows).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![
            [true, false].into_iter().collect::<BitStream>(),
            [true].into_iter().collect::<BitStream>(),
        ];
        assert!(matches!(
            LongitudinalDataset::from_rows(&rows),
            Err(DatasetError::RaggedRows { individual: 1, .. })
        ));
    }

    #[test]
    fn stream_yields_rounds_in_order() {
        let d = sample();
        let ones: Vec<usize> = d.stream().map(|(_, col)| col.count_ones()).collect();
        assert_eq!(ones, vec![2, 1, 3, 2]);
        let indices: Vec<usize> = d.stream().map(|(t, _)| t).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn suffix_patterns_match_rows() {
        let d = sample();
        // p0 history 1011; window at t=3, k=3 → (0,1,1) = 0b011.
        assert_eq!(d.suffix_pattern(0, 3, 3), 0b011);
        // p2 history 1111; any width-3 window = 0b111.
        assert_eq!(d.suffix_pattern(2, 2, 3), 0b111);
        assert_eq!(d.suffix_pattern(2, 3, 3), 0b111);
        // Consistency with BitStream::suffix_pattern.
        for i in 0..3 {
            let row = d.row(i, 3);
            for t in 2..4 {
                assert_eq!(d.suffix_pattern(i, t, 3), row.suffix_pattern(t, 3));
            }
        }
    }

    #[test]
    fn prefix_weights() {
        let d = sample();
        assert_eq!(d.prefix_weight(0, 3), 3);
        assert_eq!(d.prefix_weight(1, 3), 1);
        assert_eq!(d.prefix_weight(2, 1), 2);
    }

    #[test]
    fn push_column_grows_and_validates() {
        let mut d = LongitudinalDataset::empty(2);
        d.push_column(BitColumn::from_bools(&[true, false]))
            .unwrap();
        assert_eq!(d.rounds(), 1);
        assert!(d.push_column(BitColumn::zeros(3)).is_err());
    }

    #[test]
    fn truncated_prefix() {
        let d = sample();
        let p = d.truncated(2);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.column(1), d.column(1));
    }
}
