//! [`BitStream`]: one individual's history, growing one bit per round.
//!
//! This is the object the model's consistency requirement is about: once a
//! bit has been appended (released), it never changes. The synthesizers in
//! `longsynth` hold one `BitStream` per synthetic individual and only ever
//! call [`BitStream::push`].

use std::fmt;

const WORD_BITS: usize = 64;

/// A growable, immutable-prefix bit history.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitStream {
    words: Vec<u64>,
    len: usize,
    /// Running Hamming weight, maintained incrementally because the
    /// cumulative synthesizer classifies every record by weight every round.
    weight: usize,
}

impl BitStream {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty history with capacity for `horizon` bits.
    pub fn with_capacity(horizon: usize) -> Self {
        Self {
            words: Vec::with_capacity(horizon.div_ceil(WORD_BITS)),
            len: 0,
            weight: 0,
        }
    }

    /// Number of rounds recorded so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rounds have been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append the next round's bit. This is the *only* mutation: prefixes
    /// are immutable by construction.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / WORD_BITS;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % WORD_BITS);
            self.weight += 1;
        }
        self.len += 1;
    }

    /// The bit recorded in round `t` (0-based).
    ///
    /// # Panics
    /// Panics if `t >= len()`.
    #[inline]
    pub fn get(&self, t: usize) -> bool {
        assert!(t < self.len, "round {t} out of range {}", self.len);
        (self.words[t / WORD_BITS] >> (t % WORD_BITS)) & 1 == 1
    }

    /// Total Hamming weight (number of 1-rounds) so far.
    #[inline]
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// Hamming weight of the prefix of length `t` (first `t` rounds).
    ///
    /// # Panics
    /// Panics if `t > len()`.
    pub fn prefix_weight(&self, t: usize) -> usize {
        assert!(t <= self.len, "prefix {t} out of range {}", self.len);
        let full_words = t / WORD_BITS;
        let mut w: usize = self.words[..full_words]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum();
        let rem = t % WORD_BITS;
        if rem > 0 {
            let mask = (1u64 << rem) - 1;
            w += (self.words[full_words] & mask).count_ones() as usize;
        }
        w
    }

    /// The length-`k` suffix ending at round `t` (inclusive, 0-based),
    /// encoded as an integer with the *oldest* bit most significant — the
    /// paper's pattern `s = (x_{t-k+1}, …, x_t)` read left to right.
    ///
    /// # Panics
    /// Panics if the window `[t+1-k, t]` is not fully recorded or `k > 32`.
    pub fn suffix_pattern(&self, t: usize, k: usize) -> u32 {
        assert!((1..=32).contains(&k), "pattern width {k} unsupported");
        assert!(t < self.len, "round {t} out of range {}", self.len);
        assert!(t + 1 >= k, "window [t+1-k, t] underflows at t={t}, k={k}");
        let mut pattern = 0u32;
        for offset in 0..k {
            let round = t + 1 - k + offset;
            pattern = (pattern << 1) | u32::from(self.get(round));
        }
        pattern
    }

    /// Iterate over all recorded bits, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |t| self.get(t))
    }

    /// True if the history contains a run of at least `run` consecutive
    /// 1-bits (e.g. "ever experienced a `run`-month unemployment spell" —
    /// the intro's motivating monotone statistic).
    pub fn has_ones_run(&self, run: usize) -> bool {
        if run == 0 {
            return true;
        }
        let mut current = 0usize;
        for bit in self.iter() {
            if bit {
                current += 1;
                if current >= run {
                    return true;
                }
            } else {
                current = 0;
            }
        }
        false
    }
}

impl fmt::Debug for BitStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitStream[")?;
        for bit in self.iter() {
            write!(f, "{}", u8::from(bit))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitStream {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut stream = BitStream::new();
        for bit in iter {
            stream.push(bit);
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(bits: &[u8]) -> BitStream {
        bits.iter().map(|&b| b == 1).collect()
    }

    #[test]
    fn push_and_get() {
        let s = stream(&[1, 0, 1, 1, 0]);
        assert_eq!(s.len(), 5);
        assert!(s.get(0));
        assert!(!s.get(1));
        assert!(s.get(3));
        assert_eq!(s.weight(), 3);
    }

    #[test]
    fn weight_tracks_incrementally_across_words() {
        let mut s = BitStream::with_capacity(200);
        for i in 0..200 {
            s.push(i % 3 == 0);
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.weight(), 67); // ⌈200/3⌉
        assert_eq!(s.prefix_weight(200), 67);
        assert_eq!(s.prefix_weight(0), 0);
        assert_eq!(s.prefix_weight(64), 22); // ⌈64/3⌉
        assert_eq!(s.prefix_weight(65), 22);
        assert_eq!(s.prefix_weight(66), 22);
        assert_eq!(s.prefix_weight(67), 23);
    }

    #[test]
    fn suffix_pattern_reads_oldest_first() {
        // bits: t=0:1, t=1:0, t=2:1, t=3:1
        let s = stream(&[1, 0, 1, 1]);
        // window [1..3] = (0,1,1) → 0b011 = 3
        assert_eq!(s.suffix_pattern(3, 3), 0b011);
        // window [2..3] = (1,1) → 0b11
        assert_eq!(s.suffix_pattern(3, 2), 0b11);
        // window [0..2] = (1,0,1) → 0b101
        assert_eq!(s.suffix_pattern(2, 3), 0b101);
        // width 1: just the bit at t.
        assert_eq!(s.suffix_pattern(1, 1), 0);
    }

    #[test]
    #[should_panic(expected = "underflows")]
    fn suffix_pattern_underflow_panics() {
        stream(&[1, 0, 1]).suffix_pattern(1, 3);
    }

    #[test]
    fn ones_run_detection() {
        let s = stream(&[0, 1, 1, 0, 1, 1, 1, 0]);
        assert!(s.has_ones_run(0));
        assert!(s.has_ones_run(1));
        assert!(s.has_ones_run(2));
        assert!(s.has_ones_run(3));
        assert!(!s.has_ones_run(4));
        assert!(!BitStream::new().has_ones_run(1));
    }

    #[test]
    fn from_iterator_and_debug() {
        let s: BitStream = [true, false, true].into_iter().collect();
        assert_eq!(format!("{s:?}"), "BitStream[101]");
    }

    #[test]
    fn prefix_weight_at_every_cut_matches_naive() {
        let mut s = BitStream::new();
        let pattern = [true, true, false, true, false, false, true];
        let mut naive = 0;
        for (i, &b) in pattern.iter().cycle().take(150).enumerate() {
            s.push(b);
            if b {
                naive += 1;
            }
            assert_eq!(s.prefix_weight(i + 1), naive, "cut {}", i + 1);
        }
    }
}
