//! Categorical panels: the `|X| = V > 2` generalisation.
//!
//! §2 of the paper: "The solutions we develop for fixed time window queries
//! naturally extend to handle categorical data with more than 2 categories."
//! The categorical fixed-window synthesizer (in the core crate) consumes
//! these panels; the histogram simply ranges over `V^k` patterns instead of
//! `2^k`.

use std::fmt;

/// One round of categorical reports; each value lies in `0..V`.
#[derive(Clone, PartialEq, Eq)]
pub struct CategoricalColumn {
    values: Vec<u8>,
    categories: u8,
}

impl CategoricalColumn {
    /// Build from raw values, validating each lies in `0..categories`.
    ///
    /// # Errors
    /// Returns the index and value of the first out-of-range entry.
    pub fn new(values: Vec<u8>, categories: u8) -> Result<Self, CategoricalError> {
        if categories == 0 {
            return Err(CategoricalError::ZeroCategories);
        }
        for (i, &v) in values.iter().enumerate() {
            if v >= categories {
                return Err(CategoricalError::OutOfRange {
                    individual: i,
                    value: v,
                    categories,
                });
            }
        }
        Ok(Self { values, categories })
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column covers zero individuals.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of categories `V`.
    pub fn categories(&self) -> u8 {
        self.categories
    }

    /// Value for individual `i`.
    pub fn get(&self, i: usize) -> u8 {
        self.values[i]
    }

    /// Iterate values in individual order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.values.iter().copied()
    }
}

impl fmt::Debug for CategoricalColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CategoricalColumn[len={}, V={}]",
            self.values.len(),
            self.categories
        )
    }
}

/// An `n × T` categorical panel with a fixed category count `V`.
#[derive(Clone, PartialEq, Eq)]
pub struct CategoricalDataset {
    individuals: usize,
    categories: u8,
    columns: Vec<CategoricalColumn>,
}

impl CategoricalDataset {
    /// Create an empty panel.
    pub fn empty(individuals: usize, categories: u8) -> Self {
        Self {
            individuals,
            categories,
            columns: Vec::new(),
        }
    }

    /// Build from per-round columns, validating shape and category counts.
    pub fn from_columns(columns: Vec<CategoricalColumn>) -> Result<Self, CategoricalError> {
        let individuals = columns.first().map_or(0, CategoricalColumn::len);
        let categories = columns.first().map_or(1, CategoricalColumn::categories);
        for (t, col) in columns.iter().enumerate() {
            if col.len() != individuals || col.categories() != categories {
                return Err(CategoricalError::RaggedColumns { round: t });
            }
        }
        Ok(Self {
            individuals,
            categories,
            columns,
        })
    }

    /// Append one round.
    pub fn push_column(&mut self, column: CategoricalColumn) -> Result<(), CategoricalError> {
        if column.len() != self.individuals || column.categories() != self.categories {
            return Err(CategoricalError::RaggedColumns {
                round: self.columns.len(),
            });
        }
        self.columns.push(column);
        Ok(())
    }

    /// Number of individuals `n`.
    pub fn individuals(&self) -> usize {
        self.individuals
    }

    /// Number of categories `V`.
    pub fn categories(&self) -> u8 {
        self.categories
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.columns.len()
    }

    /// The reports of round `t`.
    pub fn column(&self, t: usize) -> &CategoricalColumn {
        &self.columns[t]
    }

    /// Iterate rounds in arrival order.
    pub fn stream(&self) -> impl Iterator<Item = (usize, &CategoricalColumn)> + '_ {
        self.columns.iter().enumerate()
    }

    /// Value of individual `i` at round `t`.
    pub fn value(&self, i: usize, t: usize) -> u8 {
        self.columns[t].get(i)
    }

    /// The `k`-wide suffix pattern of individual `i` at round `t`, encoded
    /// base-`V` with the oldest report most significant.
    pub fn suffix_pattern(&self, i: usize, t: usize, k: usize) -> u32 {
        assert!(k >= 1, "pattern width must be positive");
        assert!(t < self.rounds(), "round out of range");
        assert!(t + 1 >= k, "window underflows");
        let v = u32::from(self.categories);
        assert!(
            (v as f64).powi(k as i32) <= u32::MAX as f64,
            "V^k overflows pattern encoding"
        );
        let mut pattern = 0u32;
        for round in (t + 1 - k)..=t {
            pattern = pattern * v + u32::from(self.value(i, round));
        }
        pattern
    }
}

impl fmt::Debug for CategoricalDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CategoricalDataset[n={}, T={}, V={}]",
            self.individuals,
            self.rounds(),
            self.categories
        )
    }
}

/// Errors from categorical panel construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CategoricalError {
    /// `V = 0` categories requested.
    ZeroCategories,
    /// A value outside `0..V`.
    OutOfRange {
        /// Individual index.
        individual: usize,
        /// Offending value.
        value: u8,
        /// Category count.
        categories: u8,
    },
    /// Columns disagree in length or category count.
    RaggedColumns {
        /// Round index of the offending column.
        round: usize,
    },
}

impl fmt::Display for CategoricalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CategoricalError::ZeroCategories => write!(f, "category count must be at least 1"),
            CategoricalError::OutOfRange {
                individual,
                value,
                categories,
            } => write!(
                f,
                "individual {individual} reported {value}, outside 0..{categories}"
            ),
            CategoricalError::RaggedColumns { round } => {
                write!(f, "column at round {round} has mismatched shape")
            }
        }
    }
}

impl std::error::Error for CategoricalError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CategoricalDataset {
        // 3 people, 3 rounds, V = 3:
        //   p0: 0 1 2
        //   p1: 2 2 2
        //   p2: 1 0 1
        let cols = vec![
            CategoricalColumn::new(vec![0, 2, 1], 3).unwrap(),
            CategoricalColumn::new(vec![1, 2, 0], 3).unwrap(),
            CategoricalColumn::new(vec![2, 2, 1], 3).unwrap(),
        ];
        CategoricalDataset::from_columns(cols).unwrap()
    }

    #[test]
    fn construction_validates_values() {
        assert!(CategoricalColumn::new(vec![0, 1, 2], 3).is_ok());
        assert!(matches!(
            CategoricalColumn::new(vec![0, 3], 3),
            Err(CategoricalError::OutOfRange {
                individual: 1,
                value: 3,
                ..
            })
        ));
        assert!(matches!(
            CategoricalColumn::new(vec![], 0),
            Err(CategoricalError::ZeroCategories)
        ));
    }

    #[test]
    fn panel_shape() {
        let d = sample();
        assert_eq!(d.individuals(), 3);
        assert_eq!(d.rounds(), 3);
        assert_eq!(d.categories(), 3);
        assert_eq!(d.value(0, 2), 2);
        assert_eq!(d.value(1, 0), 2);
    }

    #[test]
    fn base_v_suffix_patterns() {
        let d = sample();
        // p0 at t=2, k=2: (1, 2) base 3 → 1·3 + 2 = 5.
        assert_eq!(d.suffix_pattern(0, 2, 2), 5);
        // p1 full history (2,2,2) → 2·9 + 2·3 + 2 = 26 = 3³-1.
        assert_eq!(d.suffix_pattern(1, 2, 3), 26);
        // Width 1 = the value itself.
        assert_eq!(d.suffix_pattern(2, 1, 1), 0);
    }

    #[test]
    fn ragged_columns_rejected() {
        let cols = vec![
            CategoricalColumn::new(vec![0, 1], 2).unwrap(),
            CategoricalColumn::new(vec![0, 1, 1], 2).unwrap(),
        ];
        assert!(matches!(
            CategoricalDataset::from_columns(cols),
            Err(CategoricalError::RaggedColumns { round: 1 })
        ));
        // Mismatched V also rejected.
        let cols = vec![
            CategoricalColumn::new(vec![0, 1], 2).unwrap(),
            CategoricalColumn::new(vec![0, 1], 3).unwrap(),
        ];
        assert!(CategoricalDataset::from_columns(cols).is_err());
    }

    #[test]
    fn binary_special_case_matches_bit_encoding() {
        // V = 2 must reproduce the binary pattern encoding.
        let cols = vec![
            CategoricalColumn::new(vec![1, 0], 2).unwrap(),
            CategoricalColumn::new(vec![1, 1], 2).unwrap(),
            CategoricalColumn::new(vec![0, 1], 2).unwrap(),
        ];
        let d = CategoricalDataset::from_columns(cols).unwrap();
        // p0 history 110 → pattern at t=2,k=3 = 0b110 = 6.
        assert_eq!(d.suffix_pattern(0, 2, 3), 6);
        // p1 history 011 → 3.
        assert_eq!(d.suffix_pattern(1, 2, 3), 3);
    }

    #[test]
    fn push_column_validates() {
        let mut d = CategoricalDataset::empty(2, 4);
        assert!(d
            .push_column(CategoricalColumn::new(vec![3, 0], 4).unwrap())
            .is_ok());
        assert!(d
            .push_column(CategoricalColumn::new(vec![1], 4).unwrap())
            .is_err());
        assert!(d
            .push_column(CategoricalColumn::new(vec![1, 1], 3).unwrap())
            .is_err());
    }
}
