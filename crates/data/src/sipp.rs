//! The SIPP substrate: the paper's real-data workload.
//!
//! The paper's §5 experiment uses the U.S. Census Bureau's **Survey of
//! Income and Program Participation** 2021 public-use file: 23 374
//! households observed over 12 months of 2021, binarized to a monthly
//! poverty indicator (`THINCPOVT2 < 1`, i.e. household income below the
//! poverty threshold).
//!
//! Two entry points:
//!
//! * [`SippConfig::simulate`] — a **calibrated simulator** (see DESIGN.md §5:
//!   the multi-gigabyte Census download is not available offline). It draws
//!   a two-state Markov poverty panel whose marginal monthly poverty rate,
//!   persistence, and resulting quarterly/cumulative statistics land in the
//!   ranges visible in the paper's Figures 1–2.
//! * [`load_sipp_csv`] — a loader for the *real* `pu2021.csv`, implementing
//!   exactly the paper's pre-processing: keep one longitudinal series per
//!   household, binarize the income-to-poverty ratio, and drop households
//!   with any missing month. If you have the Census file, this reproduces
//!   the paper's exact ground truth.

use crate::dataset::LongitudinalDataset;
use crate::generators::{two_state_markov, MarkovParams};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Number of households in the paper's 2021 SIPP sample.
pub const SIPP_2021_HOUSEHOLDS: usize = 23_374;

/// Number of monthly measurements in the paper's 2021 SIPP sample.
pub const SIPP_2021_MONTHS: usize = 12;

/// Configuration of the calibrated SIPP simulator.
///
/// Defaults reproduce the paper's panel shape (`n = 23 374`, `T = 12`) and
/// a poverty process consistent with the magnitudes in Figures 1–2:
/// monthly poverty ≈ 11 %, strong month-to-month persistence (poverty
/// spells are long), which yields quarterly "in poverty at least one month"
/// ≈ 0.14 and "all three months" ≈ 0.08–0.09, and "≥ 3 cumulative months"
/// reaching ≈ 0.10–0.12 by December.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SippConfig {
    /// Number of households `n`.
    pub households: usize,
    /// Number of months `T`.
    pub months: usize,
    /// Markov process for the monthly poverty indicator.
    pub poverty_process: MarkovParams,
}

impl Default for SippConfig {
    fn default() -> Self {
        Self {
            households: SIPP_2021_HOUSEHOLDS,
            months: SIPP_2021_MONTHS,
            poverty_process: MarkovParams {
                initial_one: 0.11,
                stay_one: 0.82,
                enter_one: 0.022,
            },
        }
    }
}

impl SippConfig {
    /// A small-scale configuration for fast tests (same process, fewer
    /// households).
    pub fn small(households: usize) -> Self {
        Self {
            households,
            ..Self::default()
        }
    }

    /// Draw a simulated SIPP poverty panel.
    pub fn simulate<R: Rng + ?Sized>(&self, rng: &mut R) -> LongitudinalDataset {
        two_state_markov(rng, self.households, self.months, self.poverty_process)
    }
}

/// Errors from parsing a real SIPP CSV file.
#[derive(Debug)]
pub enum SippLoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header row is missing a required column.
    MissingColumn(&'static str),
    /// The file contained no usable households.
    NoHouseholds,
    /// A malformed data row (wrong field count).
    MalformedRow {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for SippLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SippLoadError::Io(e) => write!(f, "I/O error reading SIPP file: {e}"),
            SippLoadError::MissingColumn(c) => write!(f, "SIPP header missing column {c}"),
            SippLoadError::NoHouseholds => write!(f, "no complete households found in SIPP file"),
            SippLoadError::MalformedRow { line } => write!(f, "malformed SIPP row at line {line}"),
        }
    }
}

impl std::error::Error for SippLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SippLoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SippLoadError {
    fn from(e: std::io::Error) -> Self {
        SippLoadError::Io(e)
    }
}

/// Load and pre-process a real SIPP public-use CSV (e.g. `pu2021.csv`),
/// reproducing the paper's §5 steps:
///
/// 1. keep **one longitudinal series per household** (the person with the
///    smallest `PNUM` within each `SSUID`);
/// 2. binarize `THINCPOVT2` — the household income-to-poverty ratio — to 1
///    when the ratio is `< 1` (household in poverty that month);
/// 3. **delete every household** with fewer than `months` observed months
///    or with any missing `THINCPOVT2` value.
///
/// The Census distributes the file pipe-delimited; comma-delimited exports
/// are detected automatically from the header row.
pub fn load_sipp_csv<P: AsRef<Path>>(
    path: P,
    months: usize,
) -> Result<LongitudinalDataset, SippLoadError> {
    let file = std::fs::File::open(path)?;
    load_sipp_reader(std::io::BufReader::new(file), months)
}

/// [`load_sipp_csv`] over any reader (unit-testable without a file).
pub fn load_sipp_reader<R: BufRead>(
    mut reader: R,
    months: usize,
) -> Result<LongitudinalDataset, SippLoadError> {
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let delim = if header.contains('|') { '|' } else { ',' };
    let names: Vec<&str> = header.trim_end().split(delim).collect();
    let col = |name: &'static str| -> Result<usize, SippLoadError> {
        names
            .iter()
            .position(|&c| c.eq_ignore_ascii_case(name))
            .ok_or(SippLoadError::MissingColumn(name))
    };
    let ssuid_col = col("SSUID")?;
    let pnum_col = col("PNUM")?;
    let month_col = col("MONTHCODE")?;
    let ratio_col = col("THINCPOVT2")?;
    let needed = 1 + ssuid_col.max(pnum_col).max(month_col).max(ratio_col);

    /// Per-household accumulator: the smallest PNUM seen and that person's
    /// month → poverty map (None marks a missing ratio).
    struct Household {
        pnum: u32,
        by_month: BTreeMap<usize, Option<bool>>,
    }

    let mut households: BTreeMap<String, Household> = BTreeMap::new();
    let mut line_no = 1usize;
    let mut line = String::new();
    loop {
        line.clear();
        line_no += 1;
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(delim).collect();
        if fields.len() < needed {
            return Err(SippLoadError::MalformedRow { line: line_no });
        }
        let ssuid = fields[ssuid_col];
        let pnum: u32 = fields[pnum_col].trim().parse().unwrap_or(u32::MAX);
        let month: usize = match fields[month_col].trim().parse() {
            Ok(m) => m,
            Err(_) => continue, // non-monthly record types are skipped
        };
        if month == 0 || month > months {
            continue;
        }
        let ratio_field = fields[ratio_col].trim();
        let poverty = if ratio_field.is_empty() {
            None
        } else {
            ratio_field.parse::<f64>().ok().map(|r| r < 1.0)
        };

        let entry = households.entry(ssuid.to_string()).or_insert(Household {
            pnum,
            by_month: BTreeMap::new(),
        });
        // Keep only the series of the smallest PNUM in the household.
        if pnum < entry.pnum {
            entry.pnum = pnum;
            entry.by_month.clear();
        }
        if pnum == entry.pnum {
            entry.by_month.insert(month - 1, poverty);
        }
    }

    // Paper step 3: drop households that are incomplete or have a missing
    // value in any month.
    let mut rows: Vec<Vec<bool>> = Vec::new();
    for household in households.values() {
        if household.by_month.len() != months {
            continue;
        }
        let mut bits = Vec::with_capacity(months);
        let mut complete = true;
        for m in 0..months {
            match household.by_month.get(&m) {
                Some(Some(b)) => bits.push(*b),
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        if complete {
            rows.push(bits);
        }
    }
    if rows.is_empty() {
        return Err(SippLoadError::NoHouseholds);
    }

    let streams: Vec<crate::bitstream::BitStream> = rows
        .iter()
        .map(|bits| bits.iter().copied().collect())
        .collect();
    LongitudinalDataset::from_rows(&streams).map_err(|_| SippLoadError::NoHouseholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longsynth_dp::rng::rng_from_seed;
    use std::io::Cursor;

    #[test]
    fn default_config_matches_paper_shape() {
        let cfg = SippConfig::default();
        assert_eq!(cfg.households, 23_374);
        assert_eq!(cfg.months, 12);
    }

    #[test]
    fn simulated_panel_has_calibrated_marginals() {
        let mut rng = rng_from_seed(99);
        let panel = SippConfig::default().simulate(&mut rng);
        assert_eq!(panel.individuals(), 23_374);
        assert_eq!(panel.rounds(), 12);
        // Monthly poverty rate ≈ 11% throughout the year.
        for (t, col) in panel.stream() {
            let rate = col.count_ones() as f64 / panel.individuals() as f64;
            assert!(
                (0.08..=0.14).contains(&rate),
                "month {t}: poverty rate {rate}"
            );
        }
        // Quarterly "at least one month in poverty" ≈ 0.12-0.18 (Fig. 1's
        // topmost series sits below 0.20).
        let mut in_q1 = 0usize;
        let mut all_q1 = 0usize;
        for i in 0..panel.individuals() {
            let months_poor = (0..3).filter(|&t| panel.value(i, t)).count();
            if months_poor >= 1 {
                in_q1 += 1;
            }
            if months_poor == 3 {
                all_q1 += 1;
            }
        }
        let any_rate = in_q1 as f64 / panel.individuals() as f64;
        let all_rate = all_q1 as f64 / panel.individuals() as f64;
        assert!(
            (0.10..=0.20).contains(&any_rate),
            "any-month rate {any_rate}"
        );
        assert!(
            (0.05..=0.12).contains(&all_rate),
            "all-months rate {all_rate}"
        );
        assert!(any_rate > all_rate);
    }

    #[test]
    fn simulation_is_reproducible() {
        let cfg = SippConfig::small(500);
        let a = cfg.simulate(&mut rng_from_seed(7));
        let b = cfg.simulate(&mut rng_from_seed(7));
        assert_eq!(a, b);
    }

    /// A tiny synthetic SIPP file exercising every pre-processing rule.
    fn toy_sipp() -> String {
        let mut s = String::from("SSUID|PNUM|MONTHCODE|THINCPOVT2|OTHER\n");
        // Household A: two persons; person 1 complete, in poverty months 1-2.
        for m in 1..=4 {
            let ratio = if m <= 2 { 0.5 } else { 2.0 };
            s.push_str(&format!("A|1|{m}|{ratio}|x\n"));
            s.push_str(&format!("A|2|{m}|9.9|x\n")); // must be ignored
        }
        // Household B: complete, never in poverty.
        for m in 1..=4 {
            s.push_str(&format!("B|1|{m}|1.0|x\n")); // ratio exactly 1 → not poverty
        }
        // Household C: missing month 3 → dropped.
        for m in [1usize, 2, 4] {
            s.push_str(&format!("C|1|{m}|0.2|x\n"));
        }
        // Household D: month 2 ratio missing → dropped.
        for m in 1..=4 {
            let ratio = if m == 2 { "" } else { "0.9" };
            s.push_str(&format!("D|1|{m}|{ratio}|x\n"));
        }
        s
    }

    #[test]
    fn loader_applies_paper_preprocessing() {
        let panel = load_sipp_reader(Cursor::new(toy_sipp()), 4).unwrap();
        // Only households A and B survive.
        assert_eq!(panel.individuals(), 2);
        assert_eq!(panel.rounds(), 4);
        // BTreeMap ordering: A before B.
        // A (person 1): poverty months 1-2.
        assert!(panel.value(0, 0));
        assert!(panel.value(0, 1));
        assert!(!panel.value(0, 2));
        assert!(!panel.value(0, 3));
        // B: never in poverty (ratio 1.0 is not < 1).
        for t in 0..4 {
            assert!(!panel.value(1, t));
        }
    }

    #[test]
    fn loader_detects_comma_delimiter() {
        let csv = "SSUID,PNUM,MONTHCODE,THINCPOVT2\nX,1,1,0.5\nX,1,2,1.5\n";
        let panel = load_sipp_reader(Cursor::new(csv), 2).unwrap();
        assert_eq!(panel.individuals(), 1);
        assert!(panel.value(0, 0));
        assert!(!panel.value(0, 1));
    }

    #[test]
    fn loader_errors_on_missing_column() {
        let csv = "SSUID|PNUM|MONTHCODE\nA|1|1\n";
        match load_sipp_reader(Cursor::new(csv), 12) {
            Err(SippLoadError::MissingColumn(c)) => assert_eq!(c, "THINCPOVT2"),
            other => panic!("expected MissingColumn, got {other:?}"),
        }
    }

    #[test]
    fn loader_errors_when_everything_dropped() {
        let csv = "SSUID|PNUM|MONTHCODE|THINCPOVT2\nA|1|1|0.5\n";
        assert!(matches!(
            load_sipp_reader(Cursor::new(csv), 12),
            Err(SippLoadError::NoHouseholds)
        ));
    }

    #[test]
    fn loader_errors_on_malformed_row() {
        let csv = "SSUID|PNUM|MONTHCODE|THINCPOVT2\nA|1\n";
        assert!(matches!(
            load_sipp_reader(Cursor::new(csv), 12),
            Err(SippLoadError::MalformedRow { line: 2 })
        ));
    }

    #[test]
    fn non_monthly_records_are_skipped() {
        // MONTHCODE outside 1..=months or non-numeric rows are tolerated.
        let csv = "SSUID|PNUM|MONTHCODE|THINCPOVT2\nA|1|1|0.5\nA|1|2|0.5\nA|1|13|0.5\nA|1|XX|0.5\n";
        let panel = load_sipp_reader(Cursor::new(csv), 2).unwrap();
        assert_eq!(panel.individuals(), 1);
        assert_eq!(panel.rounds(), 2);
    }
}
