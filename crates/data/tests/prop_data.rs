//! Property-based tests for the longitudinal data model.

use longsynth_data::bitstream::BitStream;
use longsynth_data::column::BitColumn;
use longsynth_data::dataset::LongitudinalDataset;
use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_dp::rng::rng_from_seed;
use proptest::prelude::*;

proptest! {
    /// BitColumn round-trips any boolean vector.
    #[test]
    fn column_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let col = BitColumn::from_bools(&bits);
        prop_assert_eq!(col.len(), bits.len());
        let back: Vec<bool> = col.iter().collect();
        prop_assert_eq!(back, bits.clone());
        prop_assert_eq!(col.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    /// BitStream: push-only construction preserves every prefix, and
    /// prefix_weight agrees with a naive recount at every cut.
    #[test]
    fn bitstream_prefix_immutability(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut stream = BitStream::new();
        let mut snapshots: Vec<Vec<bool>> = Vec::new();
        for &b in &bits {
            stream.push(b);
            snapshots.push(stream.iter().collect());
        }
        // Every snapshot is a prefix of the final history.
        let full: Vec<bool> = stream.iter().collect();
        for (i, snap) in snapshots.iter().enumerate() {
            prop_assert_eq!(&full[..=i], snap.as_slice());
        }
        for t in 0..=bits.len() {
            let naive = bits[..t].iter().filter(|&&b| b).count();
            prop_assert_eq!(stream.prefix_weight(t), naive);
        }
        prop_assert_eq!(stream.weight(), stream.prefix_weight(bits.len()));
    }

    /// suffix_pattern equals the hand-rolled big-endian encoding for every
    /// valid (t, k).
    #[test]
    fn suffix_pattern_matches_reference(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
        let stream: BitStream = bits.iter().copied().collect();
        for t in 0..bits.len() {
            for k in 1..=(t + 1).min(16) {
                let mut expect = 0u32;
                for &b in &bits[t + 1 - k..=t] {
                    expect = (expect << 1) | u32::from(b);
                }
                prop_assert_eq!(stream.suffix_pattern(t, k), expect);
            }
        }
    }

    /// Rows → dataset → rows is the identity; columns agree with rows.
    #[test]
    fn dataset_row_column_duality(
        n in 1usize..20,
        t in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = rng_from_seed(seed);
        use rand::Rng;
        let rows: Vec<BitStream> = (0..n)
            .map(|_| (0..t).map(|_| rng.gen_bool(0.5)).collect())
            .collect();
        let d = LongitudinalDataset::from_rows(&rows).unwrap();
        prop_assert_eq!(d.individuals(), n);
        prop_assert_eq!(d.rounds(), t);
        for (i, row) in rows.iter().enumerate() {
            let rebuilt = d.row(i, t - 1);
            prop_assert_eq!(&rebuilt, row);
            for round in 0..t {
                prop_assert_eq!(d.value(i, round), row.get(round));
            }
        }
    }

    /// Markov panels: every individual's trajectory is a valid history and
    /// the panel is deterministic in the seed.
    #[test]
    fn markov_deterministic(seed in any::<u64>(), n in 1usize..50, t in 1usize..10) {
        let params = MarkovParams { initial_one: 0.3, stay_one: 0.7, enter_one: 0.1 };
        let a = two_state_markov(&mut rng_from_seed(seed), n, t, params);
        let b = two_state_markov(&mut rng_from_seed(seed), n, t, params);
        prop_assert_eq!(a, b);
    }

    /// Truncation commutes with streaming: replaying a prefix gives the
    /// truncated panel.
    #[test]
    fn truncation_is_prefix(seed in any::<u64>(), n in 1usize..30, t in 2usize..12) {
        let params = MarkovParams { initial_one: 0.5, stay_one: 0.5, enter_one: 0.5 };
        let d = two_state_markov(&mut rng_from_seed(seed), n, t, params);
        let cut = t / 2;
        let p = d.truncated(cut);
        let mut rebuilt = LongitudinalDataset::empty(n);
        for (round, col) in d.stream() {
            if round < cut {
                rebuilt.push_column(col.clone()).unwrap();
            }
        }
        prop_assert_eq!(p, rebuilt);
    }
}

// Word-level splice/concat equivalence: the u64-block fast paths in
// `BitColumn::slice` / `extend_bits` must agree bit-for-bit with the naive
// bit-at-a-time reference on arbitrary lengths, offsets, and alignments.
proptest! {
    /// `slice` equals the bit-by-bit reference on every sub-range.
    #[test]
    fn slice_equals_bit_reference(
        bits in proptest::collection::vec(any::<bool>(), 0..400),
        start_frac in 0.0f64..1.0,
        len_frac in 0.0f64..1.0,
    ) {
        let col = BitColumn::from_bools(&bits);
        let start = ((bits.len() as f64) * start_frac) as usize;
        let len = (((bits.len() - start) as f64) * len_frac) as usize;
        let range = start..start + len;
        let fast = col.slice(range.clone());
        let slow = BitColumn::from_iter_bits(range.map(|i| col.get(i)));
        prop_assert_eq!(fast, slow);
    }

    /// `concat` of an arbitrary partition reconstructs the original column,
    /// and every unused tail bit stays zero (count_ones sees no stray bits).
    #[test]
    fn concat_inverts_partition(
        bits in proptest::collection::vec(any::<bool>(), 1..400),
        cut_a in 0.0f64..1.0,
        cut_b in 0.0f64..1.0,
    ) {
        let col = BitColumn::from_bools(&bits);
        let mut cuts = [
            ((bits.len() as f64) * cut_a) as usize,
            ((bits.len() as f64) * cut_b) as usize,
        ];
        cuts.sort_unstable();
        let parts = [
            col.slice(0..cuts[0]),
            col.slice(cuts[0]..cuts[1]),
            col.slice(cuts[1]..bits.len()),
        ];
        let rejoined = BitColumn::concat(parts.iter());
        prop_assert_eq!(&rejoined, &col);
        prop_assert_eq!(rejoined.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    /// `as_words`/`from_words` round-trip preserves equality.
    #[test]
    fn words_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let col = BitColumn::from_bools(&bits);
        let back = BitColumn::from_words(col.as_words().to_vec(), col.len());
        prop_assert_eq!(back, col);
    }
}
