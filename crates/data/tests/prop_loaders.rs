//! Fuzz-style property tests for the two parsers: arbitrary byte soup must
//! never panic, and well-formed inputs must round-trip.

use longsynth_data::csvio::{read_panel_csv, write_panel_csv};
use longsynth_data::sipp::load_sipp_reader;
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    /// The panel CSV reader is total: arbitrary printable soup returns
    /// Ok or Err, never panics.
    #[test]
    fn panel_csv_reader_never_panics(input in "[ -~\n]{0,500}") {
        let _ = read_panel_csv(Cursor::new(input));
    }

    /// The SIPP reader is total on arbitrary soup too.
    #[test]
    fn sipp_reader_never_panics(input in "[ -~\n]{0,500}", months in 1usize..24) {
        let _ = load_sipp_reader(Cursor::new(input), months);
    }

    /// Structured-but-hostile SIPP rows (random fields in the right shape)
    /// never panic and never produce a panel wider than `months`.
    #[test]
    fn sipp_reader_handles_hostile_fields(
        rows in proptest::collection::vec(
            ("[A-C]{1}", 0u32..4, "[0-9]{0,3}", "[0-9.]{0,6}"),
            0..40,
        ),
        months in 1usize..13,
    ) {
        let mut input = String::from("SSUID|PNUM|MONTHCODE|THINCPOVT2\n");
        for (ssuid, pnum, month, ratio) in &rows {
            input.push_str(&format!("{ssuid}|{pnum}|{month}|{ratio}\n"));
        }
        if let Ok(panel) = load_sipp_reader(Cursor::new(input), months) {
            prop_assert_eq!(panel.rounds(), months);
            prop_assert!(panel.individuals() <= 3); // at most SSUIDs A, B, C
        }
    }

    /// Any panel written by write_panel_csv parses back identically
    /// (with or without the padding column).
    #[test]
    fn panel_csv_roundtrip(
        bits in proptest::collection::vec(
            proptest::collection::vec(any::<bool>(), 4),
            1..30,
        ),
        with_flags in any::<bool>(),
    ) {
        let rows: Vec<longsynth_data::BitStream> =
            bits.iter().map(|r| r.iter().copied().collect()).collect();
        let flags: Vec<bool> = (0..rows.len()).map(|i| i % 3 == 0).collect();
        let mut out = Vec::new();
        write_panel_csv(
            &mut out,
            rows.clone().into_iter(),
            4,
            with_flags.then_some(flags.as_slice()),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // The padding column, if present, parses as one extra round — strip
        // it by re-reading only when absent; with flags we check the header.
        if with_flags {
            prop_assert!(text.lines().next().unwrap().ends_with("padding"));
        } else {
            let parsed = read_panel_csv(Cursor::new(text)).unwrap();
            prop_assert_eq!(parsed.individuals(), rows.len());
            prop_assert_eq!(parsed.rounds(), 4);
            for (i, row) in rows.iter().enumerate() {
                prop_assert_eq!(&parsed.row(i, 3), row);
            }
        }
    }
}
