//! Analyst-side estimation paths: biased vs debiased, scalar vs
//! padding-record debiasing, sub-width and super-width queries.

use longsynth::{FixedWindowConfig, FixedWindowSynthesizer, SelectionStrategy, SynthError};
use longsynth_data::sipp::SippConfig;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::rng_from_seed;
use longsynth_queries::pattern::Pattern;
use longsynth_queries::window::{quarterly_battery, WindowQuery};

fn run(
    selection: SelectionStrategy,
    seed: u64,
) -> (FixedWindowSynthesizer, longsynth_data::LongitudinalDataset) {
    let panel = SippConfig::small(8_000).simulate(&mut rng_from_seed(3000 + seed));
    let config = FixedWindowConfig::new(12, 3, Rho::new(0.005).unwrap())
        .unwrap()
        .with_selection(selection);
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
    for (_, col) in panel.stream() {
        synth.step(col).unwrap();
    }
    (synth, panel)
}

#[test]
fn biased_estimates_systematically_exceed_debiased_for_rare_patterns() {
    // Padding inflates every bin equally, so rare patterns (like "all three
    // months in poverty") are *over*-represented in the raw synthetic
    // fractions — the Fig. 1 vs Fig. 5-7 bias story.
    let (synth, panel) = run(SelectionStrategy::Uniform, 6);
    let rare = WindowQuery::all_ones(3);
    for &t in &[2usize, 5, 8, 11] {
        let truth = rare.evaluate_true(&panel, t);
        let biased = synth.estimate_biased(t, &rare).unwrap();
        let debiased = synth.estimate_debiased(t, &rare).unwrap();
        assert!(
            biased > truth,
            "t={t}: biased {biased} should exceed truth {truth}"
        );
        assert!(
            (debiased - truth).abs() < (biased - truth).abs(),
            "t={t}: debiasing did not help"
        );
    }
}

#[test]
fn all_quarterly_queries_within_paper_accuracy_after_debias() {
    let (synth, panel) = run(SelectionStrategy::Uniform, 2);
    for &t in &[2usize, 5, 8, 11] {
        for q in quarterly_battery(3) {
            let est = synth.estimate_debiased(t, &q).unwrap();
            let truth = q.evaluate_true(&panel, t);
            assert!(
                (est - truth).abs() < 0.03,
                "t={t} {}: {est} vs {truth}",
                q.name()
            );
        }
    }
}

#[test]
fn subwidth_queries_cost_nothing_extra() {
    // k' = 1 and k' = 2 queries answered from the same release, no extra
    // privacy budget, same accuracy scale.
    let (synth, panel) = run(SelectionStrategy::Uniform, 3);
    for width in [1usize, 2] {
        let q = WindowQuery::at_least_m_ones(width, 1);
        for t in (3 - 1)..12 {
            let est = synth.estimate_debiased(t, &q).unwrap();
            let truth = q.evaluate_true(&panel, t);
            assert!(
                (est - truth).abs() < 0.03,
                "width {width}, t={t}: {est} vs {truth}"
            );
        }
    }
}

#[test]
fn stratified_selection_near_pins_padding_histogram() {
    // Under stratified selection the padding sub-population stays pinned at
    // npad per bin up to the rare infeasible cases (a bin whose *initial*
    // noisy count fell below npad cannot be fully stocked). The residual
    // deviation is a handful of records; uniform selection drifts by far
    // more (next test).
    let (synth, _) = run(SelectionStrategy::Stratified, 6);
    let npad = synth.npad() as i64;
    let pad_deviation = |synth: &FixedWindowSynthesizer, t: usize| -> i64 {
        let mut pad_hist = [0i64; 8];
        for (record, &is_pad) in synth.synthetic().iter().zip(synth.padding_flags()) {
            if is_pad {
                pad_hist[record.suffix_pattern(t, 3) as usize] += 1;
            }
        }
        pad_hist.iter().map(|&c| (c - npad).abs()).sum()
    };
    for t in 2..12 {
        let dev = pad_deviation(&synth, t);
        // The residual is some tens of records out of 8 × npad ≈ 1000
        // flagged: the bins whose noisy target fell below npad in some
        // round cannot be fully stocked, and the shortfall echoes through
        // later extensions. The exact trajectory is seed-stream-sensitive
        // (the pooled-shuffle migration moved this stream's peak from the
        // low 30s to 98); the property that matters — an order of
        // magnitude under uniform drift — is checked directly by the
        // contrast assertion below.
        assert!(
            dev <= 128,
            "t={t}: stratified padding deviated by {dev} records total"
        );
        // Scalar and record debiasing nearly coincide (within the residual
        // deviation over n).
        for q in quarterly_battery(3) {
            let scalar = synth.estimate_debiased(t, &q).unwrap();
            let records = synth.estimate_debiased_records(t, &q).unwrap();
            assert!(
                (scalar - records).abs() < 64.0 / 8_000.0,
                "t={t} {}: {scalar} vs {records}",
                q.name()
            );
        }
    }

    // Contrast: uniform selection drifts by an order of magnitude more by
    // the final round.
    let (uniform, _) = run(SelectionStrategy::Uniform, 6);
    let uniform_dev = pad_deviation(&uniform, 11);
    let stratified_dev = pad_deviation(&synth, 11);
    assert!(
        uniform_dev > 4 * stratified_dev.max(1),
        "uniform drift {uniform_dev} vs stratified {stratified_dev}"
    );
}

#[test]
fn uniform_selection_lets_padding_drift() {
    // The complementary fact: under uniform selection the padding histogram
    // moves away from npad-per-bin over time (the churn the paper's k' > k
    // panel exhibits).
    let (synth, _) = run(SelectionStrategy::Uniform, 5);
    let npad = synth.npad() as i64;
    let mut total_drift = 0i64;
    let t = 11;
    let mut pad_hist = vec![0i64; 8];
    for (record, &is_pad) in synth.synthetic().iter().zip(synth.padding_flags()) {
        if is_pad {
            pad_hist[record.suffix_pattern(t, 3) as usize] += 1;
        }
    }
    for &count in &pad_hist {
        total_drift += (count - npad).abs();
    }
    assert!(
        total_drift > 0,
        "uniform selection should drift the padding histogram"
    );
}

#[test]
fn unreleased_rounds_error_cleanly() {
    let (synth, _) = run(SelectionStrategy::Uniform, 6);
    let q = WindowQuery::all_ones(3);
    assert!(matches!(
        synth.estimate_debiased(0, &q),
        Err(SynthError::RoundNotReleased { round: 0 })
    ));
    assert!(matches!(
        synth.estimate_biased(1, &q),
        Err(SynthError::RoundNotReleased { round: 1 })
    ));
    assert!(matches!(
        synth.estimate_debiased(12, &q),
        Err(SynthError::RoundNotReleased { round: 12 })
    ));
    // Width-5 query before round 4 is unanswerable even on records.
    let wide = WindowQuery::pattern(Pattern::parse("11111"));
    assert!(synth.estimate_debiased_records(3, &wide).is_err());
    assert!(synth.estimate_debiased_records(4, &wide).is_ok());
}
