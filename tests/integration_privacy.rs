//! Privacy-accounting integration: the ledger bookkeeping that turns the
//! paper's composition proofs (Theorems 3.1, 4.1) into executable checks,
//! plus end-to-end determinism (a prerequisite for the seed-based privacy
//! audit in the bench suite).

use longsynth::{
    BudgetSplit, CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig, FixedWindowSynthesizer,
};
use longsynth_data::generators::iid_bernoulli;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};

#[test]
fn fixed_window_budget_composition_matches_theorem_3_1() {
    // R = T − k + 1 releases, each ρ/R: the ledger must land exactly on ρ.
    for (horizon, window) in [(12usize, 3usize), (8, 1), (6, 6), (20, 5)] {
        let data = iid_bernoulli(&mut rng_from_seed(1), 200, horizon, 0.5);
        let rho = Rho::new(0.005).unwrap();
        let config = FixedWindowConfig::new(horizon, window, rho).unwrap();
        let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(2));
        for (t, col) in data.stream() {
            synth.step(col).unwrap();
            // Budget is spent monotonically, release by release.
            let expected_steps = (t + 1).saturating_sub(window - 1);
            let expected = rho.value() * expected_steps as f64 / config.update_steps() as f64;
            assert!(
                (synth.ledger().spent().value() - expected).abs() < 1e-12,
                "T={horizon}, k={window}, t={t}"
            );
        }
        assert!(synth.ledger().exhausted());
    }
}

#[test]
fn cumulative_budget_composition_matches_theorem_4_1() {
    // T counters, shares summing to ρ, charged on first activation.
    for split in [BudgetSplit::Uniform, BudgetSplit::CorollaryB1] {
        let horizon = 10;
        let data = iid_bernoulli(&mut rng_from_seed(3), 100, horizon, 0.4);
        let rho = Rho::new(0.02).unwrap();
        let config = CumulativeConfig::new(horizon, rho)
            .unwrap()
            .with_split(split);
        let mut synth = CumulativeSynthesizer::new(config, RngFork::new(4), rng_from_seed(5));
        let mut last_spent = 0.0;
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
            let spent = synth.ledger().spent().value();
            assert!(spent >= last_spent - 1e-15, "{split:?}: spend decreased");
            assert!(
                spent <= rho.value() * (1.0 + 1e-9),
                "{split:?}: overspent {spent}"
            );
            last_spent = spent;
        }
        assert!(synth.ledger().exhausted(), "{split:?}");
    }
}

#[test]
fn end_to_end_determinism_under_fixed_seeds() {
    // Identical seeds ⇒ identical releases, histograms, and records, for
    // both synthesizers. This is what makes the experiment harness's
    // repetition framework (and any privacy audit replaying seeds) sound.
    let data = iid_bernoulli(&mut rng_from_seed(6), 500, 12, 0.3);

    let fw = |seed: u64| {
        let config = FixedWindowConfig::new(12, 3, Rho::new(0.005).unwrap()).unwrap();
        let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
        }
        (
            synth.synthetic().clone(),
            (2..12)
                .map(|t| synth.histogram_estimate(t).unwrap().to_vec())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(fw(7), fw(7));
    assert_ne!(fw(7).0, fw(8).0);

    let cu = |seed: u64| {
        let config = CumulativeConfig::new(12, Rho::new(0.005).unwrap()).unwrap();
        let mut synth = CumulativeSynthesizer::new(config, RngFork::new(seed), rng_from_seed(seed));
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
        }
        (
            synth.synthetic().clone(),
            (0..12)
                .map(|t| synth.threshold_estimates(t).unwrap().to_vec())
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(cu(9), cu(9));
    assert_ne!(cu(9).0, cu(10).0);
}

#[test]
fn zcdp_to_approx_dp_reporting() {
    // The conversion analysts quote: ρ = 0.005 at δ = 1e-6 is ε ≈ 0.53 —
    // the number a SIPP release would be described with.
    let rho = Rho::new(0.005).unwrap();
    let eps = rho.to_approx_dp(1e-6).unwrap();
    assert!((0.5..0.56).contains(&eps), "eps {eps}");
    // Composing the paper's three experiment budgets.
    let total = Rho::new(0.001)
        .unwrap()
        .compose(Rho::new(0.005).unwrap())
        .compose(Rho::new(0.05).unwrap());
    assert!((total.value() - 0.056).abs() < 1e-12);
}
