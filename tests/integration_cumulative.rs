//! End-to-end integration of Algorithm 2: data generation → stream
//! counters → monotonization → record promotion, at realistic scales.

// Threshold loops index by `b`/`t` to mirror the paper's notation.
#![allow(clippy::needless_range_loop)]

use longsynth::{BudgetSplit, CumulativeConfig, CumulativeSynthesizer};
use longsynth_counters::CounterKind;
use longsynth_data::sipp::SippConfig;
use longsynth_data::LongitudinalDataset;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_queries::cumulative::{cumulative_counts, is_valid_threshold_matrix};

fn sipp_run(
    households: usize,
    rho: f64,
    seed: u64,
) -> (CumulativeSynthesizer, LongitudinalDataset) {
    let panel = SippConfig::small(households).simulate(&mut rng_from_seed(2000 + seed));
    let config = CumulativeConfig::new(12, Rho::new(rho).unwrap()).unwrap();
    let mut synth = CumulativeSynthesizer::new(config, RngFork::new(seed), rng_from_seed(seed));
    for (_, col) in panel.stream() {
        synth.step(col).unwrap();
    }
    (synth, panel)
}

#[test]
fn full_sipp_run_tracks_every_threshold() {
    // Paper parameters (n = 23 374, ρ = 0.005): every (b, t) fraction within
    // the synthesizer's own error bound at β = 0.01 per counter.
    let (synth, panel) = sipp_run(23_374, 0.005, 3);
    let n = panel.individuals() as f64;
    let bound = synth.error_bound_counts(0.01) / n;
    for t in 0..12 {
        let truth = cumulative_counts(&panel, t);
        for b in 1..=(t + 1) {
            let est = synth.estimate_fraction(t, b).unwrap();
            let tru = truth[b] as f64 / n;
            assert!(
                (est - tru).abs() <= bound,
                "t={t}, b={b}: |{est} - {tru}| > {bound}"
            );
        }
    }
    assert!(synth.ledger().exhausted());
}

#[test]
fn threshold_matrix_is_always_valid() {
    for seed in 0..3 {
        let (synth, _) = sipp_run(2_000, 0.002, 40 + seed);
        let matrix: Vec<Vec<i64>> = (0..12)
            .map(|t| synth.threshold_estimates(t).unwrap().to_vec())
            .collect();
        assert!(is_valid_threshold_matrix(&matrix), "seed {seed}");
    }
}

#[test]
fn synthetic_records_realise_the_estimates_exactly() {
    // The synthetic population is not a side-car: its weight distribution
    // *is* the released estimate matrix.
    let (synth, _) = sipp_run(5_000, 0.01, 5);
    for t in 0..12 {
        let estimates = synth.threshold_estimates(t).unwrap();
        let realised = synth.synthetic().cumulative_counts(t);
        for b in 0..=(t + 1) {
            assert_eq!(
                realised.get(b).copied().unwrap_or(0),
                estimates[b],
                "t={t}, b={b}"
            );
        }
    }
}

#[test]
fn figure2_shape_proportion_three_months() {
    // The Fig. 2 series: zero for the first two months, then increasing,
    // tracking truth to within a couple of points at the paper's scale.
    let (synth, panel) = sipp_run(23_374, 0.005, 6);
    let n = panel.individuals() as f64;
    assert_eq!(synth.estimate_fraction(0, 3).unwrap(), 0.0);
    assert_eq!(synth.estimate_fraction(1, 3).unwrap(), 0.0);
    let mut prev = 0.0;
    for t in 2..12 {
        let est = synth.estimate_fraction(t, 3).unwrap();
        assert!(est >= prev, "t={t}: cumulative estimate decreased");
        prev = est;
        let tru = cumulative_counts(&panel, t)[3] as f64 / n;
        assert!((est - tru).abs() < 0.02, "t={t}: {est} vs {tru}");
    }
}

#[test]
fn counter_families_rank_as_expected_on_average() {
    // Worst-case threshold error, averaged over seeds: the tree should not
    // lose to the simple counter at T = 12 (they are close at such short
    // horizons, but simple must not win decisively).
    let panel = SippConfig::small(5_000).simulate(&mut rng_from_seed(70));
    let mut errors = std::collections::HashMap::new();
    for kind in [CounterKind::Tree, CounterKind::Simple, CounterKind::Honaker] {
        let mut total = 0.0;
        for seed in 0..6 {
            let config = CumulativeConfig::new(12, Rho::new(0.005).unwrap())
                .unwrap()
                .with_counter(kind);
            let mut synth =
                CumulativeSynthesizer::new(config, RngFork::new(80 + seed), rng_from_seed(seed));
            for (_, col) in panel.stream() {
                synth.step(col).unwrap();
            }
            let mut worst = 0i64;
            for t in 0..12 {
                let truth = cumulative_counts(&panel, t);
                let est = synth.threshold_estimates(t).unwrap();
                for b in 1..=(t + 1) {
                    worst = worst.max((est[b] - truth[b] as i64).abs());
                }
            }
            total += worst as f64;
        }
        errors.insert(format!("{kind}"), total);
    }
    let tree = errors["tree"];
    let simple = errors["simple"];
    let honaker = errors["honaker"];
    assert!(
        tree < 1.5 * simple,
        "tree {tree} lost decisively to simple {simple}"
    );
    assert!(
        honaker < 1.2 * tree,
        "honaker {honaker} worse than tree {tree}"
    );
}

#[test]
fn budget_splits_both_complete_and_differ() {
    let panel = SippConfig::small(1_000).simulate(&mut rng_from_seed(90));
    let mut outputs = Vec::new();
    for split in [BudgetSplit::Uniform, BudgetSplit::CorollaryB1] {
        let config = CumulativeConfig::new(12, Rho::new(0.01).unwrap())
            .unwrap()
            .with_split(split);
        let mut synth = CumulativeSynthesizer::new(config, RngFork::new(91), rng_from_seed(92));
        for (_, col) in panel.stream() {
            synth.step(col).unwrap();
        }
        assert!(synth.ledger().exhausted(), "{split:?}");
        outputs.push(synth.threshold_estimates(11).unwrap().to_vec());
    }
    // Same seeds, different noise scales → different releases.
    assert_ne!(outputs[0], outputs[1]);
}
