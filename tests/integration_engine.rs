//! End-to-end sharded-engine runs on the paper's SIPP-like panel: accuracy
//! survives sharding, cohort boundaries respect record identity, and the
//! engine composes through the `ContinualSynthesizer` trait object surface.

use longsynth::{
    ContinualSynthesizer, CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig,
    FixedWindowSynthesizer, Release,
};
use longsynth_data::sipp::SippConfig;
use longsynth_data::BitColumn;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_engine::{ShardPlan, ShardedEngine};
use longsynth_queries::window::quarterly_battery;

#[test]
fn sharded_fixed_window_stays_accurate_on_sipp_panel() {
    // 8 shards over a 12k panel at a generous budget: population-level
    // debiased estimates (cohort-weighted) stay near truth. Sharding costs
    // accuracy (each shard noises its own histogram), so the tolerance is
    // wider than the unsharded 0.02 at the same rho.
    let n = 12_000;
    let panel = SippConfig::small(n).simulate(&mut rng_from_seed(77));
    let config = FixedWindowConfig::new(12, 3, Rho::new(1.0).unwrap()).unwrap();
    let plan = ShardPlan::new(n, 8).unwrap();
    let fork = RngFork::new(78);
    let mut engine = ShardedEngine::new(plan, |s, _| {
        FixedWindowSynthesizer::new(config, fork.child(s as u64))
    })
    .unwrap();
    for (_, col) in panel.stream() {
        engine.step(col).unwrap();
    }
    for &t in &[2usize, 7, 11] {
        for q in quarterly_battery(3) {
            let truth = q.evaluate_true(&panel, t);
            let mut est = 0.0;
            for s in 0..engine.shards() {
                est += engine.shard(s).estimate_debiased(t, &q).unwrap()
                    * engine.plan().cohort_size(s) as f64;
            }
            est /= n as f64;
            assert!(
                (est - truth).abs() < 0.05,
                "t={t} {}: sharded {est} vs truth {truth}",
                q.name()
            );
        }
    }
    assert!(engine.budget().exhausted());
}

#[test]
fn sharded_release_equals_cohort_release_rowwise() {
    // The merged release's record blocks are exactly the shards' releases:
    // shard s's records occupy the contiguous block the plan assigns it.
    let n = 900;
    let panel = SippConfig::small(n).simulate(&mut rng_from_seed(5));
    let horizon = panel.rounds();
    let config = CumulativeConfig::new(horizon, Rho::new(0.2).unwrap()).unwrap();
    let plan = ShardPlan::new(n, 3).unwrap();
    let fork = RngFork::new(6);
    let mut engine = ShardedEngine::new(plan.clone(), |s, _| {
        CumulativeSynthesizer::new(config, fork.subfork(s as u64), fork.child(s as u64))
    })
    .unwrap();
    let mut merged_columns: Vec<BitColumn> = Vec::new();
    for (_, col) in panel.stream() {
        merged_columns.push(engine.step(col).unwrap());
    }
    for (t, merged) in merged_columns.iter().enumerate() {
        for s in 0..engine.shards() {
            let shard_col = engine.shard(s).synthetic().column(t);
            for (offset, i) in plan.range(s).enumerate() {
                assert_eq!(
                    merged.get(i),
                    shard_col.get(offset),
                    "t={t}, shard={s}, record={i}"
                );
            }
        }
    }
}

#[test]
fn engine_behind_trait_object() {
    // The engine is consumable wherever a synthesizer is: through a trait
    // object with uniform bookkeeping.
    let n = 400;
    let panel = SippConfig::small(n).simulate(&mut rng_from_seed(9));
    let horizon = panel.rounds();
    let config = FixedWindowConfig::new(horizon, 2, Rho::new(0.1).unwrap()).unwrap();
    let fork = RngFork::new(10);
    let mut engine = ShardedEngine::new(ShardPlan::new(n, 2).unwrap(), |s, _| {
        FixedWindowSynthesizer::new(config, fork.child(s as u64))
    })
    .unwrap();
    let synth: &mut dyn ContinualSynthesizer<
        Input = BitColumn,
        Release = Release,
        Aggregate = longsynth::HistogramAggregate,
    > = &mut engine;
    assert_eq!(synth.horizon(), horizon);
    for (t, col) in panel.stream() {
        synth.step(col).unwrap();
        assert_eq!(synth.round(), t + 1);
        assert_eq!(synth.rounds_remaining(), horizon - t - 1);
    }
    assert!((synth.budget_spent().value() - 0.1).abs() < 1e-9);
    assert!(matches!(
        synth.step(&BitColumn::zeros(n)),
        Err(longsynth::SynthError::HorizonExceeded { .. })
    ));
}
