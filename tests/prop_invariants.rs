//! Cross-crate property-based tests: the paper's structural invariants
//! under randomized data, parameters, and seeds.

// Threshold loops index by `b`/`t` to mirror the paper's notation.
#![allow(clippy::needless_range_loop)]

use longsynth::{
    CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig, FixedWindowSynthesizer,
    PaddingPolicy, SelectionStrategy,
};
use longsynth_data::generators::iid_bernoulli;
use longsynth_dp::budget::Rho;
use longsynth_dp::mechanisms::NoiseDistribution;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_queries::cumulative::is_valid_threshold_matrix;
use longsynth_queries::pattern::Pattern;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1, arbitrary data/seeds/k: the §3.1 consistency identity,
    /// population-size invariance, and non-negative targets hold in every
    /// released round.
    #[test]
    fn alg1_structural_invariants(
        seed in any::<u64>(),
        n in 50usize..400,
        horizon in 4usize..10,
        k in 1usize..4,
        p in 0.05f64..0.95,
        stratified in any::<bool>(),
    ) {
        prop_assume!(k <= horizon);
        let data = iid_bernoulli(&mut rng_from_seed(seed), n, horizon, p);
        let selection = if stratified {
            SelectionStrategy::Stratified
        } else {
            SelectionStrategy::Uniform
        };
        let config = FixedWindowConfig::new(horizon, k, Rho::new(0.05).unwrap())
            .unwrap()
            .with_selection(selection);
        let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed ^ 0xABCD));
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
        }
        let n_star = synth.n_star() as i64;
        for t in (k - 1)..horizon {
            let now = synth.histogram_estimate(t).unwrap();
            prop_assert!(now.iter().all(|&v| v >= 0));
            prop_assert_eq!(now.iter().sum::<i64>(), n_star);
            // Bookkeeping matches the records.
            let realised = synth.synthetic().window_histogram(t, k);
            prop_assert_eq!(now, realised.as_slice());
            if t >= k {
                let prev = synth.histogram_estimate(t - 1).unwrap();
                for z in Pattern::all(k - 1) {
                    let ended = prev[z.prepend(false).code() as usize]
                        + prev[z.prepend(true).code() as usize];
                    let started = now[z.append(false).code() as usize]
                        + now[z.append(true).code() as usize];
                    prop_assert_eq!(ended, started);
                }
            }
        }
    }

    /// Algorithm 2, arbitrary data/seeds: the released matrix is always a
    /// valid threshold matrix, the records realise it exactly, and
    /// synthetic weights move by at most one per round.
    #[test]
    fn alg2_structural_invariants(
        seed in any::<u64>(),
        n in 50usize..300,
        horizon in 2usize..10,
        p in 0.05f64..0.95,
    ) {
        let data = iid_bernoulli(&mut rng_from_seed(seed), n, horizon, p);
        let config = CumulativeConfig::new(horizon, Rho::new(0.05).unwrap()).unwrap();
        let mut synth = CumulativeSynthesizer::new(
            config,
            RngFork::new(seed ^ 0xF00D),
            rng_from_seed(seed ^ 0xBEEF),
        );
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
        }
        let matrix: Vec<Vec<i64>> = (0..horizon)
            .map(|t| synth.threshold_estimates(t).unwrap().to_vec())
            .collect();
        prop_assert!(is_valid_threshold_matrix(&matrix));
        for t in 0..horizon {
            let realised = synth.synthetic().cumulative_counts(t);
            for b in 0..=(t + 1) {
                prop_assert_eq!(realised.get(b).copied().unwrap_or(0), matrix[t][b]);
            }
        }
        for record in synth.synthetic().iter() {
            let mut prev = 0usize;
            for t in 1..=record.len() {
                let w = record.prefix_weight(t);
                prop_assert!(w == prev || w == prev + 1);
                prev = w;
            }
        }
    }

    /// Noiseless synthesis is lossless for any data: the synthetic
    /// histograms equal the true histograms exactly, and debiased query
    /// answers equal the truth.
    #[test]
    fn noiseless_synthesis_is_exact(
        seed in any::<u64>(),
        n in 20usize..200,
        horizon in 3usize..8,
        p in 0.0f64..1.0,
    ) {
        let k = 3usize.min(horizon);
        let data = iid_bernoulli(&mut rng_from_seed(seed), n, horizon, p);
        let config = FixedWindowConfig::new(horizon, k, Rho::new(1.0).unwrap())
            .unwrap()
            .with_padding(PaddingPolicy::None)
            .with_noise_override(NoiseDistribution::None);
        let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed ^ 0xA));
        for (_, col) in data.stream() {
            synth.step(col).unwrap();
        }
        for t in (k - 1)..horizon {
            let truth = longsynth_queries::window::window_histogram(&data, t, k);
            let est = synth.histogram_estimate(t).unwrap();
            for (s, (&c, &e)) in truth.iter().zip(est).enumerate() {
                prop_assert_eq!(c as i64, e, "t={}, s={}", t, s);
            }
        }
    }

    /// Release streams are deterministic functions of (data, seed): the
    /// foundation for the repetition harness and privacy audits.
    #[test]
    fn releases_are_deterministic(seed in any::<u64>(), n in 20usize..100) {
        let data = iid_bernoulli(&mut rng_from_seed(seed), n, 6, 0.5);
        let run = || {
            let config = FixedWindowConfig::new(6, 2, Rho::new(0.1).unwrap()).unwrap();
            let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
            for (_, col) in data.stream() {
                synth.step(col).unwrap();
            }
            synth.synthetic().clone()
        };
        prop_assert_eq!(run(), run());
    }
}
