//! End-to-end integration of Algorithm 1 across crates: data generation →
//! continual synthesis → query answering, checking the paper's §3
//! guarantees at realistic scales.

use longsynth::{FixedWindowConfig, FixedWindowSynthesizer, PaddingPolicy, Release};
use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_data::sipp::SippConfig;
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::rng_from_seed;
use longsynth_dp::tail::{theorem_3_2_lambda, FixedWindowParams};
use longsynth_queries::pattern::Pattern;
use longsynth_queries::window::{quarterly_battery, window_histogram};

/// Run a full SIPP-like synthesis and return (synthesizer, panel).
fn sipp_run(
    households: usize,
    rho: f64,
    seed: u64,
) -> (FixedWindowSynthesizer, longsynth_data::LongitudinalDataset) {
    let panel = SippConfig::small(households).simulate(&mut rng_from_seed(1000 + seed));
    let config = FixedWindowConfig::new(12, 3, Rho::new(rho).unwrap()).unwrap();
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
    for (_, col) in panel.stream() {
        synth.step(col).unwrap();
    }
    (synth, panel)
}

#[test]
fn full_sipp_run_respects_theorem_3_2() {
    // One full run at the paper's parameters: every (bin, round) error must
    // sit within the β = 0.05 bound (a fixed-seed single draw; the theorem
    // allows 5% of runs to exceed it — this seed does not).
    let (synth, panel) = sipp_run(23_374, 0.005, 7);
    let params = FixedWindowParams::new(12, 3, Rho::new(0.005).unwrap()).unwrap();
    let lambda = theorem_3_2_lambda(&params, 0.05);
    let npad = synth.npad() as i64;
    for t in 2..12 {
        let est = synth.histogram_estimate(t).unwrap();
        let truth = window_histogram(&panel, t, 3);
        for (s, (&p, &c)) in est.iter().zip(&truth).enumerate() {
            let err = (p - (c as i64 + npad)).abs() as f64;
            assert!(
                err <= lambda,
                "t={t}, s={s}: count error {err} above λ={lambda}"
            );
        }
    }
    assert_eq!(synth.failures().total(), 0);
    assert!(synth.ledger().exhausted());
}

#[test]
fn continual_releases_are_prefix_consistent() {
    // The defining model property: the column released at round t never
    // changes afterwards. Capture each release as it happens and compare
    // against the final population.
    let panel = SippConfig::small(2_000).simulate(&mut rng_from_seed(8));
    let config = FixedWindowConfig::new(12, 3, Rho::new(0.01).unwrap()).unwrap();
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(9));
    let mut released_columns = Vec::new();
    for (_, col) in panel.stream() {
        match synth.step(col).unwrap() {
            Release::Buffered => {}
            Release::Initial(cols) => released_columns.extend(cols),
            Release::Update(col) => released_columns.push(col),
        }
    }
    assert_eq!(released_columns.len(), 12);
    for (t, col) in released_columns.iter().enumerate() {
        assert_eq!(col, &synth.synthetic().column(t), "round {t} was rewritten");
    }
}

#[test]
fn quarterly_battery_accuracy_at_paper_scale() {
    // Debiased quarterly estimates within 2 percentage points of truth at
    // the paper's n and ρ (the Fig. 6 right-panel regime).
    let (synth, panel) = sipp_run(23_374, 0.005, 10);
    for &t in &[2usize, 5, 8, 11] {
        for query in quarterly_battery(3) {
            let est = synth.estimate_debiased(t, &query).unwrap();
            let truth = query.evaluate_true(&panel, t);
            assert!(
                (est - truth).abs() < 0.02,
                "t={t}, {}: {est} vs {truth}",
                query.name()
            );
        }
    }
}

#[test]
fn monotone_statistics_never_regress_on_persistent_records() {
    // "Ever in poverty ≥ 2 consecutive months" must be non-decreasing over
    // the releases — the consistency property the intro's strawman loses.
    let (synth, _) = sipp_run(3_000, 0.005, 11);
    let records = synth.synthetic();
    let mut prev = 0usize;
    for t in 3..=records.rounds() {
        let count = records
            .iter()
            .filter(|r| {
                let prefix: longsynth_data::BitStream = r.iter().take(t).collect();
                prefix.has_ones_run(2)
            })
            .count();
        assert!(count >= prev, "round {t}: {count} < {prev}");
        prev = count;
    }
}

#[test]
fn window_consistency_constraint_holds_at_scale() {
    let (synth, _) = sipp_run(10_000, 0.001, 12);
    for t in 3..12 {
        let prev = synth.histogram_estimate(t - 1).unwrap();
        let now = synth.histogram_estimate(t).unwrap();
        for z in Pattern::all(2) {
            let ended =
                prev[z.prepend(false).code() as usize] + prev[z.prepend(true).code() as usize];
            let started =
                now[z.append(false).code() as usize] + now[z.append(true).code() as usize];
            assert_eq!(ended, started, "t={t}, z={z}");
        }
    }
}

#[test]
fn tight_budget_still_produces_valid_releases() {
    // ρ = 0.0005 (10x tighter than the paper's tightest): massive noise,
    // but the synthesizer must stay feasible thanks to padding, and all
    // estimates must remain finite and the population size constant.
    let panel = two_state_markov(
        &mut rng_from_seed(13),
        1_000,
        12,
        MarkovParams {
            initial_one: 0.1,
            stay_one: 0.8,
            enter_one: 0.02,
        },
    );
    let config = FixedWindowConfig::new(12, 3, Rho::new(0.0005).unwrap()).unwrap();
    let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(14));
    for (_, col) in panel.stream() {
        synth.step(col).unwrap();
    }
    let n_star = synth.n_star();
    for t in 2..12 {
        let est = synth.histogram_estimate(t).unwrap();
        assert!(est.iter().all(|&p| p >= 0), "negative target at t={t}");
        assert_eq!(est.iter().sum::<i64>(), n_star as i64);
    }
}

#[test]
fn padding_policies_trade_failure_rate() {
    // With PaddingPolicy::None, clamps are common on sparse data; with the
    // recommended padding they vanish. Same data, same noise seeds.
    let panel = two_state_markov(
        &mut rng_from_seed(15),
        500,
        12,
        MarkovParams {
            initial_one: 0.05,
            stay_one: 0.5,
            enter_one: 0.02,
        },
    );
    let rho = Rho::new(0.005).unwrap();
    let run = |padding: PaddingPolicy, seed: u64| {
        let config = FixedWindowConfig::new(12, 3, rho)
            .unwrap()
            .with_padding(padding);
        let mut synth = FixedWindowSynthesizer::new(config, rng_from_seed(seed));
        for (_, col) in panel.stream() {
            synth.step(col).unwrap();
        }
        synth.failures().total()
    };
    let unpadded: u64 = (0..5).map(|s| run(PaddingPolicy::None, 20 + s)).sum();
    let padded: u64 = (0..5)
        .map(|s| run(PaddingPolicy::Recommended { beta: 0.05 }, 20 + s))
        .sum();
    assert!(unpadded > 0, "expected clamps without padding");
    assert_eq!(padded, 0, "recommended padding must prevent clamps");
}
