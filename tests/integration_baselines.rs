//! The comparative claims: Algorithm 1 vs the recompute strawman, and
//! Algorithm 2 vs the §2.1 reduction.

// Threshold loops index by `b`/`t` to mirror the paper's notation.
#![allow(clippy::needless_range_loop)]

use longsynth::baseline::RecomputeBaseline;
use longsynth::reduction::ReductionSynthesizer;
use longsynth::{
    CumulativeConfig, CumulativeSynthesizer, FixedWindowConfig, FixedWindowSynthesizer,
    PaddingPolicy,
};
use longsynth_data::generators::{two_state_markov, MarkovParams};
use longsynth_dp::budget::Rho;
use longsynth_dp::rng::{rng_from_seed, RngFork};
use longsynth_queries::cumulative::cumulative_counts;
use longsynth_queries::pattern::Pattern;

fn panel(n: usize, t: usize, seed: u64) -> longsynth_data::LongitudinalDataset {
    two_state_markov(
        &mut rng_from_seed(seed),
        n,
        t,
        MarkovParams {
            initial_one: 0.12,
            stay_one: 0.8,
            enter_one: 0.025,
        },
    )
}

#[test]
fn algorithm_1_beats_recompute_on_late_round_accuracy() {
    // Both spend total ρ; the strawman splits it across rounds *and* pays
    // the within-round composition again, so its per-round histograms are
    // noisier. Compare max pattern error at the final round, averaged over
    // seeds.
    let data = panel(5_000, 12, 100);
    let rho = Rho::new(0.01).unwrap();
    let mut alg1_err = 0.0;
    let mut strawman_err = 0.0;
    for seed in 0..5 {
        let config = FixedWindowConfig::new(12, 3, rho).unwrap();
        let mut alg1 = FixedWindowSynthesizer::new(config, rng_from_seed(200 + seed));
        let mut strawman = RecomputeBaseline::new(
            12,
            3,
            rho,
            PaddingPolicy::Recommended { beta: 0.05 },
            RngFork::new(300 + seed),
        )
        .unwrap();
        for (_, col) in data.stream() {
            alg1.step(col).unwrap();
            strawman.step(col).unwrap();
        }
        let t = 11;
        for pattern in Pattern::all(3) {
            let truth = longsynth_queries::window::window_histogram(&data, t, 3)
                [pattern.code() as usize] as f64
                / 5_000.0;
            let q = longsynth_queries::window::WindowQuery::pattern(pattern);
            alg1_err += (alg1.estimate_debiased(t, &q).unwrap() - truth).abs();
            strawman_err += (strawman.estimate_debiased_pattern(t, pattern).unwrap() - truth).abs();
        }
    }
    assert!(
        alg1_err < strawman_err,
        "Alg1 {alg1_err} not better than strawman {strawman_err}"
    );
}

#[test]
fn recompute_baseline_breaks_monotone_statistics_alg1_does_not() {
    let data = panel(1_000, 12, 101);
    let rho = Rho::new(0.005).unwrap();
    let mut strawman_violations = 0.0;
    for seed in 0..3 {
        let mut strawman =
            RecomputeBaseline::new(12, 3, rho, PaddingPolicy::None, RngFork::new(400 + seed))
                .unwrap();
        for (_, col) in data.stream() {
            strawman.step(col).unwrap();
        }
        strawman_violations += strawman.monotonicity_violation(2).unwrap();
    }
    assert!(
        strawman_violations > 0.0,
        "strawman should violate monotonicity somewhere across seeds"
    );

    // Algorithm 1's population is persistent: the same statistic is
    // structurally monotone (checked per record prefix).
    let config = FixedWindowConfig::new(12, 3, rho).unwrap();
    let mut alg1 = FixedWindowSynthesizer::new(config, rng_from_seed(500));
    for (_, col) in data.stream() {
        alg1.step(col).unwrap();
    }
    let mut prev = 0usize;
    for t in 3..=12 {
        let count = alg1
            .synthetic()
            .iter()
            .filter(|r| {
                let prefix: longsynth_data::BitStream = r.iter().take(t).collect();
                prefix.has_ones_run(2)
            })
            .count();
        assert!(count >= prev);
        prev = count;
    }
}

#[test]
fn algorithm_2_beats_the_k_equals_t_reduction() {
    // §2.1: the reduction "works" but pays a 2^k-style blow-up. Same data,
    // same total budget; compare worst-case fraction error over b ≤ 4.
    let horizon = 8;
    let data = panel(5_000, horizon, 102);
    let rho = Rho::new(0.05).unwrap();
    let truth: Vec<Vec<u64>> = (0..horizon).map(|t| cumulative_counts(&data, t)).collect();
    let mut alg2_err = 0.0f64;
    let mut reduction_err = 0.0f64;
    for seed in 0..3 {
        let config = CumulativeConfig::new(horizon, rho).unwrap();
        let mut alg2 =
            CumulativeSynthesizer::new(config, RngFork::new(600 + seed), rng_from_seed(seed));
        let mut reduction =
            ReductionSynthesizer::new(horizon, rho, rng_from_seed(700 + seed)).unwrap();
        for (_, col) in data.stream() {
            alg2.step(col).unwrap();
            reduction.step(col).unwrap();
        }
        for t in 0..horizon {
            for b in 1..=4usize.min(t + 1) {
                let tru = truth[t][b] as f64 / 5_000.0;
                alg2_err = alg2_err.max((alg2.estimate_fraction(t, b).unwrap() - tru).abs());
                reduction_err =
                    reduction_err.max((reduction.estimate_fraction(t, b).unwrap() - tru).abs());
            }
        }
    }
    assert!(
        reduction_err > 2.0 * alg2_err,
        "reduction {reduction_err} not clearly worse than Alg2 {alg2_err}"
    );
}
