//! End-to-end serving over the paper's SIPP-like panel, through the
//! workspace umbrella the way an external consumer would wire it: one
//! persistent pool under both the engine and the serving front-end, the
//! release store fed by the sink hook, query traffic answered live, and a
//! snapshot surviving a "restart".

use longsynth_suite::core::{CumulativeConfig, CumulativeSynthesizer};
use longsynth_suite::data::sipp::SippConfig;
use longsynth_suite::dp::budget::Rho;
use longsynth_suite::dp::rng::{rng_from_seed, RngFork};
use longsynth_suite::engine::{ShardPlan, ShardedEngine};
use longsynth_suite::pool::WorkerPool;
use longsynth_suite::queries::cumulative::cumulative_fraction;
use longsynth_suite::serve::{QueryKind, QueryService, ServeQuery, StoreScope};
use std::sync::Arc;

#[test]
fn serving_stack_answers_live_traffic_and_survives_restart() {
    let n = 6_000;
    let horizon = 12;
    let shards = 4;
    let panel = SippConfig::small(n).simulate(&mut rng_from_seed(2024));

    let pool = Arc::new(WorkerPool::new(2));
    let service = QueryService::new();
    let fork = RngFork::new(7);
    let config = CumulativeConfig::new(horizon, Rho::new(1.0).unwrap()).unwrap();
    let mut engine = ShardedEngine::with_pool(
        ShardPlan::new(n, shards).unwrap(),
        |s, _| CumulativeSynthesizer::new(config, fork.subfork(s as u64), fork.child(s as u64)),
        Arc::clone(&pool),
    )
    .unwrap();
    engine.set_sink(service.column_sink());

    // Live run: after every round, a concurrent batch asks for the full
    // history so far, across merged and cohort scopes.
    for (t, column) in panel.stream() {
        engine.step(column).unwrap();
        let queries: Vec<ServeQuery> = (0..=t)
            .flat_map(|round| {
                std::iter::once(StoreScope::Merged)
                    .chain((0..shards).map(StoreScope::Cohort))
                    .map(move |scope| ServeQuery {
                        scope,
                        kind: QueryKind::CumulativeFraction { t: round, b: 1 },
                    })
            })
            .collect();
        let answers = service.answer_batch(&pool, queries);
        assert!(answers.iter().all(Result::is_ok), "round {t}");
    }

    // The served answers are exactly the statistics of the stored merged
    // release — no re-synthesis, no drift.
    service.with_store(|store| {
        let released = store.panel(StoreScope::Merged).unwrap();
        assert_eq!(released.rounds(), horizon);
        for t in [0, horizon / 2, horizon - 1] {
            let direct = cumulative_fraction(released, t, 1);
            let served = service
                .answer(&ServeQuery {
                    scope: StoreScope::Merged,
                    kind: QueryKind::CumulativeFraction { t, b: 1 },
                })
                .unwrap();
            assert_eq!(direct.to_bits(), served.to_bits());
        }
    });

    // At a generous budget the served release tracks the ground truth.
    let truth = cumulative_fraction(&panel, horizon - 1, 1);
    let served = service
        .answer(&ServeQuery {
            scope: StoreScope::Merged,
            kind: QueryKind::CumulativeFraction {
                t: horizon - 1,
                b: 1,
            },
        })
        .unwrap();
    assert!(
        (truth - served).abs() < 0.05,
        "served {served} vs truth {truth}"
    );

    // Restart: snapshot, restore, identical answers from a cold cache.
    let restored = QueryService::restore_json(&service.snapshot_json()).unwrap();
    for t in 0..horizon {
        for b in 1..=3 {
            let q = ServeQuery {
                scope: StoreScope::Merged,
                kind: QueryKind::CumulativeFraction { t, b },
            };
            assert_eq!(
                service.answer(&q).unwrap().to_bits(),
                restored.answer(&q).unwrap().to_bits(),
                "t={t} b={b}"
            );
        }
    }
}
